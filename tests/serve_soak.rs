//! Fault-injected soak of the serving layer: 2x overload with hostile
//! payloads, an in-model poison pill, and a worker crash — the engine must
//! shed (never queue unboundedly), answer every request with a typed
//! outcome, quarantine the poison, restart the dead worker, step down the
//! degradation ladder under load, and recover to level 0 once load
//! subsides, all with bounded memory.

use revbifpn::RevBiFPNConfig;
use revbifpn_serve::{DegradeConfig, ServeConfig, ServeEngine, ServeError};
use revbifpn_tensor::{Shape, Tensor};
use revbifpn_train::{ServeFault, ServeFaultPlan};
use std::time::{Duration, Instant};

/// Scratch-arena budget for the tiny model under batch-2 serving. The
/// clean-run peak is a fraction of this; the point is that faults and
/// overload cannot blow it up (no per-request allocation pile-up).
const SCRATCH_BUDGET_BYTES: usize = 64 << 20;

const REQUESTS: usize = 60;

fn soak_engine() -> ServeEngine {
    let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
    cfg.workers = 1;
    cfg.queue_capacity = 8;
    cfg.max_batch = 2;
    cfg.default_timeout_ms = 20_000;
    cfg.watchdog_poll_ms = 10;
    cfg.degrade = DegradeConfig {
        max_level: 2,
        high_depth: 4,
        low_depth: 1,
        p99_high_ms: f64::INFINITY, // depth-driven in this soak
        p99_low_ms: f64::INFINITY,
        cooldown_ms: 30,
        calm_hold_ms: 60,
    };
    ServeEngine::start(cfg)
}

fn clean_image(seed: usize) -> Tensor {
    Tensor::full(Shape::new(1, 3, 32, 32), 0.01 * (seed % 7) as f32)
}

#[test]
fn fault_injected_overload_soak() {
    let plan = ServeFaultPlan::none()
        .with(ServeFault::NanPayload { request: 5 })
        .with(ServeFault::NanPayload { request: 23 })
        .with(ServeFault::OversizedShape { request: 11 })
        .with(ServeFault::OversizedShape { request: 37 })
        .with(ServeFault::PoisonPill { request: 17 })
        .with(ServeFault::WorkerCrash { request: 29, worker: 0 });
    assert_eq!(plan.len(), 6);

    let engine = soak_engine();
    let mut pendings = Vec::new();
    let mut admission_errors: Vec<ServeError> = Vec::new();
    let mut max_level_seen = 0u8;

    // Pin the worker briefly so the overload is machine-independent: the
    // queue provably fills and the watchdog provably observes it, however
    // fast this host can run a tiny forward. (A stall, not a crash — well
    // under the 2s stall limit, so no restart is triggered by it.)
    engine.inject_worker_stall(0, 80);

    // Submit far faster than one worker drains batch-2 tiny forwards:
    // sustained ~2x overload against a capacity-8 queue.
    for i in 0..REQUESTS {
        if let Some(worker) = plan.worker_crash_at(i) {
            engine.inject_worker_crash(worker);
        }
        let image = if plan.nan_payload_at(i) {
            let mut x = clean_image(i);
            x.data_mut()[31] = f32::NAN;
            x
        } else if plan.oversized_at(i) {
            Tensor::full(Shape::new(1, 3, 64, 64), 0.1)
        } else {
            clean_image(i)
        };
        let tag = plan.poison_at(i).then_some(ServeEngine::POISON_TAG);
        match engine.submit_with(image, 20_000, tag) {
            Ok(p) => pendings.push((i, p)),
            Err(ServeError::QueueFull { .. }) if tag.is_some() => {
                // The poison pill must actually reach a batch to exercise
                // bisection; re-admit it once the queue has room.
                loop {
                    std::thread::sleep(Duration::from_millis(5));
                    match engine.submit_with(clean_image(i), 20_000, tag) {
                        Ok(p) => {
                            pendings.push((i, p));
                            break;
                        }
                        Err(ServeError::QueueFull { .. }) => continue,
                        Err(e) => panic!("poison re-admission failed unexpectedly: {e}"),
                    }
                }
            }
            Err(e) => admission_errors.push(e),
        }
        max_level_seen = max_level_seen.max(engine.degrade_level());
        std::thread::sleep(Duration::from_millis(2));
    }

    // Every admission rejection must be one of the typed categories the
    // injected faults and the overload can produce — nothing anonymous.
    let mut nan_rejects = 0;
    let mut shape_rejects = 0;
    let mut sheds = 0;
    for e in &admission_errors {
        match e {
            ServeError::NonFiniteInput { count } => {
                assert!(*count >= 1);
                nan_rejects += 1;
            }
            ServeError::InvalidShape(_) => shape_rejects += 1,
            ServeError::QueueFull { depth, capacity } => {
                assert!(depth >= capacity, "QueueFull must report a full queue");
                sheds += 1;
            }
            other => panic!("unexpected admission error under soak: {other}"),
        }
    }
    assert_eq!(nan_rejects, 2, "both NaN payloads must be rejected at admission");
    assert_eq!(shape_rejects, 2, "both oversized payloads must be rejected at admission");
    assert!(sheds > 0, "2x overload against a bounded queue must shed");

    // Every admitted request resolves to a typed outcome — no hangs, no
    // silent drops. The poison pill must come back quarantined.
    let mut completed = 0;
    let mut poisoned = 0;
    let mut deadline_sheds = 0;
    for (i, pending) in pendings {
        match pending.wait() {
            Ok(resp) => {
                assert_eq!(resp.logits.len(), 10);
                assert!(resp.logits.iter().all(|v| v.is_finite()), "request {i}: non-finite logits");
                completed += 1;
            }
            Err(ServeError::Poisoned) => {
                assert_eq!(i, 17, "only the tagged request may be quarantined");
                poisoned += 1;
            }
            Err(ServeError::DeadlineExceeded { .. }) => deadline_sheds += 1,
            Err(e) => panic!("request {i}: unexpected outcome {e}"),
        }
    }
    assert_eq!(poisoned, 1, "the poison pill must be isolated and quarantined");
    assert!(completed > 0, "well-behaved requests must still be served under faults");

    // The injected crash killed the only worker; the watchdog must have
    // brought one back (the queue kept draining, which completed proves,
    // but check the restart was recorded too).
    let deadline = Instant::now() + Duration::from_secs(20);
    while engine.health().worker_restarts < 1 {
        assert!(Instant::now() < deadline, "watchdog never restarted the crashed worker");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Overload must have pushed the ladder down...
    let h = engine.health();
    let max_level_seen = max_level_seen.max(h.degrade_level);
    assert!(max_level_seen >= 1, "sustained 2x overload must trigger degradation");

    // ...and with the load gone, the controller must walk back to level 0.
    let deadline = Instant::now() + Duration::from_secs(20);
    while engine.degrade_level() != 0 {
        assert!(Instant::now() < deadline, "ladder never recovered to level 0 after load subsided");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Books must balance: the engine accounted for every request it saw.
    let h = engine.health();
    assert_eq!(h.completed_count, completed);
    assert_eq!(h.quarantined_count, 1);
    assert_eq!(h.rejected_count, (nan_rejects + shape_rejects) as u64);
    assert!(h.shed_count >= sheds + deadline_sheds, "all shedding must be counted");
    assert!(h.batch_panic_count >= 1, "the poison panic must be metered");
    assert_eq!(h.queue_depth, 0, "nothing may linger in the queue");

    // Quarantine ring holds the hostile payload digests.
    let records = engine.quarantine_records();
    assert!(records.iter().any(|r| r.reason == "non_finite"));
    assert!(records.iter().any(|r| r.reason == "invalid_shape"));
    assert!(records.iter().any(|r| r.reason == "poisoned"));

    // Bounded memory: faults and overload must not balloon the arenas.
    // (The peak can legitimately be 0 here — batches served downscaled at
    // level 2 are small enough to skip the scratch arena entirely.)
    assert!(
        h.peak_scratch_bytes < SCRATCH_BUDGET_BYTES,
        "scratch peak {} exceeds budget {}",
        h.peak_scratch_bytes,
        SCRATCH_BUDGET_BYTES
    );

    // And the engine is still alive: serve one more request end to end, at
    // full resolution now that the ladder is back at level 0.
    let resp = engine.submit(clean_image(1)).unwrap().wait().unwrap();
    assert_eq!(resp.degrade_level, 0);
    assert!(resp.logits.iter().all(|v| v.is_finite()));
    let h = engine.health();
    assert!(
        h.peak_scratch_bytes > 0 && h.peak_scratch_bytes < SCRATCH_BUDGET_BYTES,
        "full-res scratch peak {} outside (0, {})",
        h.peak_scratch_bytes,
        SCRATCH_BUDGET_BYTES
    );
    engine.shutdown();
    assert!(matches!(engine.submit(clean_image(2)), Err(ServeError::ShuttingDown)));
}
