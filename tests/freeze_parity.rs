//! Frozen-vs-unfused parity across the paper's scaling family, plus the
//! steady-state resource guarantees of the inference fast path.
//!
//! `freeze()` rewrites every `conv -> bn -> act` chain into one fused conv
//! with pre-packed GEMM panels; these properties pin down that the rewrite
//! is numerically faithful (within conv-fusion rounding) for *random*
//! S0–S6-shaped models — classification and detection — and that serving
//! from a frozen model neither allocates nor re-packs after warm-up.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{FrozenClassifier, RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_data::{SynthDet, SynthDetConfig, SynthScale, SynthScaleConfig};
use revbifpn_detect::{
    evaluate_box_ap, AreaRanges, DetHeadConfig, Detector, RevBackbone,
};
use revbifpn_nn::meter;
use revbifpn_tensor::{set_int8_force_scalar, Shape, Tensor};
use revbifpn_train::{clip_grad_norm, train_classifier, LrSchedule, Sgd, TrainConfig};

/// A scaling-family config cut down to CPU-test size: the S-variant's
/// channel plan at a miniature resolution and depth 1.
fn family_config(s: usize, resolution: usize) -> RevBiFPNConfig {
    RevBiFPNConfig::scaled(s, 5).with_resolution(resolution).with_depth(1)
}

/// Moves the BN affine parameters off their (1, 0) init so folding them
/// into the convs is non-trivial.
fn randomize_bn(model: &mut RevBiFPNClassifier, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    model.visit_params(&mut |p| {
        if p.name == "bn.gamma" {
            p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, &mut rng);
        } else if p.name == "bn.beta" {
            p.value = Tensor::uniform(p.value.shape(), -0.5, 0.5, &mut rng);
        }
    });
}

fn assert_close(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    let tol = 1e-4 * (1.0 + want.abs_max());
    let diff = got.max_abs_diff(want);
    assert!(diff < tol, "{what}: fused-vs-unfused diff {diff} exceeds {tol}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Classification: frozen logits match eval-mode logits for every
    /// S-variant channel plan, input resolution, and batch size drawn.
    #[test]
    fn frozen_classifier_matches_eval(
        s in 0usize..=6,
        res_big in any::<bool>(),
        batch in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let cfg = family_config(s, if res_big { 64 } else { 32 });
        prop_assert!(cfg.validate().is_ok());
        let mut model = RevBiFPNClassifier::new(cfg.clone());
        randomize_bn(&mut model, seed);
        let frozen = model.freeze().expect("family configs must freeze");
        prop_assert!(frozen.packed_bytes() > 0);

        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let x = Tensor::randn(Shape::new(batch, 3, cfg.resolution, cfg.resolution), 1.0, &mut rng);
        let want = model.forward(&x, RunMode::Eval);
        let got = frozen.forward(&x);
        assert_close(&got, &want, &format!("S{s} logits"));
    }

    /// Quantization: the int8-frozen classifier tracks the f32-frozen
    /// logits for every S-variant channel plan. The bound is loose —
    /// 7-bit activation quantization compounds at ~3% of dynamic range per
    /// MBConv — but pins that the int8 lowering is functionally faithful;
    /// the accuracy-gate tests below are the hard bar.
    #[test]
    fn int8_frozen_classifier_tracks_f32_frozen(
        s in 0usize..=6,
        batch in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let cfg = family_config(s, 32);
        let mut model = RevBiFPNClassifier::new(cfg.clone());
        randomize_bn(&mut model, seed);
        let frozen = model.freeze().expect("family configs must freeze");
        let quant = model.freeze_int8().expect("family configs must quantize");
        prop_assert!(quant.is_quantized());
        prop_assert!(quant.quant_packed_bytes() > 0);
        prop_assert!(quant.quant_packed_bytes() < frozen.packed_bytes() / 2);

        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let x = Tensor::randn(Shape::new(batch, 3, cfg.resolution, cfg.resolution), 1.0, &mut rng);
        let want = frozen.forward(&x);
        let got = quant.forward(&x);
        prop_assert_eq!(got.shape(), want.shape());
        let diff = got.max_abs_diff(&want);
        let tol = 0.5 * (1.0 + want.abs_max());
        prop_assert!(diff < tol, "S{} int8 logits diff {} exceeds {}", s, diff, tol);
    }

    /// Detection: the frozen detector's raw per-level head outputs match
    /// the unfused eval forward on S-variant backbones.
    #[test]
    fn frozen_detector_matches_eval(
        s in 0usize..=6,
        batch in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let cfg = family_config(s, 32);
        let backbone = RevBackbone::new(revbifpn::RevBiFPN::new(cfg), true);
        let mut det = Detector::new(Box::new(backbone), DetHeadConfig::new(3), seed);
        let frozen = det.freeze().expect("family detectors must freeze");
        prop_assert!(frozen.packed_bytes() > 0);

        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let x = Tensor::randn(Shape::new(batch, 3, 32, 32), 1.0, &mut rng);
        let want = det.forward_raw_eval(&x);
        let got = frozen.forward_raw(&x);
        prop_assert_eq!(got.len(), want.len());
        for (lvl, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_close(&g.cls, &w.cls, &format!("S{s} level {lvl} cls"));
            assert_close(&g.reg, &w.reg, &format!("S{s} level {lvl} reg"));
        }
    }
}

/// After warm-up, frozen forwards are steady-state clean: the scratch arena
/// stops growing (zero allocations per forward) and the packed-panel cache
/// is never rebuilt (zero re-packing) — the acceptance guarantee behind the
/// serving fast path.
#[test]
fn steady_state_frozen_forwards_neither_allocate_nor_repack() {
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    randomize_bn(&mut model, 77);
    let frozen = model.freeze().unwrap();
    let packs = meter::event_count("freeze.weights_packed");
    assert!(packs > 0, "freeze must have packed weight panels");

    let mut rng = StdRng::seed_from_u64(78);
    let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);

    // Warm-up: grow the thread-local scratch arena to this shape's peak.
    // The arena is shared per-thread, so retry until one full forward
    // completes without any heap growth.
    let mut warm = false;
    for _ in 0..8 {
        let before = meter::scratch_stats().heap_growths;
        let _ = frozen.forward(&x);
        if meter::scratch_stats().heap_growths == before {
            warm = true;
            break;
        }
    }
    assert!(warm, "scratch arena never reached steady state");

    let growths = meter::scratch_stats().heap_growths;
    let borrows = meter::scratch_stats().borrows;
    for _ in 0..4 {
        let _ = frozen.forward(&x);
    }
    assert!(
        meter::scratch_stats().borrows > borrows,
        "forwards must actually use the scratch arena"
    );
    assert_eq!(
        meter::scratch_stats().heap_growths,
        growths,
        "steady-state frozen forwards must not allocate"
    );
    assert_eq!(
        meter::event_count("freeze.weights_packed"),
        packs,
        "steady-state frozen forwards must not re-pack weight panels"
    );
}

/// The scalar int8 kernel emulates `_mm256_maddubs_epi16` exactly, so the
/// whole-model forward must be BITWISE identical whichever kernel dispatch
/// picks — the guarantee that `REVBIFPN_INT8_FORCE_SCALAR=1` runs (CI) test
/// the same numerics the AVX2 path serves.
#[test]
fn int8_model_forward_is_bitwise_identical_scalar_vs_vector() {
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    randomize_bn(&mut model, 91);
    let quant = model.freeze_int8().unwrap();

    let mut rng = StdRng::seed_from_u64(92);
    let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
    let auto = quant.forward(&x);
    set_int8_force_scalar(true);
    let scalar = quant.forward(&x);
    set_int8_force_scalar(false);
    assert_eq!(
        auto.data(),
        scalar.data(),
        "scalar and vector int8 paths must agree to the bit"
    );
}

/// Top-1 accuracy of a frozen classifier over `n` held-out SynthScale
/// samples (the frozen forms take `&self`, so this mirrors
/// `revbifpn_train::evaluate` by hand).
fn frozen_top1(frozen: &FrozenClassifier, data: &SynthScale, n: usize, batch: usize) -> f64 {
    let mut correct = 0usize;
    let mut i = 0;
    while i < n {
        let b = batch.min(n - i);
        let (images, labels) = data.batch(u32::MAX as u64 + i as u64, b);
        let logits = frozen.forward(&images);
        let classes = logits.shape().c;
        for (j, &label) in labels.iter().enumerate() {
            let row = &logits.data()[j * classes..(j + 1) * classes];
            let pred = row
                .iter()
                .copied()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map_or(0, |(k, _)| k);
            if pred == label {
                correct += 1;
            }
        }
        i += b;
    }
    correct as f64 / n as f64
}

/// The classification accuracy gate: on a TRAINED model, int8 quantization
/// must cost at most 0.5 points of top-1 over >= 512 held-out samples —
/// the acceptance bar behind `Precision::Int8` serving.
#[test]
fn quantization_accuracy_gate_classification() {
    let data = SynthScale::new(SynthScaleConfig::new(32), 5);
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    let cfg = TrainConfig { epochs: 3, train_size: 256, val_size: 128, ..TrainConfig::small() };
    let h = train_classifier(&mut model, &data, &cfg, RunMode::TrainReversible);
    assert!(
        h.final_val_acc() > 1.5 / data.num_classes() as f64,
        "model failed to train; the gate would be vacuous"
    );

    let frozen = model.freeze().unwrap();
    let quant = model.freeze_int8().unwrap();
    let acc_f32 = frozen_top1(&frozen, &data, 512, 32);
    let acc_int8 = frozen_top1(&quant, &data, 512, 32);
    assert!(
        acc_f32 - acc_int8 <= 0.005 + 1e-9,
        "int8 top-1 {acc_int8:.4} dropped more than 0.5 pt below f32 {acc_f32:.4}"
    );
}

/// The detection accuracy gate: int8 quantization of a trained detector
/// must cost at most 0.5 points of AP50 on held-out SynthDet scenes.
#[test]
fn quantization_accuracy_gate_detection() {
    let res = 32;
    let data = SynthDet::new(SynthDetConfig::new(res), 3);
    let backbone =
        RevBackbone::new(revbifpn::RevBiFPN::new(RevBiFPNConfig::tiny(3).with_resolution(res)), true);
    let mut det = Detector::new(Box::new(backbone), DetHeadConfig::new(3), 0);
    let mut opt = Sgd::new(0.9, 1e-4);
    let steps = 40;
    let schedule = LrSchedule::paper_like(0.02, steps);
    for step in 0..steps {
        let (images, objects) = data.batch((step * 8) as u64, 8);
        det.zero_grads();
        let (total, _, _) = det.train_step(&images, &objects);
        assert!(total.is_finite(), "loss blew up at step {step}");
        let _ = clip_grad_norm(|f| det.visit_params(f), 5.0);
        opt.step(schedule.lr(step), |f| det.visit_params(f));
    }
    det.clear_cache();

    let frozen = det.freeze().unwrap();
    let quant = det.freeze_int8().unwrap();
    let mut dets_f32 = Vec::new();
    let mut dets_int8 = Vec::new();
    let mut gts = Vec::new();
    for i in 0..32 {
        let s = data.sample(500_000 + i as u64);
        dets_f32.push(frozen.detect(&s.image).into_iter().next().unwrap());
        dets_int8.push(quant.detect(&s.image).into_iter().next().unwrap());
        gts.push(s.objects);
    }
    let ap_f32 = evaluate_box_ap(&dets_f32, &gts, 3, AreaRanges::scaled_to(res)).ap50;
    let ap_int8 = evaluate_box_ap(&dets_int8, &gts, 3, AreaRanges::scaled_to(res)).ap50;
    assert!(
        ap_f32 - ap_int8 <= 0.005 + 1e-9,
        "int8 AP50 {ap_int8:.4} dropped more than 0.5 pt below f32 {ap_f32:.4}"
    );
}
