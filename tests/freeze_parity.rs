//! Frozen-vs-unfused parity across the paper's scaling family, plus the
//! steady-state resource guarantees of the inference fast path.
//!
//! `freeze()` rewrites every `conv -> bn -> act` chain into one fused conv
//! with pre-packed GEMM panels; these properties pin down that the rewrite
//! is numerically faithful (within conv-fusion rounding) for *random*
//! S0–S6-shaped models — classification and detection — and that serving
//! from a frozen model neither allocates nor re-packs after warm-up.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_detect::{DetHeadConfig, Detector, RevBackbone};
use revbifpn_nn::meter;
use revbifpn_tensor::{Shape, Tensor};

/// A scaling-family config cut down to CPU-test size: the S-variant's
/// channel plan at a miniature resolution and depth 1.
fn family_config(s: usize, resolution: usize) -> RevBiFPNConfig {
    RevBiFPNConfig::scaled(s, 5).with_resolution(resolution).with_depth(1)
}

/// Moves the BN affine parameters off their (1, 0) init so folding them
/// into the convs is non-trivial.
fn randomize_bn(model: &mut RevBiFPNClassifier, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    model.visit_params(&mut |p| {
        if p.name == "bn.gamma" {
            p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, &mut rng);
        } else if p.name == "bn.beta" {
            p.value = Tensor::uniform(p.value.shape(), -0.5, 0.5, &mut rng);
        }
    });
}

fn assert_close(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    let tol = 1e-4 * (1.0 + want.abs_max());
    let diff = got.max_abs_diff(want);
    assert!(diff < tol, "{what}: fused-vs-unfused diff {diff} exceeds {tol}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Classification: frozen logits match eval-mode logits for every
    /// S-variant channel plan, input resolution, and batch size drawn.
    #[test]
    fn frozen_classifier_matches_eval(
        s in 0usize..=6,
        res_big in any::<bool>(),
        batch in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let cfg = family_config(s, if res_big { 64 } else { 32 });
        prop_assert!(cfg.validate().is_ok());
        let mut model = RevBiFPNClassifier::new(cfg.clone());
        randomize_bn(&mut model, seed);
        let frozen = model.freeze().expect("family configs must freeze");
        prop_assert!(frozen.packed_bytes() > 0);

        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let x = Tensor::randn(Shape::new(batch, 3, cfg.resolution, cfg.resolution), 1.0, &mut rng);
        let want = model.forward(&x, RunMode::Eval);
        let got = frozen.forward(&x);
        assert_close(&got, &want, &format!("S{s} logits"));
    }

    /// Detection: the frozen detector's raw per-level head outputs match
    /// the unfused eval forward on S-variant backbones.
    #[test]
    fn frozen_detector_matches_eval(
        s in 0usize..=6,
        batch in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let cfg = family_config(s, 32);
        let backbone = RevBackbone::new(revbifpn::RevBiFPN::new(cfg), true);
        let mut det = Detector::new(Box::new(backbone), DetHeadConfig::new(3), seed);
        let frozen = det.freeze().expect("family detectors must freeze");
        prop_assert!(frozen.packed_bytes() > 0);

        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let x = Tensor::randn(Shape::new(batch, 3, 32, 32), 1.0, &mut rng);
        let want = det.forward_raw_eval(&x);
        let got = frozen.forward_raw(&x);
        prop_assert_eq!(got.len(), want.len());
        for (lvl, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_close(&g.cls, &w.cls, &format!("S{s} level {lvl} cls"));
            assert_close(&g.reg, &w.reg, &format!("S{s} level {lvl} reg"));
        }
    }
}

/// After warm-up, frozen forwards are steady-state clean: the scratch arena
/// stops growing (zero allocations per forward) and the packed-panel cache
/// is never rebuilt (zero re-packing) — the acceptance guarantee behind the
/// serving fast path.
#[test]
fn steady_state_frozen_forwards_neither_allocate_nor_repack() {
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    randomize_bn(&mut model, 77);
    let frozen = model.freeze().unwrap();
    let packs = meter::event_count("freeze.weights_packed");
    assert!(packs > 0, "freeze must have packed weight panels");

    let mut rng = StdRng::seed_from_u64(78);
    let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);

    // Warm-up: grow the thread-local scratch arena to this shape's peak.
    // The arena is shared per-thread, so retry until one full forward
    // completes without any heap growth.
    let mut warm = false;
    for _ in 0..8 {
        let before = meter::scratch_stats().heap_growths;
        let _ = frozen.forward(&x);
        if meter::scratch_stats().heap_growths == before {
            warm = true;
            break;
        }
    }
    assert!(warm, "scratch arena never reached steady state");

    let growths = meter::scratch_stats().heap_growths;
    let borrows = meter::scratch_stats().borrows;
    for _ in 0..4 {
        let _ = frozen.forward(&x);
    }
    assert!(
        meter::scratch_stats().borrows > borrows,
        "forwards must actually use the scratch arena"
    );
    assert_eq!(
        meter::scratch_stats().heap_growths,
        growths,
        "steady-state frozen forwards must not allocate"
    );
    assert_eq!(
        meter::event_count("freeze.weights_packed"),
        packs,
        "steady-state frozen forwards must not re-pack weight panels"
    );
}
