//! Integration tests pinning the paper's memory claims at reduced scale:
//! O(1)-in-depth reversible activation memory vs Θ(d) conventional
//! (Figure 4), resolution scaling with a constant advantage ratio
//! (Figure 12), the RevSHNet hourglass-transient overhead (Figures 8/9),
//! and the cross-validation of the analytic memory model against the
//! byte-exact runtime meter.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::stats::memory_breakdown;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_baselines::{EfficientNet, EfficientNetConfig, RevShNet, RevShNetConfig};
use revbifpn_tensor::{Shape, Tensor};

#[test]
fn figure4_constant_vs_linear_depth_scaling_measured() {
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(Shape::new(4, 3, 32, 32), 1.0, &mut rng);
    let mut rev = Vec::new();
    let mut conv = Vec::new();
    for d in [1usize, 3, 5] {
        let mut m = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_depth(d));
        let (p_rev, _) = m.measure_step(&x, RunMode::TrainReversible);
        let (p_conv, _) = m.measure_step(&x, RunMode::TrainConventional);
        rev.push(p_rev as f64);
        conv.push(p_conv as f64);
    }
    // Conventional grows substantially (Θ(d))...
    assert!(conv[2] > 1.8 * conv[0], "conventional not linear-ish: {conv:?}");
    // ...reversible stays within 10% (O(1)).
    assert!(rev[2] < 1.1 * rev[0], "reversible not constant: {rev:?}");
}

#[test]
fn figure12_resolution_scaling_preserves_advantage() {
    let ratio_at = |res: usize| {
        let mut m = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_resolution(res));
        let rev = memory_breakdown(&mut m, 2, RunMode::TrainReversible);
        let conv = memory_breakdown(&mut m, 2, RunMode::TrainConventional);
        (conv.activations as f64) / (rev.activations + rev.transient) as f64
    };
    let r32 = ratio_at(32);
    let r64 = ratio_at(64);
    let r128 = ratio_at(128);
    // Both regimes are quadratic in resolution, so the advantage ratio is a
    // near-constant offset (paper: "creates a memory offset").
    assert!(r32 > 2.0 && r64 > 2.0 && r128 > 2.0, "{r32} {r64} {r128}");
    assert!((r64 / r32 - 1.0).abs() < 0.25, "{r32} vs {r64}");
    assert!((r128 / r64 - 1.0).abs() < 0.25, "{r64} vs {r128}");
}

#[test]
fn figures8_9_revshnet_transient_dominates() {
    // RevSHNet must rematerialize an entire hourglass per block; RevBiFPN
    // only one silo/block stage. At matched full-res channels the hourglass
    // transient exceeds RevBiFPN's.
    let res = 64;
    let sh = RevShNet::new(RevShNetConfig::micro().with_resolution(res).with_depth(3));
    let sh_rev = sh.activation_bytes_rev(1, res);
    let mut cfg = RevBiFPNConfig::tiny(10).with_resolution(res).with_depth(3);
    cfg.channels = vec![16, 16, 16];
    cfg.neck_channels = vec![16, 16, 16];
    cfg.expansion = vec![1.0, 1.0, 1.0];
    let m = RevBiFPNClassifier::new(cfg);
    let bifpn_rev = m.backbone().cache_bytes(1, revbifpn_nn::CacheMode::Stats)
        + m.backbone().pyramid_shapes(1).iter().map(|s| s.bytes() as u64).sum::<u64>()
        + m.backbone().peak_transient_bytes(1);
    assert!(
        sh_rev as f64 > 1.1 * bifpn_rev as f64,
        "hourglass transient should dominate: SHNet {sh_rev} vs BiFPN {bifpn_rev}"
    );
}

#[test]
fn table2_shape_revbifpn_beats_efficientnet_per_sample() {
    // At matched miniature scale, reversible RevBiFPN's per-sample training
    // memory is well below conventional EfficientNet's at the same input
    // size (the Table 2 comparison).
    let mut m = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_resolution(64));
    let rev = memory_breakdown(&mut m, 1, RunMode::TrainReversible);
    let eff = EfficientNet::new(EfficientNetConfig::micro(10));
    let eff_bytes = eff.activation_bytes_at(1, 64);
    let rev_bytes = rev.activations + rev.transient;
    assert!(
        (rev_bytes as f64) < 0.8 * eff_bytes as f64,
        "rev {rev_bytes} vs effnet {eff_bytes}"
    );
}

#[test]
fn paper_scale_memory_model_matches_table2_magnitudes() {
    // The analytic model at true paper scale: RevBiFPN-S6 per-sample
    // reversible memory should land in the paper's 0.25GB ballpark (we
    // measure accounted bytes, the paper CUDA GBs; within 2x is a pass).
    let cfg = RevBiFPNConfig::scaled(6, 1000);
    let mut m = RevBiFPNClassifier::new(cfg);
    let rev = memory_breakdown(&mut m, 1, RunMode::TrainReversible);
    let gb = rev.activation_gb_per_sample(1);
    assert!((0.12..=0.51).contains(&gb), "S6 rev mem {gb} GB vs paper 0.254 GB");
}

#[test]
fn meter_zeroes_after_full_cycle() {
    // No leaked cache registrations across a full train step of every mode.
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
    let mut m = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    for mode in [RunMode::TrainReversible, RunMode::TrainConventional] {
        revbifpn_nn::meter::reset();
        let (_, _) = m.measure_step(&x, mode);
        assert_eq!(revbifpn_nn::meter::current(), 0, "leak after {mode:?}");
    }
}
