//! Deterministic chaos soak of the model lifecycle: a seeded
//! [`FaultClock`] schedule drives torn/short writes, ENOSPC, directory
//! fsync loss, transient I/O, stored-artifact bit rot, worker kills and
//! stalls, and hot reloads raced against 2x queue overload — all against a
//! live engine. The invariant under every fault: a typed error, a
//! rollback to the previous generation, or a quarantine. Never a crash,
//! never a hung request, never a wrong-shaped or non-finite response.
//!
//! Replayable by seed: `REVBIFPN_CHAOS_SEED` / `REVBIFPN_CHAOS_ITERS`
//! override the defaults (CI smoke uses a short schedule).

use revbifpn::artifact::save_classifier_artifact;
use revbifpn::{FrozenClassifier, RevBiFPNClassifier, RevBiFPNConfig};
use revbifpn_nn::artifact::{clear_io_faults, inject_io_faults, quarantine_path};
use revbifpn_serve::chaos::{flip_bit_in_file, FaultClock, LifecycleFault};
use revbifpn_serve::{ReloadError, ServeConfig, ServeEngine, ServeError};
use revbifpn_tensor::{Shape, Tensor};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn image(fill: f32) -> Tensor {
    Tensor::full(Shape::new(1, 3, 32, 32), fill)
}

struct Harness {
    engine: ServeEngine,
    /// The live artifact path reloads read from.
    current: PathBuf,
    /// Pristine copy used to roll the file back after corruption faults.
    pristine: PathBuf,
    /// Alternating "new training run" models to write during the soak.
    candidates: Vec<FrozenClassifier>,
    expected_generation: u64,
}

impl Harness {
    fn new(dir: &Path) -> Self {
        let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
        cfg.workers = 1;
        cfg.queue_capacity = 8;
        cfg.max_batch = 2;
        cfg.watchdog_poll_ms = 5;
        cfg.default_timeout_ms = 30_000;
        // Crash faults here test recovery, not retirement (the restart-storm
        // bound has its own unit test): give the watchdog ample budget.
        cfg.max_restarts_per_window = 10_000;
        cfg.restart_backoff_ms = 1;
        // Differently-seeded checkpoints legitimately disagree; the gate's
        // job in this soak is finite/shape/corruption screening.
        cfg.quant_gate.min_agreement = 0.0;

        let base = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_seed(100));
        let frozen = base.freeze().unwrap();
        let current = dir.join("model.frz");
        let pristine = dir.join("pristine.frz");
        save_classifier_artifact(&current, &frozen).unwrap();
        fs::copy(&current, &pristine).unwrap();

        let candidates = (101..103)
            .map(|seed| {
                RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_seed(seed))
                    .freeze()
                    .unwrap()
            })
            .collect();

        let engine = ServeEngine::start_with_artifact(cfg, &current)
            .expect("the pristine artifact must cold-start the engine");
        Self { engine, current, pristine, candidates, expected_generation: 1 }
    }

    /// Restores the live artifact file from the pristine copy (the soak's
    /// stand-in for "the supervisor re-fetches a good checkpoint").
    fn restore_artifact(&self) {
        let _ = fs::remove_file(&self.current);
        let _ = fs::remove_file(quarantine_path(&self.current));
        fs::copy(&self.pristine, &self.current).unwrap();
    }

    /// A reload attempt must either publish (generation bumps by one) or
    /// fail typed with the previous generation intact.
    fn reload_and_check(&mut self) -> Result<(), ReloadError> {
        let before = self.expected_generation;
        match self.engine.reload_artifact(&self.current) {
            Ok(report) => {
                assert_eq!(report.generation, before + 1, "generations must be monotone");
                self.expected_generation = report.generation;
                Ok(())
            }
            Err(e) => {
                let h = self.engine.health();
                assert_eq!(
                    h.model_generation, before,
                    "a failed reload must leave the published generation untouched"
                );
                Err(e)
            }
        }
    }

    /// One clean probe request; the answer must be well-formed or a typed
    /// shed — never a hang, never garbage.
    fn probe(&self) {
        match self.engine.submit(image(0.25)) {
            Ok(pending) => match pending.wait() {
                Ok(resp) => {
                    assert_eq!(resp.logits.len(), 10, "wrong-shaped response escaped");
                    assert!(
                        resp.logits.iter().all(|v| v.is_finite()),
                        "non-finite response escaped"
                    );
                }
                Err(e) => assert_typed(&e),
            },
            Err(e) => assert_typed(&e),
        }
    }
}

fn assert_typed(e: &ServeError) {
    // Exhaustive match: any new untyped escape hatch fails compilation.
    match e {
        ServeError::QueueFull { .. }
        | ServeError::DeadlineExceeded { .. }
        | ServeError::InvalidShape(_)
        | ServeError::NonFiniteInput { .. }
        | ServeError::OutOfRange { .. }
        | ServeError::Poisoned
        | ServeError::WorkerLost
        | ServeError::QuotaExceeded { .. }
        | ServeError::CircuitOpen { .. }
        | ServeError::Infeasible { .. }
        | ServeError::ShuttingDown => {}
    }
}

#[test]
fn lifecycle_chaos_soak() {
    let seed = env_u64("REVBIFPN_CHAOS_SEED", 0xC0FFEE);
    let iters = env_u64("REVBIFPN_CHAOS_ITERS", 40);
    let dir = std::env::temp_dir().join(format!(
        "revbifpn_lifecycle_chaos_{}_{seed}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).unwrap();

    let mut clock = FaultClock::new(seed);
    let mut harness = Harness::new(&dir);
    let mut exercised = std::collections::BTreeSet::new();

    for iter in 0..iters {
        let fault = clock.next_fault();
        exercised.insert(format!("{fault:?}"));

        match fault {
            LifecycleFault::None => {
                // Control tick: a clean rewrite + reload must publish.
                let model = &harness.candidates[iter as usize % harness.candidates.len()];
                save_classifier_artifact(&harness.current, model).unwrap();
                harness.reload_and_check().expect("clean reload must publish");
            }
            LifecycleFault::TornWrite
            | LifecycleFault::ShortWrite
            | LifecycleFault::DiskFull
            | LifecycleFault::DirFsyncFail
            | LifecycleFault::TransientIo => {
                let offset = clock.next_below(4096);
                inject_io_faults(fault.io_faults(offset).unwrap());
                let model = &harness.candidates[iter as usize % harness.candidates.len()];
                let saved = save_classifier_artifact(&harness.current, model);
                clear_io_faults();
                match fault {
                    // Kill-during-publish: the write fails, and whatever is
                    // at the path (the previous artifact) must still load.
                    LifecycleFault::TornWrite | LifecycleFault::DiskFull => {
                        assert!(saved.is_err(), "{fault:?} must fail the save");
                        harness
                            .reload_and_check()
                            .expect("previous generation must remain loadable");
                    }
                    // The fsync of the parent dir failed after the rename:
                    // the save reports failure (durability unknown) but the
                    // bytes at the path are the complete new artifact.
                    LifecycleFault::DirFsyncFail => {
                        assert!(saved.is_err(), "dir-fsync loss must be reported");
                        harness.reload_and_check().expect("artifact bytes are intact");
                    }
                    // A lying lower layer: rename completed over truncated
                    // bytes. Only load-time validation can catch it.
                    LifecycleFault::ShortWrite => {
                        assert!(saved.is_ok(), "short write completes silently");
                        let err = harness.reload_and_check().unwrap_err();
                        assert!(
                            matches!(err, ReloadError::Corrupt { quarantined: true, .. }),
                            "short write must be caught and quarantined, got {err}"
                        );
                        harness.restore_artifact();
                    }
                    // Transient EINTR-class errors are absorbed by the
                    // bounded retry budget.
                    LifecycleFault::TransientIo => {
                        assert!(saved.is_ok(), "transient errors must be retried away");
                        harness.reload_and_check().expect("retried save must reload");
                    }
                    _ => unreachable!(),
                }
            }
            LifecycleFault::BitFlip => {
                let bit = clock.next_u64();
                flip_bit_in_file(&harness.current, bit).unwrap();
                // Either validation rejects the rot (typed, rolled back —
                // asserted inside reload_and_check), or the flip landed in
                // dead padding and the artifact still decodes to a correct
                // model. Both keep answers right; neither crashes.
                let _ = harness.reload_and_check();
                harness.restore_artifact();
            }
            LifecycleFault::WorkerCrash => {
                harness.engine.inject_worker_crash(0);
                std::thread::sleep(Duration::from_millis(10));
            }
            LifecycleFault::WorkerStall => {
                harness.engine.inject_worker_stall(0, 30);
            }
            LifecycleFault::ReloadDuringOverload => {
                // 2x queue overload racing a reload: every submission and
                // the reload itself must resolve typed.
                let model = &harness.candidates[iter as usize % harness.candidates.len()];
                save_classifier_artifact(&harness.current, model).unwrap();
                let mut pendings = Vec::new();
                for i in 0..16 {
                    match harness.engine.submit(image(0.01 * i as f32)) {
                        Ok(p) => pendings.push(p),
                        Err(e) => assert_typed(&e),
                    }
                    if i == 8 {
                        harness.reload_and_check().expect("reload under load must publish");
                    }
                }
                for p in pendings {
                    match p.wait() {
                        Ok(resp) => {
                            assert_eq!(resp.logits.len(), 10);
                            assert!(resp.logits.iter().all(|v| v.is_finite()));
                        }
                        Err(e) => assert_typed(&e),
                    }
                }
            }
        }

        harness.probe();
        let h = harness.engine.health();
        assert_eq!(
            h.model_generation, harness.expected_generation,
            "iter {iter} ({fault:?}): published generation drifted"
        );
    }

    assert!(
        exercised.len() >= 6,
        "schedule too narrow, only exercised: {exercised:?}"
    );

    // Graceful drain ends the soak: everything resolves typed.
    let stats = harness.engine.drain(Duration::from_secs(30));
    assert!(stats.drained_in_time, "an idle engine must drain immediately");
    assert!(
        matches!(harness.engine.submit(image(0.5)), Err(ServeError::ShuttingDown)),
        "post-drain admission must refuse with the typed error"
    );

    let h = harness.engine.health();
    assert!(h.reloads_ok >= 1, "the soak must have published at least one reload");
    fs::remove_dir_all(&dir).unwrap();
}
