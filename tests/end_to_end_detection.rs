//! Cross-crate integration: SynthDet -> RevBiFPN backbone -> FCOS-lite head
//! -> COCO-style AP, in both training regimes, plus the mask branch.

use revbifpn::{RevBiFPN, RevBiFPNConfig};
use revbifpn_data::{SynthDet, SynthDetConfig};
use revbifpn_detect::{
    evaluate_box_ap, evaluate_mask_ap, AreaRanges, DetHeadConfig, Detector, MaskDetector, RevBackbone,
};
use revbifpn_nn::meter;
use revbifpn_train::{clip_grad_norm, LrSchedule, Sgd};

fn train_detector(reversible: bool, steps: usize) -> (Detector, SynthDet, usize) {
    let res = 32;
    let data = SynthDet::new(SynthDetConfig::new(res), 3);
    let backbone =
        RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(3).with_resolution(res)), reversible);
    let mut det = Detector::new(Box::new(backbone), DetHeadConfig::new(3), 0);
    let mut opt = Sgd::new(0.9, 1e-4);
    let schedule = LrSchedule::paper_like(0.02, steps);
    let mut peak = 0;
    for step in 0..steps {
        let (images, objects) = data.batch((step * 8) as u64, 8);
        meter::reset();
        det.zero_grads();
        let (total, _, _) = det.train_step(&images, &objects);
        assert!(total.is_finite(), "loss blew up at step {step}");
        peak = peak.max(meter::peak());
        let _ = clip_grad_norm(|f| det.visit_params(f), 5.0);
        opt.step(schedule.lr(step), |f| det.visit_params(f));
    }
    det.clear_cache();
    (det, data, peak)
}

fn eval_ap(det: &mut Detector, data: &SynthDet, n: usize) -> f64 {
    let mut dets = Vec::new();
    let mut gts = Vec::new();
    for i in 0..n {
        let s = data.sample(500_000 + i as u64);
        dets.push(det.detect(&s.image).into_iter().next().unwrap());
        gts.push(s.objects);
    }
    evaluate_box_ap(&dets, &gts, 3, AreaRanges::scaled_to(32)).ap50
}

#[test]
fn detector_learns_from_synthdet() {
    let (mut det, data, _) = train_detector(true, 60);
    let ap50 = eval_ap(&mut det, &data, 24);
    assert!(ap50 > 0.02, "AP50 {ap50} — detector failed to learn anything");
}

#[test]
fn reversible_detection_uses_less_memory_same_quality() {
    let (mut det_rev, data, peak_rev) = train_detector(true, 30);
    let (mut det_conv, _, peak_conv) = train_detector(false, 30);
    assert!(
        (peak_rev as f64) < 0.6 * peak_conv as f64,
        "reversible {peak_rev} vs conventional {peak_conv}"
    );
    let ap_rev = eval_ap(&mut det_rev, &data, 16);
    let ap_conv = eval_ap(&mut det_conv, &data, 16);
    assert!(
        (ap_rev - ap_conv).abs() < 0.1,
        "AP drifted between regimes: rev {ap_rev} vs conv {ap_conv}"
    );
}

#[test]
fn mask_detector_end_to_end() {
    let res = 32;
    let data = SynthDet::new(SynthDetConfig::new(res), 9);
    let backbone = RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(3).with_resolution(res)), true);
    let mut md = MaskDetector::new(Box::new(backbone), DetHeadConfig::new(3), res, 0);
    let mut opt = Sgd::new(0.9, 1e-4);
    for step in 0..40 {
        let mut images = Vec::new();
        let mut objects = Vec::new();
        let mut masks = Vec::new();
        for b in 0..6 {
            let s = data.sample((step * 6 + b) as u64);
            images.push(s.image);
            objects.push(s.objects);
            masks.push(s.masks);
        }
        let s0 = images[0].shape();
        let mut batch = revbifpn_tensor::Tensor::zeros(s0.with_n(images.len()));
        let chw = s0.chw();
        for (i, im) in images.iter().enumerate() {
            batch.data_mut()[i * chw..(i + 1) * chw].copy_from_slice(im.data());
        }
        md.zero_grads();
        let (dl, sl) = md.train_step(&batch, &objects, &masks);
        assert!(dl.is_finite() && sl.is_finite());
        let _ = clip_grad_norm(|f| md.visit_params(f), 5.0);
        opt.step(0.01, |f| md.visit_params(f));
    }
    md.clear_cache();
    // Evaluate mask AP machinery on a handful of held-out scenes.
    let (mut dets, mut det_masks, mut gts, mut gt_masks) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for i in 0..12 {
        let s = data.sample(700_000 + i as u64);
        let (d, m) = md.detect_with_masks(&s.image);
        dets.push(d.into_iter().next().unwrap());
        det_masks.push(m.into_iter().next().unwrap());
        gts.push(s.objects);
        gt_masks.push(s.masks);
    }
    let r = evaluate_mask_ap(&dets, &det_masks, &gts, &gt_masks, 3, AreaRanges::scaled_to(res));
    assert!((0.0..=1.0).contains(&r.ap));
}
