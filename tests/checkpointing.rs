//! Save/load a trained classifier and verify bit-identical behaviour.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_nn::checkpoint::{load_params, save_params};
use revbifpn_tensor::{Shape, Tensor};

#[test]
fn classifier_checkpoint_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);

    // Perturb a model so it differs from the seeded init.
    let mut trained = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    let mut prng = StdRng::seed_from_u64(1);
    trained.visit_params(&mut |p| {
        p.value.axpy(0.01, &Tensor::randn(p.value.shape(), 1.0, &mut prng));
    });
    let reference = trained.forward(&x, RunMode::Eval);

    let path = std::env::temp_dir().join("revbifpn_e2e_ckpt.bin");
    save_params(&path, |f| trained.visit_params(f)).unwrap();

    // A freshly-initialized model diverges ... until the checkpoint loads.
    let mut restored = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    let fresh = restored.forward(&x, RunMode::Eval);
    assert!(fresh.max_abs_diff(&reference) > 1e-5);
    load_params(&path, |f| restored.visit_params(f)).unwrap();
    let after = restored.forward(&x, RunMode::Eval);
    assert_eq!(after, reference);
    let _ = std::fs::remove_file(path);
}

#[test]
fn checkpoint_rejects_wrong_architecture() {
    let mut tiny = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    let path = std::env::temp_dir().join("revbifpn_e2e_ckpt_arch.bin");
    save_params(&path, |f| tiny.visit_params(f)).unwrap();
    let mut other = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_depth(3));
    assert!(load_params(&path, |f| other.visit_params(f)).is_err());
    let _ = std::fs::remove_file(path);
}
