//! End-to-end proof of the resilience layer: deterministic faults are
//! injected into real training runs and each recovery path is shown to
//! complete with final accuracy at (or bit-exactly equal to) the clean
//! run's — NaN gradients via the tripwires, reconstruction drift via the
//! sentinel's cached fallback, a simulated crash via checkpoint
//! auto-resume, and a torn checkpoint via quarantine.

use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_data::{SynthScale, SynthScaleConfig};
use revbifpn_rev::{DriftPolicy, ReconFault};
use revbifpn_tensor::Tensor;
use revbifpn_train::{
    tear_file, train_classifier, train_classifier_with, CheckpointCfg, Fault, FaultPlan,
    RunOptions, TrainConfig,
};
use std::path::PathBuf;

fn setup() -> (RevBiFPNClassifier, SynthScale) {
    let data = SynthScale::new(SynthScaleConfig::new(32), 5);
    let model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    (model, data)
}

/// 6-step run (2 epochs x 3 steps) with a validation set large enough for
/// sub-1% accuracy granularity.
fn small_cfg() -> TrainConfig {
    TrainConfig { epochs: 2, train_size: 48, val_size: 128, batch_size: 16, ..TrainConfig::small() }
}

fn params_of(model: &mut RevBiFPNClassifier) -> Vec<Tensor> {
    let mut out = Vec::new();
    model.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("revbifpn_fault_injection_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn nan_gradient_step_is_skipped_and_run_recovers() {
    let cfg = small_cfg();
    let (mut clean, data) = setup();
    let h_clean = train_classifier(&mut clean, &data, &cfg, RunMode::TrainReversible);

    let (mut faulted, _) = setup();
    let opts = RunOptions {
        faults: FaultPlan::none().with(Fault::NanGrad { step: 5 }),
        ..RunOptions::default()
    };
    let h = train_classifier_with(&mut faulted, &data, &cfg, RunMode::TrainReversible, &opts);

    assert_eq!(h.nonfinite_skips, 1, "exactly the faulted step should be skipped");
    assert!(!h.aborted && !h.killed);
    assert_eq!(h.epochs.len(), cfg.epochs);
    let diff = (h.final_val_acc() - h_clean.final_val_acc()).abs();
    assert!(
        diff <= 0.01,
        "faulted run acc {:.4} deviates from clean {:.4} by more than 1%",
        h.final_val_acc(),
        h_clean.final_val_acc()
    );
}

#[test]
fn persistent_nan_aborts_after_bounded_retries() {
    let cfg = small_cfg();
    let (mut model, data) = setup();
    let faults = (0..6).fold(FaultPlan::none(), |p, s| p.with(Fault::NanGrad { step: s }));
    let opts = RunOptions { faults, ..RunOptions::default() };
    let h = train_classifier_with(&mut model, &data, &cfg, RunMode::TrainReversible, &opts);
    assert!(h.aborted, "unrecoverable NaNs must abort, not loop forever");
    // max_retries (3) consecutive trips tolerated, the 4th aborts.
    assert_eq!(h.nonfinite_skips, u64::from(cfg.resilience.max_retries) + 1);
}

#[test]
fn kill_and_auto_resume_matches_uninterrupted_run_bit_exactly() {
    let cfg = small_cfg();
    let (mut clean, data) = setup();
    let h_clean = train_classifier(&mut clean, &data, &cfg, RunMode::TrainReversible);

    let mut ck = CheckpointCfg::new(tmp_dir("kill_resume"));
    ck.every_steps = 2;
    let (mut model, _) = setup();
    let killed_opts = RunOptions {
        faults: FaultPlan::none().with(Fault::Kill { step: 3 }),
        checkpoint: Some(ck.clone()),
        auto_resume: false,
    };
    let h1 = train_classifier_with(&mut model, &data, &cfg, RunMode::TrainReversible, &killed_opts);
    assert!(h1.killed, "the Kill fault should end the run early");

    let resume_opts =
        RunOptions { faults: FaultPlan::none(), checkpoint: Some(ck.clone()), auto_resume: true };
    let h2 = train_classifier_with(&mut model, &data, &cfg, RunMode::TrainReversible, &resume_opts);
    assert_eq!(h2.resumed_from_step, Some(4), "kill after step 3 leaves a step-4 checkpoint");
    assert!(!h2.killed);

    // Data, augmentation RNG, and LR are all pure functions of (seed, step),
    // and the checkpoint stores raw f32s: the resumed run must land on the
    // same weights as the never-interrupted one, bit for bit.
    assert_eq!(params_of(&mut model), params_of(&mut clean));
    assert_eq!(h2.final_val_acc(), h_clean.final_val_acc());
    std::fs::remove_dir_all(&ck.dir).unwrap();
}

#[test]
fn reconstruction_drift_falls_back_to_cached_and_recovers() {
    let mut cfg = small_cfg();
    cfg.resilience.drift.policy = DriftPolicy::FallbackToCached;
    let (mut clean, data) = setup();
    let h_clean = train_classifier(&mut clean, &data, &cfg, RunMode::TrainReversible);

    let (mut faulted, _) = setup();
    let opts = RunOptions {
        faults: FaultPlan::none().with(Fault::ActivationBitFlip {
            step: 5,
            fault: ReconFault { stage: 0, stream: 0, index: 0, bit: 30 },
        }),
        ..RunOptions::default()
    };
    let h = train_classifier_with(&mut faulted, &data, &cfg, RunMode::TrainReversible, &opts);

    assert_eq!(h.nonfinite_skips, 1, "the drifted step should be tripped and retried cached");
    assert!(!h.aborted);
    let report = faulted.backbone().body().drift_report();
    assert_eq!(report.fallback_count(), 1, "exactly the corrupted stage should fall back");
    assert!(
        report.max_drift() > cfg.resilience.drift.tolerance,
        "recorded drift {} should exceed tolerance",
        report.max_drift()
    );
    let diff = (h.final_val_acc() - h_clean.final_val_acc()).abs();
    assert!(
        diff <= 0.01,
        "drift-recovered run acc {:.4} deviates from clean {:.4} by more than 1%",
        h.final_val_acc(),
        h_clean.final_val_acc()
    );
}

#[test]
fn torn_checkpoint_is_quarantined_and_resume_uses_the_previous_one() {
    let cfg = small_cfg();
    let (mut clean, data) = setup();
    let h_clean = train_classifier(&mut clean, &data, &cfg, RunMode::TrainReversible);

    let mut ck = CheckpointCfg::new(tmp_dir("torn"));
    ck.every_steps = 2;
    let (mut model, _) = setup();
    let killed_opts = RunOptions {
        faults: FaultPlan::none().with(Fault::Kill { step: 3 }),
        checkpoint: Some(ck.clone()),
        auto_resume: false,
    };
    let h1 = train_classifier_with(&mut model, &data, &cfg, RunMode::TrainReversible, &killed_opts);
    assert!(h1.killed);

    // Tear the newest checkpoint (step 4) mid-blob: the resume scan must
    // reject it, quarantine it, and fall back to the step-2 checkpoint.
    let torn = ck.dir.join("ckpt_step_00000004.ckpt");
    assert!(torn.exists());
    tear_file(&torn, 100).unwrap();

    let resume_opts =
        RunOptions { faults: FaultPlan::none(), checkpoint: Some(ck.clone()), auto_resume: true };
    let h2 = train_classifier_with(&mut model, &data, &cfg, RunMode::TrainReversible, &resume_opts);
    assert_eq!(h2.resumed_from_step, Some(2), "resume must fall back to the older checkpoint");
    // The torn file was renamed aside before the replayed steps wrote a
    // fresh (valid) checkpoint under the same step-4 name.
    assert!(
        ck.dir.join("ckpt_step_00000004.ckpt.corrupt").exists(),
        "the torn file must be quarantined, not deleted"
    );

    // Replaying steps 2..6 from the older checkpoint still converges to the
    // clean run's exact weights.
    assert_eq!(params_of(&mut model), params_of(&mut clean));
    assert_eq!(h2.final_val_acc(), h_clean.final_val_acc());
    std::fs::remove_dir_all(&ck.dir).unwrap();
}
