//! End-to-end reversibility: classifier-level equivalence of the two
//! training regimes, full-model input reconstruction, and the flow-style
//! use of the backbone promised in the paper's Appendix E.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{RevBiFPN, RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_nn::loss::{one_hot, softmax_cross_entropy};
use revbifpn_nn::CacheMode;
use revbifpn_tensor::{Shape, Tensor};

fn randomized(seed: u64) -> RevBiFPN {
    let mut b = RevBiFPN::new(RevBiFPNConfig::tiny(10));
    let mut rng = StdRng::seed_from_u64(seed);
    b.visit_params(&mut |p| {
        if p.name == "bn.gamma" {
            p.value = Tensor::uniform(p.value.shape(), 0.6, 1.4, &mut rng);
        }
    });
    b
}

#[test]
fn classifier_logits_and_grads_identical_across_regimes() {
    let mut m1 = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    let mut m2 = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(Shape::new(3, 3, 32, 32), 1.0, &mut rng);
    let t = one_hot(&[0, 4, 9], 10);

    let l1 = m1.forward(&x, RunMode::TrainConventional);
    let (_, d1) = softmax_cross_entropy(&l1, &t);
    m1.zero_grads();
    m1.backward(&d1);

    let l2 = m2.forward(&x, RunMode::TrainReversible);
    let (_, d2) = softmax_cross_entropy(&l2, &t);
    m2.zero_grads();
    m2.backward(&d2);

    assert!(l1.max_abs_diff(&l2) < 1e-5);
    let mut g1 = Vec::new();
    m1.visit_params(&mut |p| g1.push(p.grad.clone()));
    let mut i = 0;
    let mut worst = 0.0f32;
    m2.visit_params(&mut |p| {
        worst = worst.max(g1[i].max_abs_diff(&p.grad) / (1.0 + g1[i].abs_max()));
        i += 1;
    });
    assert!(worst < 2e-3, "worst relative grad diff {worst}");
}

#[test]
fn pyramid_reconstructs_input_image_exactly_at_init() {
    // At initialization every coupling is zero-initialized, so the forward
    // pass is a pure rearrangement: inversion must be bit-exact.
    let mut b = RevBiFPN::new(RevBiFPNConfig::tiny(10));
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
    let pyr = b.forward(&x, CacheMode::None);
    let back = b.invert(pyr).unwrap();
    assert_eq!(back, x);
}

#[test]
fn pyramid_reconstructs_input_image_after_perturbation() {
    let mut b = randomized(2);
    let mut rng = StdRng::seed_from_u64(3);
    let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
    let pyr = b.forward(&x, CacheMode::None);
    let back = b.invert(pyr).unwrap();
    assert!(back.max_abs_diff(&x) < 0.05, "err {}", back.max_abs_diff(&x));
}

#[test]
fn flow_style_feature_editing_roundtrip() {
    // Appendix E: full invertibility enables flow-style generation. Encode
    // an image, nudge the coarsest features, decode: the output must differ
    // from the input but stay finite and structured (the fine streams pull
    // it back toward the original).
    let mut b = randomized(4);
    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
    let mut pyr = b.forward(&x, CacheMode::None);
    let coarse = pyr.last_mut().unwrap();
    let noise = Tensor::randn(coarse.shape(), 0.05, &mut rng);
    coarse.add_assign(&noise);
    let edited = b.invert(pyr).unwrap();
    assert!(edited.is_finite());
    let diff = edited.max_abs_diff(&x);
    assert!(diff > 1e-4, "edit had no effect");
    assert!(diff < 10.0, "edit exploded: {diff}");
}

#[test]
fn wide_variant_stem_duplication_stays_reversible() {
    // S2-width stem duplicates input channels (c0 = 96 -> 6 image channels);
    // reversibility must survive the duplication.
    let mut cfg = RevBiFPNConfig::scaled(2, 10);
    cfg.resolution = 64;
    let mut b = RevBiFPN::new(cfg);
    let mut rng = StdRng::seed_from_u64(6);
    let x = Tensor::randn(Shape::new(1, 3, 64, 64), 1.0, &mut rng);
    let pyr = b.forward(&x, CacheMode::None);
    let back = b.invert(pyr).unwrap();
    assert!(back.max_abs_diff(&x) < 0.05, "err {}", back.max_abs_diff(&x));
}

#[test]
fn recomputation_error_is_fp_noise_only() {
    // Paper Appendix E raises recomputation reconstruction error as a
    // research question; here we quantify it: the backward-time
    // reconstruction of the backbone input matches the stored stem output
    // to f32 noise.
    let mut b = randomized(7);
    let mut rng = StdRng::seed_from_u64(8);
    let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
    let pyr = b.forward(&x, CacheMode::Stats);
    let dpyr: Vec<Tensor> = pyr.iter().map(|p| Tensor::randn(p.shape(), 0.1, &mut rng)).collect();
    b.visit_params(&mut |p| p.zero_grad());
    let _dx = b.backward_rev(&pyr, dpyr);
    // If reconstruction had drifted, gradients would blow up; bound them.
    let mut max_grad = 0.0f32;
    b.visit_params(&mut |p| max_grad = max_grad.max(p.grad.abs_max()));
    assert!(max_grad.is_finite() && max_grad < 1e4, "max grad {max_grad}");
}
