//! Multi-tenant overload soak: a paced victim, a 10x-overload aggressor,
//! and a poisoner share one engine while a seeded [`TenantFault`] schedule
//! flaps quotas, floods bursts, injects poison, and squeezes the resident
//! packed-panel budget. The isolation invariants under all of it:
//!
//! - every rejection is a typed [`ServeError`] — nothing anonymous;
//! - the aggressor is shed by its quota ([`ServeError::QuotaExceeded`]),
//!   the poisoner's circuit breaker trips ([`ServeError::CircuitOpen`])
//!   and later recovers through half-open probes;
//! - the victim's requests all complete, and its p99 under the flood stays
//!   within 2x of its isolated p99 (fair-share DRR, not FIFO);
//! - governed resident packed-panel bytes never exceed the generous budget
//!   at any poll, converge under a squeeze, and evictions are observed;
//! - the books balance: no queue residue, no leaked in-flight accounting.
//!
//! `REVBIFPN_TENANT_SOAK_MS` shortens the soak for CI smoke runs;
//! `REVBIFPN_CHAOS_SEED` replays a specific fault schedule.

use revbifpn::RevBiFPNConfig;
use revbifpn_serve::{
    BreakerConfig, DegradeConfig, FaultClock, ServeConfig, ServeEngine, ServeError, TenantFault,
    TenantId, TenantQuota,
};
use revbifpn_tensor::{Shape, Tensor};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const VICTIM: TenantId = TenantId(1);
const AGGRESSOR: TenantId = TenantId(2);
const POISONER: TenantId = TenantId(3);

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn clean_image(seed: usize) -> Tensor {
    Tensor::full(Shape::new(1, 3, 32, 32), 0.01 * (seed % 7) as f32)
}

/// Exhaustive: a new error variant that can escape the engine untyped
/// fails this soak at compile time.
fn assert_typed(e: &ServeError) {
    match e {
        ServeError::QueueFull { .. }
        | ServeError::DeadlineExceeded { .. }
        | ServeError::InvalidShape(_)
        | ServeError::NonFiniteInput { .. }
        | ServeError::OutOfRange { .. }
        | ServeError::Poisoned
        | ServeError::WorkerLost
        | ServeError::QuotaExceeded { .. }
        | ServeError::CircuitOpen { .. }
        | ServeError::Infeasible { .. }
        | ServeError::ShuttingDown => {}
    }
}

fn p99(latencies: &mut [f64]) -> f64 {
    assert!(!latencies.is_empty());
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((latencies.len() as f64) * 0.99).ceil() as usize;
    latencies[rank.saturating_sub(1).min(latencies.len() - 1)]
}

fn aggressor_quota() -> TenantQuota {
    TenantQuota { rate_per_sec: 300.0, burst: 16, max_in_flight: 6, weight: 1 }
}

fn soak_config() -> ServeConfig {
    let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
    cfg.fallback = Some(RevBiFPNConfig::tiny(10).with_resolution(16));
    cfg.workers = 1;
    cfg.queue_capacity = 32;
    // `REVBIFPN_TENANT_SOAK_BATCH` raises the cap so CI can re-run the
    // same soak with the continuous batcher assembling real batches
    // (cost-model targets, linger, deadline-margin closes) instead of the
    // near-degenerate cap of 2.
    cfg.max_batch = env_u64("REVBIFPN_TENANT_SOAK_BATCH", 2).max(1) as usize;
    cfg.default_timeout_ms = 5_000;
    cfg.watchdog_poll_ms = 5;
    cfg.degrade = DegradeConfig {
        max_level: 3,
        high_depth: 4,
        low_depth: 1,
        p99_high_ms: f64::INFINITY, // depth-driven: machine-independent
        p99_low_ms: f64::INFINITY,
        cooldown_ms: 30,
        calm_hold_ms: 60,
    };
    cfg.breaker = BreakerConfig {
        window: 8,
        min_samples: 4,
        trip_ratio: 0.5,
        open_ms: 250,
        half_open_probes: 1,
    };
    cfg.tenant_quotas = vec![
        (
            VICTIM,
            TenantQuota {
                rate_per_sec: f64::INFINITY,
                burst: 256,
                max_in_flight: 16,
                weight: 4,
            },
        ),
        (AGGRESSOR, aggressor_quota()),
        (POISONER, TenantQuota { rate_per_sec: 100.0, burst: 8, max_in_flight: 4, weight: 1 }),
    ];
    cfg
}

#[test]
fn multi_tenant_overload_soak() {
    let soak_ms = env_u64("REVBIFPN_TENANT_SOAK_MS", 6_000);
    let seed = env_u64("REVBIFPN_CHAOS_SEED", 0xFA1C);
    let engine = ServeEngine::start(soak_config());

    // ---- Phase A: the victim alone, to establish its isolated p99. ----
    let mut isolated = Vec::new();
    for i in 0..30 {
        let resp = engine
            .submit_tenant(VICTIM, clean_image(i))
            .expect("idle engine admits the victim")
            .wait()
            .expect("idle engine serves the victim");
        isolated.push(resp.latency_ms);
    }
    let p99_isolated = p99(&mut isolated);

    // The primary variant's committed panel bytes anchor the budgets: a
    // generous ceiling both variants fit under, and a squeeze target only
    // one fits under.
    let baseline = engine.health().resident_governed_bytes;
    assert!(baseline > 0, "the eager primary freeze must be in the governor's ledger");
    let generous = baseline * 5 / 2;
    let squeezed = baseline * 5 / 4;
    engine.set_memory_budget(generous);

    // ---- Phase B: flood + poison + chaos, victim paced through it. ----
    let stop = AtomicBool::new(false);
    let aggressor_offered = AtomicU64::new(0);
    let quota_rate_seen = AtomicU64::new(0);
    let quota_inflight_seen = AtomicU64::new(0);
    let circuit_open_seen = AtomicU64::new(0);
    let started = Instant::now();
    let mut victim_latencies = Vec::new();
    let mut victim_offered = 0u64;

    std::thread::scope(|scope| {
        // Aggressor: ~1k offered/sec against a 300/sec quota — a sustained
        // >= 10x flood relative to the paced victim.
        scope.spawn(|| {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                aggressor_offered.fetch_add(1, Ordering::Relaxed);
                match engine.submit_tenant(AGGRESSOR, clean_image(i)) {
                    // Responses are deliberately abandoned: the engine owes
                    // the books settlement whether or not anyone waits.
                    Ok(_pending) => {}
                    Err(e) => {
                        assert_typed(&e);
                        match e {
                            ServeError::QuotaExceeded { scope, .. } => {
                                use revbifpn_serve::QuotaScope;
                                match scope {
                                    QuotaScope::Rate => &quota_rate_seen,
                                    QuotaScope::InFlight => &quota_inflight_seen,
                                }
                                .fetch_add(1, Ordering::Relaxed);
                            }
                            ServeError::CircuitOpen { .. } => {
                                circuit_open_seen.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {}
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });

        // Poisoner: panics batches for the first 60% of the soak (the
        // breaker must trip), then turns clean (probes must re-close it).
        scope.spawn(|| {
            let poison_until = started + Duration::from_millis(soak_ms * 6 / 10);
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let tag =
                    (Instant::now() < poison_until).then_some(ServeEngine::POISON_TAG);
                match engine.submit_tenant_with(POISONER, clean_image(i), 2_000, tag) {
                    Ok(_pending) => {}
                    Err(e) => {
                        assert_typed(&e);
                        if matches!(e, ServeError::CircuitOpen { .. }) {
                            circuit_open_seen.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });

        // Chaos: the seeded tenant-fault schedule.
        scope.spawn(|| {
            let mut clock = FaultClock::new(seed);
            while !stop.load(Ordering::Relaxed) {
                match clock.next_tenant_fault() {
                    TenantFault::None => {}
                    TenantFault::TenantFlood => {
                        for i in 0..50 {
                            aggressor_offered.fetch_add(1, Ordering::Relaxed);
                            if let Err(e) = engine.submit_tenant(AGGRESSOR, clean_image(i)) {
                                assert_typed(&e);
                                if matches!(
                                    e,
                                    ServeError::QuotaExceeded {
                                        scope: revbifpn_serve::QuotaScope::Rate,
                                        ..
                                    }
                                ) {
                                    quota_rate_seen.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    TenantFault::QuotaFlap => {
                        engine.set_tenant_quota(
                            AGGRESSOR,
                            TenantQuota {
                                rate_per_sec: 1.0,
                                burst: 1,
                                max_in_flight: 1,
                                weight: 1,
                            },
                        );
                        std::thread::sleep(Duration::from_millis(50));
                        engine.set_tenant_quota(AGGRESSOR, aggressor_quota());
                    }
                    TenantFault::PoisonBurst => {
                        for i in 0..4 {
                            if let Err(e) = engine.submit_tenant_with(
                                POISONER,
                                clean_image(i),
                                2_000,
                                Some(ServeEngine::POISON_TAG),
                            ) {
                                assert_typed(&e);
                            }
                        }
                    }
                    TenantFault::BudgetSqueeze => {
                        engine.set_memory_budget(squeezed);
                        std::thread::sleep(Duration::from_millis(250));
                        engine.set_memory_budget(generous);
                    }
                }
                std::thread::sleep(Duration::from_millis(150));
            }
        });

        // Victim (this thread): paced traffic; every request must complete.
        while started.elapsed() < Duration::from_millis(soak_ms) {
            victim_offered += 1;
            let resp = engine
                .submit_tenant(VICTIM, clean_image(victim_offered as usize))
                .expect("the victim must never be shed by others' overload")
                .wait()
                .expect("the victim's admitted requests must all complete");
            assert_eq!(resp.logits.len(), 10);
            assert!(resp.logits.iter().all(|v| v.is_finite()));
            victim_latencies.push(resp.latency_ms);

            let h = engine.health();
            // The budget invariant, polled continuously: the governor never
            // lets resident panels past the generous ceiling, and never
            // needs an oversize grant (the ceiling fits the working set).
            assert!(
                h.resident_governed_bytes <= generous,
                "resident {} exceeded the generous budget {}",
                h.resident_governed_bytes,
                generous
            );
            assert_eq!(h.governor_oversize_grants, 0, "budget was sized to never need oversize");
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
    });

    // ---- The overload really was 10x the victim's offered load. ----
    let offered = aggressor_offered.load(Ordering::Relaxed);
    assert!(
        offered >= victim_offered * 10,
        "aggressor offered {offered} vs victim {victim_offered}: not a 10x flood"
    );

    // ---- Typed shed coverage: quota and breaker both did their job. ----
    assert!(quota_rate_seen.load(Ordering::Relaxed) > 0, "rate quota never shed the flood");
    assert!(circuit_open_seen.load(Ordering::Relaxed) > 0, "the breaker never rejected");
    let h = engine.health();
    let aggressor_health = h.tenant(AGGRESSOR).expect("aggressor submitted");
    assert!(aggressor_health.stats.shed_quota > 0, "per-tenant shed accounting missing");
    let poisoner_health = h.tenant(POISONER).expect("poisoner submitted");
    assert!(poisoner_health.breaker_trips >= 1, "poison bursts must trip the breaker");
    assert!(poisoner_health.stats.failed >= 4, "poison outcomes must count as failures");

    // ---- Victim isolation: full goodput, bounded latency. ----
    // The 2x bound is the acceptance criterion; the absolute floor absorbs
    // scheduler noise when the isolated p99 is a few milliseconds.
    let p99_flood = p99(&mut victim_latencies);
    let bound = (2.0 * p99_isolated).max(150.0);
    assert!(
        p99_flood <= bound,
        "victim p99 under flood {p99_flood:.1}ms exceeds bound {bound:.1}ms \
         (isolated p99 {p99_isolated:.1}ms)"
    );
    let victim_health = h.tenant(VICTIM).expect("victim submitted");
    assert_eq!(victim_health.stats.failed, 0, "no victim request may fail");
    assert_eq!(victim_health.stats.shed_quota, 0);
    assert_eq!(victim_health.stats.shed_breaker, 0);
    // Note: quota shedding keeps the shared queue shallow by design, so the
    // degradation ladder engaging is NOT asserted here — admission control
    // absorbing the flood before the ladder has to is the desired outcome
    // (ladder behavior under un-quotaed overload is covered by serve_soak).

    // ---- Breaker recovery: the poisoner turned clean; probes re-admit. ----
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match engine.submit_tenant(POISONER, clean_image(1)) {
            Ok(p) => match p.wait() {
                Ok(_) => break,
                Err(e) => assert_typed(&e),
            },
            Err(e) => assert_typed(&e),
        }
        assert!(
            Instant::now() < deadline,
            "a clean poisoner must recover through half-open probes"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // ---- Deterministic squeeze: with load gone, the governor must walk
    // resident bytes down under the squeezed budget (evicting the cold
    // variant) while serving stays live. ----
    engine.set_memory_budget(squeezed);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        // Keep a trickle flowing so workers pass their eviction hook.
        let _ = engine.submit_tenant(VICTIM, clean_image(3)).map(|p| p.wait());
        let h = engine.health();
        if h.resident_governed_bytes <= squeezed {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "resident {} never converged under the squeezed budget {}",
            h.resident_governed_bytes,
            squeezed
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // ---- Books balance: nothing queued, nothing leaked in flight. ----
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let h = engine.health();
        if h.queue_depth == 0 && h.tenants.iter().all(|t| t.in_flight == 0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "in-flight accounting leaked: {:?}",
            h.tenants.iter().map(|t| (t.tenant, t.in_flight)).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let h = engine.health();
    if h.resident_evictions == 0 {
        // The ladder never installed the fallback variant (possible on a
        // host fast enough to drain the flood at level < 3), so there was
        // never a cold variant to evict — the squeeze convergence above
        // then held trivially. Either way the budget invariant stood.
        assert!(h.resident_governed_bytes <= squeezed);
    }

    engine.shutdown();
    assert!(matches!(
        engine.submit_tenant(VICTIM, clean_image(4)),
        Err(ServeError::ShuttingDown)
    ));
}
