//! Cross-crate integration: the full classification pipeline (SynthScale
//! data -> RevBiFPN classifier -> paper-style training recipe) learns, in
//! both training regimes, with the expected memory relationship.

use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_data::augment::AugmentPolicy;
use revbifpn_data::{SynthScale, SynthScaleConfig};
use revbifpn_train::{evaluate, train_classifier, TrainConfig};

fn setup() -> (RevBiFPNClassifier, SynthScale) {
    let data = SynthScale::new(SynthScaleConfig::new(32), 5);
    let model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    (model, data)
}

#[test]
fn reversible_training_learns_above_chance() {
    let (mut model, data) = setup();
    let cfg = TrainConfig { epochs: 4, train_size: 256, val_size: 128, ..TrainConfig::small() };
    let h = train_classifier(&mut model, &data, &cfg, RunMode::TrainReversible);
    let chance = 1.0 / data.num_classes() as f64;
    assert!(
        h.final_val_acc() > 2.0 * chance,
        "val acc {:.3} not above 2x chance {:.3}",
        h.final_val_acc(),
        chance
    );
    // Loss must decrease from the first epoch to the last.
    let first = h.epochs.first().unwrap().train_loss;
    let last = h.epochs.last().unwrap().train_loss;
    assert!(last < first, "loss did not decrease: {first} -> {last}");
}

#[test]
fn both_regimes_learn_identically_and_reversible_saves_memory() {
    let (mut m1, data) = setup();
    let (mut m2, _) = setup();
    let cfg = TrainConfig { epochs: 2, train_size: 128, val_size: 64, ..TrainConfig::small() };
    let conv = train_classifier(&mut m1, &data, &cfg, RunMode::TrainConventional);
    let rev = train_classifier(&mut m2, &data, &cfg, RunMode::TrainReversible);
    for (a, b) in conv.epochs.iter().zip(&rev.epochs) {
        assert!((a.train_loss - b.train_loss).abs() < 1e-4, "losses diverged: {a:?} vs {b:?}");
    }
    assert!(rev.peak_activation_bytes() * 2 < conv.peak_activation_bytes());
}

#[test]
fn ema_and_augmentation_recipe_runs() {
    let (mut model, data) = setup();
    let cfg = TrainConfig {
        epochs: 2,
        train_size: 96,
        val_size: 64,
        ema_decay: 0.9,
        augment: AugmentPolicy { hflip: true, jitter: 0.1, cutout: 4, mixup: 0.2, cutmix: 1.0 },
        ..TrainConfig::small()
    };
    let h = train_classifier(&mut model, &data, &cfg, RunMode::TrainReversible);
    assert_eq!(h.epochs.len(), 2);
    assert!(h.epochs.iter().all(|e| e.train_loss.is_finite()));
}

#[test]
fn evaluation_is_deterministic() {
    let (mut model, data) = setup();
    let a = evaluate(&mut model, &data, 64, 16);
    let b = evaluate(&mut model, &data, 64, 16);
    assert_eq!(a, b);
}

#[test]
fn trained_model_beats_untrained_on_same_split() {
    let (mut trained, data) = setup();
    let (mut fresh, _) = setup();
    let cfg = TrainConfig { epochs: 3, train_size: 192, val_size: 128, ..TrainConfig::small() };
    let _ = train_classifier(&mut trained, &data, &cfg, RunMode::TrainReversible);
    let acc_trained = evaluate(&mut trained, &data, 128, 16);
    let acc_fresh = evaluate(&mut fresh, &data, 128, 16);
    assert!(acc_trained > acc_fresh, "trained {acc_trained} vs fresh {acc_fresh}");
}
