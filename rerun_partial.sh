#!/bin/bash
cd "$(dirname "$0")"
for b in table3_ablation_sampling table4_ablation_stem table5_ablation_se extra_checkpoint_compare extra_ablation_design; do
  cargo run --release -q -p revbifpn-bench --bin "$b" > "results/$b.md" 2>"results/$b.err" || echo "FAILED $b"
done
echo partial-done
