#!/bin/bash
# CI gate: release build, full test suite (default threading), lint wall,
# then the same test suite capped to a single kernel thread via
# REVBIFPN_MAX_THREADS — tests that explicitly call set_max_threads still
# exercise the multi-threaded paths (programmatic overrides win), while
# everything else runs single-threaded, catching accidental dependence on
# worker-pool concurrency.
set -eu
cd "$(dirname "$0")"

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test (default thread budget)"
cargo test -q --workspace

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test (REVBIFPN_MAX_THREADS=1)"
REVBIFPN_MAX_THREADS=1 cargo test -q --workspace

echo "== fault-injection suite (resilience layer, end to end)"
cargo test -q --test fault_injection

echo "== serving soak (2x overload + injected faults, bounded memory)"
cargo test -q --test serve_soak
cargo test -q -p revbifpn-serve

echo "== frozen inference fast path (parity + steady-state guarantees)"
cargo test -q --test freeze_parity

echo "== quantized fast path, forced-scalar kernels (bitwise vs vector)"
REVBIFPN_INT8_FORCE_SCALAR=1 cargo test -q --test freeze_parity
REVBIFPN_INT8_FORCE_SCALAR=1 cargo test -q -p revbifpn-tensor qgemm
REVBIFPN_INT8_FORCE_SCALAR=1 cargo test -q -p revbifpn-tensor quant

echo "== lifecycle chaos soak (seeded faults: reload/rollback/drain, smoke)"
REVBIFPN_CHAOS_ITERS=12 cargo test -q --release --test lifecycle_chaos

echo "== multi-tenant overload soak (quotas, breakers, fair DRR, tenant chaos, smoke)"
REVBIFPN_TENANT_SOAK_MS=1500 cargo test -q --release --test tenant_soak

echo "== batcher soak (same tenant chaos with continuous batching at cap 8, smoke)"
REVBIFPN_TENANT_SOAK_MS=1500 REVBIFPN_TENANT_SOAK_BATCH=8 cargo test -q --release --test tenant_soak

echo "== serve throughput under 10x overload (goodput + typed shed gates, smoke)"
cargo run -q --release --example serve_throughput_bench -- --smoke

echo "== artifact cold start (mmap vs copy, bitwise round-trip gate)"
cargo run -q --release --example coldstart_bench -- --smoke

echo "== sharded + pipelined training step (bitwise shard/pipeline invariance smoke)"
cargo run -q --release --example train_bench -- --smoke

echo "== stage-pipelined delayed-gradient parity (within 0.5 pt of serial top-1, release)"
cargo test -q --release -p revbifpn-train --test pipeline_invariance -- --ignored

echo "== checkpoint cross-profile round-trip (release writes, debug reads)"
CKPT_TMP="$(mktemp -d)/xprofile.ckpt"
cargo run -q --release --example ckpt_tool -- write "$CKPT_TMP" | tee /tmp/ckpt_write.out
cargo run -q --example ckpt_tool -- read "$CKPT_TMP" | tee /tmp/ckpt_read.out
W="$(grep 'param checksum' /tmp/ckpt_write.out)"
R="$(grep 'param checksum' /tmp/ckpt_read.out)"
rm -rf "$(dirname "$CKPT_TMP")" /tmp/ckpt_write.out /tmp/ckpt_read.out
if [ "$W" != "$R" ]; then
    echo "checkpoint checksum mismatch: release wrote '$W', debug read '$R'" >&2
    exit 1
fi

echo "ci.sh: all gates passed"
