#!/bin/bash
# CI gate: release build, full test suite (default threading), lint wall,
# then the same test suite capped to a single kernel thread via
# REVBIFPN_MAX_THREADS — tests that explicitly call set_max_threads still
# exercise the multi-threaded paths (programmatic overrides win), while
# everything else runs single-threaded, catching accidental dependence on
# worker-pool concurrency.
set -eu
cd "$(dirname "$0")"

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test (default thread budget)"
cargo test -q --workspace

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test (REVBIFPN_MAX_THREADS=1)"
REVBIFPN_MAX_THREADS=1 cargo test -q --workspace

echo "ci.sh: all gates passed"
