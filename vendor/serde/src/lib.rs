//! Offline stand-in for `serde`.
//!
//! Provides the serialization data model this workspace actually exercises:
//! the [`Serialize`] / [`Deserialize`] traits, the [`ser`] module with the
//! standard `Serializer` trait family (mirroring upstream serde's shape so
//! hand-written serializers port verbatim), and a deliberately small [`de`]
//! module.
//!
//! The `de` side is a simplified, self-describing-reader model rather than
//! upstream serde's visitor architecture: nothing in this workspace
//! implements a `Deserializer`, so the trait exists to give the derive a
//! concrete, honest target without hundreds of lines of visitor plumbing.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A value that can be serialized into any [`ser::Serializer`].
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value that can be deserialized from a [`de::Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Reads a value out of `deserializer`.
    fn deserialize<D: de::Deserializer<'de>>(deserializer: &mut D) -> Result<Self, D::Error>;
}

/// Serialization: the upstream-compatible `Serializer` trait family.
pub mod ser {
    pub use super::Serialize;

    /// Errors produced by a serializer.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// Compound serializer for sequences.
    pub trait SerializeSeq {
        /// Output type of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one element.
        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finishes the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for tuples.
    pub trait SerializeTuple {
        /// Output type of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one element.
        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finishes the tuple.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for tuple structs.
    pub trait SerializeTupleStruct {
        /// Output type of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one field.
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finishes the tuple struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for tuple enum variants.
    pub trait SerializeTupleVariant {
        /// Output type of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one field.
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finishes the variant.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for maps.
    pub trait SerializeMap {
        /// Output type of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one key.
        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
        /// Serializes one value.
        fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finishes the map.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for structs.
    pub trait SerializeStruct {
        /// Output type of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one named field.
        fn serialize_field<T: Serialize + ?Sized>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>;
        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for struct enum variants.
    pub trait SerializeStructVariant {
        /// Output type of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one named field.
        fn serialize_field<T: Serialize + ?Sized>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>;
        /// Finishes the variant.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// A data-format backend.
    ///
    /// Mirrors upstream serde's `Serializer` so hand-written backends (such
    /// as the counting serializer in `revbifpn`'s tests) port verbatim.
    pub trait Serializer: Sized {
        /// Output type of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Compound type for sequences.
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
        /// Compound type for tuples.
        type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
        /// Compound type for tuple structs.
        type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
        /// Compound type for tuple variants.
        type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
        /// Compound type for maps.
        type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
        /// Compound type for structs.
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
        /// Compound type for struct variants.
        type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

        /// Serializes a `bool`.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i8`.
        fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i16`.
        fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i32`.
        fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i64`.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u8`.
        fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u16`.
        fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u32`.
        fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u64`.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `f32`.
        fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `f64`.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `char`.
        fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
        /// Serializes a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        /// Serializes raw bytes.
        fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
        /// Serializes `Option::None`.
        fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
        /// Serializes `Option::Some`.
        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
        /// Serializes `()`.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
        /// Serializes a unit struct.
        fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
        /// Serializes a unit enum variant.
        fn serialize_unit_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serializes a newtype struct.
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serializes a newtype enum variant.
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        /// Begins a sequence.
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        /// Begins a tuple.
        fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
        /// Begins a tuple struct.
        fn serialize_tuple_struct(self, name: &'static str, len: usize) -> Result<Self::SerializeTupleStruct, Self::Error>;
        /// Begins a tuple variant.
        fn serialize_tuple_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleVariant, Self::Error>;
        /// Begins a map.
        fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
        /// Begins a struct.
        fn serialize_struct(self, name: &'static str, len: usize) -> Result<Self::SerializeStruct, Self::Error>;
        /// Begins a struct variant.
        fn serialize_struct_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStructVariant, Self::Error>;
    }
}

/// Deserialization: a compact reader-style model.
pub mod de {
    pub use super::Deserialize;

    /// Errors produced by a deserializer.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// A self-describing data source the derive-generated code reads from.
    ///
    /// Unlike upstream serde this is a plain pull-reader: struct fields are
    /// read in declaration order between `begin_struct` / `end_struct`, and
    /// enum variants resolve to an index into the declared variant list.
    pub trait Deserializer<'de> {
        /// Error type.
        type Error: Error;
        /// Reads a `bool`.
        fn read_bool(&mut self) -> Result<bool, Self::Error>;
        /// Reads any unsigned integer.
        fn read_u64(&mut self) -> Result<u64, Self::Error>;
        /// Reads any signed integer.
        fn read_i64(&mut self) -> Result<i64, Self::Error>;
        /// Reads any float.
        fn read_f64(&mut self) -> Result<f64, Self::Error>;
        /// Reads an owned string.
        fn read_string(&mut self) -> Result<String, Self::Error>;
        /// Enters a struct with the given declared fields.
        fn begin_struct(&mut self, name: &'static str, fields: &'static [&'static str]) -> Result<(), Self::Error>;
        /// Leaves the current struct.
        fn end_struct(&mut self) -> Result<(), Self::Error>;
        /// Enters a sequence, returning its length.
        fn begin_seq(&mut self) -> Result<usize, Self::Error>;
        /// Leaves the current sequence.
        fn end_seq(&mut self) -> Result<(), Self::Error>;
        /// Reads a unit enum variant as an index into `variants`.
        fn read_variant(&mut self, name: &'static str, variants: &'static [&'static str]) -> Result<usize, Self::Error>;
    }
}

// ----------------------------------------------------------- impls: Serialize

macro_rules! serialize_prim {
    ($($t:ty => $m:ident),* $(,)?) => {
        $(impl Serialize for $t {
            fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$m(*self)
            }
        })*
    };
}

serialize_prim!(
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
);

impl Serialize for usize {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

// --------------------------------------------------------- impls: Deserialize

macro_rules! deserialize_uint {
    ($($t:ty),* $(,)?) => {
        $(impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
                Ok(d.read_u64()? as $t)
            }
        })*
    };
}

macro_rules! deserialize_int {
    ($($t:ty),* $(,)?) => {
        $(impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
                Ok(d.read_i64()? as $t)
            }
        })*
    };
}

deserialize_uint!(u8, u16, u32, u64, usize);
deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: de::Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.read_bool()
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: de::Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        Ok(d.read_f64()? as f32)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: de::Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.read_f64()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: de::Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.read_string()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let len = d.begin_seq()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::deserialize(d)?);
        }
        d.end_seq()?;
        Ok(out)
    }
}
