//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, [`any`], `prop::sample::select`,
//! and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream: case generation is **deterministic** (seeded
//! from the test's module path and case index, so failures reproduce
//! exactly) and there is no shrinking — a failing case panics with the
//! regular assertion message. For the algebraic-identity tests in this
//! repository that trade-off is immaterial, and determinism is an asset on
//! CI.

#![warn(missing_docs)]

/// Test-runner plumbing: configuration and the per-case RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64 seeded from test id + case).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `test_id`.
        pub fn for_case(test_id: &str, case: u32) -> Self {
            // FNV-1a over the test id, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self { state: h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128) - (self.start as i128);
                        (self.start as i128 + (rng.next_u64() as i128 % span)) as $t
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start() <= self.end(), "empty range strategy");
                        let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                        (*self.start() as i128 + (rng.next_u64() as i128 % span)) as $t
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        // 53 uniform bits -> [0, 1); exact in both f32 and f64.
                        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        self.start + (u as $t) * (self.end - self.start)
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start() <= self.end(), "empty range strategy");
                        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        self.start() + (u as $t) * (self.end() - self.start())
                    }
                }
            )*
        };
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for f32 {
        /// Uniform in `[-1, 1]`: adequate for numeric property tests and
        /// avoids the NaN/infinity corner cases upstream generates.
        fn arbitrary(rng: &mut TestRng) -> f32 {
            ((rng.next_u64() >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection-sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
        }
    }

    /// Chooses uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }
}

/// The `prop::` namespace alias used by idiomatic proptest imports.
pub mod prop {
    pub use crate::sample;
    pub use crate::strategy;
}

/// Builds the canonical strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($arg:tt)+) => { assert!($cond, $($arg)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($arg:tt)+) => { assert_eq!($a, $b, $($arg)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($arg:tt)+) => { assert_ne!($a, $b, $($arg)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 5u64..=9) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn tuples_and_select(t in (1usize..=4, 0u64..100), k in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(t.0 >= 1 && t.0 <= 4);
            prop_assert!(t.1 < 100);
            prop_assert!(k == 2 || k == 4 || k == 8);
        }

        #[test]
        fn map_and_assume(x in (0usize..100).prop_map(|v| v * 2), flag in any::<bool>()) {
            prop_assume!(flag || x % 4 == 0 || x % 4 == 2);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0u64..1000;
        let a: Vec<u64> = (0..10).map(|c| s.generate(&mut TestRng::for_case("id", c))).collect();
        let b: Vec<u64> = (0..10).map(|c| s.generate(&mut TestRng::for_case("id", c))).collect();
        assert_eq!(a, b);
    }
}
