//! Offline stand-in for `criterion`.
//!
//! Provides the macro/API surface the workspace's benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! [`Bencher::iter`]) backed by a simple but honest wall-clock harness:
//! per-benchmark calibration, fixed-iteration samples, and min / median /
//! mean / max reporting.
//!
//! Set `CRITERION_JSON` to a file path to additionally append one JSON
//! object per benchmark (used to record `BENCH_kernels.json` baselines).

#![warn(missing_docs)]

use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and registry.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Respect a `cargo bench -- <filter>` style positional argument.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { sample_size: 20, filter }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { sample_size: self.sample_size, samples_ns: Vec::new() };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, storing per-iteration wall-clock samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: run until ~20ms elapsed to estimate per-iter cost.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(20) {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        // Aim for ~25ms per sample, at least one iteration.
        let iters = ((0.025 / per_iter).ceil() as u64).max(1);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns.push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<44} (no samples — did the closure call iter()?)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = s[0];
        let max = s[s.len() - 1];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{id:<44} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(
                    file,
                    "{{\"id\":\"{id}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"max_ns\":{max:.1}}}"
                );
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_produces_samples() {
        let mut c = Criterion { sample_size: 3, filter: None };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
