//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! two shapes this workspace uses: structs with named fields and enums with
//! unit variants. The parser walks the raw token stream directly (no `syn`
//! available offline), so exotic inputs (generics, tuple structs, data
//! variants) are rejected with a compile error rather than silently
//! mishandled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skips attributes (`#[...]`, including doc comments) and visibility
/// modifiers at the current position.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The attribute body `[...]`.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // Optional `(crate)` / `(super)` scope.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("unsupported item kind `{kind}`"));
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("generic types are not supported by the vendored serde derive".into())
            }
            Some(_) => continue,
            None => return Err("missing `{ ... }` body".into()),
        }
    };

    if kind == "struct" {
        let mut fields = Vec::new();
        let mut iter = body.into_iter().peekable();
        loop {
            skip_attrs_and_vis(&mut iter);
            let field = match iter.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                Some(other) => return Err(format!("expected field name, got {other:?}")),
                None => break,
            };
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => return Err(format!("expected `:` after field `{field}`, got {other:?}")),
            }
            fields.push(field);
            // Skip the type: consume until a top-level comma. Generic
            // arguments arrive as `<` punct tokens; track their nesting so
            // commas inside `Vec<(A, B)>`-style types are not split points.
            let mut angle_depth = 0i32;
            loop {
                match iter.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        angle_depth += 1;
                        iter.next();
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                        angle_depth -= 1;
                        iter.next();
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                        iter.next();
                        break;
                    }
                    Some(_) => {
                        iter.next();
                    }
                    None => break,
                }
            }
        }
        Ok(Item::Struct { name, fields })
    } else {
        let mut variants = Vec::new();
        let mut iter = body.into_iter().peekable();
        loop {
            skip_attrs_and_vis(&mut iter);
            let variant = match iter.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                Some(other) => return Err(format!("expected variant name, got {other:?}")),
                None => break,
            };
            match iter.next() {
                None => {
                    variants.push(variant);
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    // Explicit discriminant: skip the expression.
                    variants.push(variant);
                    loop {
                        match iter.next() {
                            Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                            Some(_) => continue,
                            None => break,
                        }
                    }
                }
                Some(_) => {
                    return Err(format!(
                        "variant `{variant}` has data; the vendored serde derive supports unit variants only"
                    ))
                }
            }
        }
        Ok(Item::Enum { name, variants })
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize` for named-field structs and unit enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let out = match item {
        Item::Struct { name, fields } => {
            let mut body = format!(
                "let mut state = ::serde::ser::Serializer::serialize_struct(serializer, {name:?}, {})?;",
                fields.len()
            );
            for f in &fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut state, {f:?}, &self.{f})?;"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(state)");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S)\n\
                         -> ::core::result::Result<S::Ok, S::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    format!(
                        "{name}::{v} => ::serde::ser::Serializer::serialize_unit_variant(serializer, {name:?}, {i}u32, {v:?}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S)\n\
                         -> ::core::result::Result<S::Ok, S::Error> {{ match *self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}

/// Derives `serde::Deserialize` for named-field structs and unit enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let out = match item {
        Item::Struct { name, fields } => {
            let field_list: String = fields.iter().map(|f| format!("{f:?}, ")).collect();
            let reads: String = fields
                .iter()
                .map(|f| format!("let {f} = ::serde::Deserialize::deserialize(deserializer)?;"))
                .collect();
            let build: String = fields.iter().map(|f| format!("{f}, ")).collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: &mut D)\n\
                         -> ::core::result::Result<Self, D::Error> {{\n\
                         deserializer.begin_struct({name:?}, &[{field_list}])?;\n\
                         {reads}\n\
                         deserializer.end_struct()?;\n\
                         ::core::result::Result::Ok({name} {{ {build} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let variant_list: String = variants.iter().map(|v| format!("{v:?}, ")).collect();
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(i, v)| format!("{i}usize => ::core::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: &mut D)\n\
                         -> ::core::result::Result<Self, D::Error> {{\n\
                         match deserializer.read_variant({name:?}, &[{variant_list}])? {{\n\
                             {arms}\n\
                             _ => ::core::result::Result::Err(::serde::de::Error::custom(\"variant index out of range\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}
