//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API surface the workspace uses: the [`Rng`] /
//! [`RngExt`] / [`SeedableRng`] traits, [`rngs::StdRng`], and
//! `rng.random::<T>()` for the primitive types the models sample.
//!
//! `StdRng` is a SplitMix64 generator: tiny, fast, and statistically strong
//! enough for weight initialization and synthetic data (it passes the
//! moment checks in `revbifpn-tensor`'s tests). It is **not** the same
//! stream as upstream `rand`'s `StdRng`, which is fine here because every
//! consumer seeds explicitly and only relies on determinism, not on a
//! particular stream.

#![warn(missing_docs)]

/// A source of random bits.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits.
pub trait SampleUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of type `T` (uniform over `T`'s natural range;
    /// `[0, 1)` for floats).
    fn random<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SampleUniform, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Draws a value of type `T`.
        ///
        /// Inherent mirror of [`super::RngExt::random`] so call sites that
        /// only import `StdRng` still work.
        pub fn random<T: SampleUniform>(&mut self) -> T {
            T::sample(self)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let s: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((s / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn generic_rng_ext_usable() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.random::<f32>()
        }
        let mut rng = StdRng::seed_from_u64(2);
        let _ = draw(&mut rng);
    }
}
