#!/bin/bash
# Produces results/BENCH_kernels.json: criterion timings for the kernel
# microbenches — the `*_ref` entries are the pre-optimisation seed kernels,
# the unsuffixed entries the tiled/parallel engine — plus per-pair median
# speedups and the steady-state scratch-arena allocation counters.
set -eu
cd "$(dirname "$0")"

TIMINGS=$(mktemp)
ALLOC=$(mktemp)
trap 'rm -f "$TIMINGS" "$ALLOC"' EXIT

CRITERION_JSON="$TIMINGS" cargo bench -p revbifpn-bench --bench kernels
cargo run --release -q -p revbifpn-bench --bin kernel_alloc_report > "$ALLOC"

python3 - "$TIMINGS" "$ALLOC" > results/BENCH_kernels.json <<'EOF'
import json, sys

benches = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
scratch = json.load(open(sys.argv[2]))

by_id = {b["id"]: b for b in benches}
speedups = {}
for b in benches:
    if b["id"].endswith("_ref"):
        new = by_id.get(b["id"][: -len("_ref")])
        if new:
            speedups[new["id"]] = round(b["median_ns"] / new["median_ns"], 2)

json.dump(
    {
        "benchmarks": benches,
        "speedup_median_ref_over_new": speedups,
        "scratch_steady_state": scratch,
    },
    sys.stdout,
    indent=2,
)
print()
EOF

echo "wrote results/BENCH_kernels.json"

# Training-step bench: serial seed step vs the sharded engine vs the
# stage-pipelined engine (sync, combined, and PETRA delayed modes),
# per-phase timings + bubble fractions + on-the-spot bitwise determinism
# checks for both engines.
cargo run --release -q --example train_bench

# Quantized inference bench: int8 fast path vs the f32 frozen path vs the
# unfused eval forward (S0/S3, batch 1/8) -> results/BENCH_infer_quant.json.
cargo run --release -q --example quant_bench

# Multi-tenant serving throughput under 10x overload: goodput, typed shed
# breakdown, per-tenant p50/p99 -> results/BENCH_serve_throughput.json.
cargo run --release -q --example serve_throughput_bench
