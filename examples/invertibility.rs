//! Full reversibility demo (paper Section 2, Appendix B and E):
//!
//! 1. run a RevBiFPN backbone forward to its feature pyramid,
//! 2. reconstruct the exact input image from the pyramid alone
//!    (Equations 9–16 applied stage by stage, then the inverse stem),
//! 3. use invertibility the flow-style way: edit coarse features and decode,
//! 4. show the RevSilo expansion property (growing an N-1 pyramid with an
//!    implicit zero stream is still invertible).
//!
//! Run with: `cargo run --release --example invertibility`

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{RevBiFPN, RevBiFPNConfig};
use revbifpn_nn::layers::{MBConv, MBConvCfg};
use revbifpn_nn::{CacheMode, Layer};
use revbifpn_rev::RevSilo;
use revbifpn_tensor::{Shape, Tensor};

fn main() {
    let mut rng = StdRng::seed_from_u64(0);

    // --- 1+2: whole-backbone inversion.
    let mut backbone = RevBiFPN::new(RevBiFPNConfig::tiny(10));
    // Perturb BatchNorm gains so the network is far from its identity init.
    backbone.visit_params(&mut |p| {
        if p.name == "bn.gamma" {
            p.value = Tensor::uniform(p.value.shape(), 0.6, 1.4, &mut rng);
        }
    });
    let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
    let pyramid = backbone.forward(&x, CacheMode::None);
    println!("pyramid shapes: {:?}", pyramid.iter().map(|p| p.shape()).collect::<Vec<_>>());
    let reconstructed = backbone.invert(pyramid.clone()).expect("stem inverts");
    println!("input reconstruction max |err|: {:.3e} (fp32 noise only)", reconstructed.max_abs_diff(&x));

    // --- 3: flow-style editing — nudge the coarsest (most semantic) stream.
    let mut edited_pyr = pyramid;
    let coarse = edited_pyr.last_mut().unwrap();
    let noise = Tensor::randn(coarse.shape(), 0.1, &mut rng);
    coarse.add_assign(&noise);
    let edited = backbone.invert(edited_pyr).unwrap();
    println!(
        "after editing the coarse features, decoded image moved by max {:.3} (finite: {})",
        edited.max_abs_diff(&x),
        edited.is_finite()
    );

    // --- 4: a standalone expansion RevSilo (1 stream in, 3 streams out).
    let channels = [8usize, 16, 24];
    let mut rng_d = StdRng::seed_from_u64(1);
    let mut down = |j: usize, i: usize| -> Box<dyn Layer> {
        Box::new(MBConv::new(MBConvCfg::down(channels[j], channels[i], (i - j) as u32, 1.0).plain(), &mut rng_d))
    };
    let mut rng_u = StdRng::seed_from_u64(2);
    let mut up = |j: usize, i: usize| -> Box<dyn Layer> {
        Box::new(MBConv::new(MBConvCfg::up(channels[j], channels[i], (j - i) as u32, 1.0).plain(), &mut rng_u))
    };
    let mut silo = RevSilo::new(1, 3, &mut down, &mut up);
    let x0 = Tensor::randn(Shape::new(1, 8, 16, 16), 1.0, &mut rng);
    let ys = silo.forward(std::slice::from_ref(&x0), CacheMode::None);
    println!(
        "expansion silo grew 1 stream into {:?}",
        ys.iter().map(|y| y.shape()).collect::<Vec<_>>()
    );
    let back = silo.inverse(&ys);
    println!("expansion inverse max |err|: {:.3e}", back[0].max_abs_diff(&x0));
}
