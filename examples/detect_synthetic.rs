//! Fine-tune a RevBiFPN backbone for object detection on SynthDet with the
//! FCOS-lite dense head, then evaluate COCO-style AP — the paper's
//! Section 4.2 workflow at laptop scale, with reversible recomputation
//! keeping the training memory at the O(nchw) floor.
//!
//! Run with: `cargo run --release --example detect_synthetic`
//! (set `STEPS=400` for a longer run).

use revbifpn::{RevBiFPN, RevBiFPNConfig};
use revbifpn_data::{SynthDet, SynthDetConfig};
use revbifpn_detect::{evaluate_box_ap, AreaRanges, DetHeadConfig, Detector, RevBackbone};
use revbifpn_nn::meter;
use revbifpn_train::{clip_grad_norm, LrSchedule, Sgd};

fn main() {
    let steps: usize = std::env::var("STEPS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
    let res = 48;
    let data = SynthDet::new(SynthDetConfig::new(res), 11);
    let backbone = RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(3).with_resolution(res)), true);
    let mut det = Detector::new(Box::new(backbone), DetHeadConfig::new(data.cfg().num_classes), 0);
    println!(
        "fine-tuning {} + FCOS-lite head ({} params) on SynthDet for {steps} steps",
        det.backbone().name(),
        det.param_count()
    );

    let mut opt = Sgd::new(0.9, 1e-4);
    let schedule = LrSchedule::paper_like(0.02, steps);
    let mut peak = 0usize;
    for step in 0..steps {
        let (images, objects) = data.batch((step * 8) as u64, 8);
        meter::reset();
        det.zero_grads();
        let (total, cls, reg) = det.train_step(&images, &objects);
        peak = peak.max(meter::peak());
        let _ = clip_grad_norm(|f| det.visit_params(f), 5.0);
        opt.step(schedule.lr(step), |f| det.visit_params(f));
        if step % 25 == 0 {
            println!("step {step:>4}: loss {total:.4} (cls {cls:.4}, reg {reg:.4})");
        }
    }
    det.clear_cache();
    println!("peak training activation bytes: {peak}");

    // Held-out COCO-style evaluation.
    let eval_n = 48;
    let mut dets = Vec::new();
    let mut gts = Vec::new();
    for i in 0..eval_n {
        let s = data.sample(1_000_000 + i as u64);
        dets.push(det.detect(&s.image).into_iter().next().unwrap());
        gts.push(s.objects);
    }
    let ap = evaluate_box_ap(&dets, &gts, data.cfg().num_classes, AreaRanges::scaled_to(res));
    println!("\nCOCO-style AP over {eval_n} held-out scenes:");
    println!("  AP       {:.1}", ap.ap * 100.0);
    println!("  AP50     {:.1}", ap.ap50 * 100.0);
    println!("  AP75     {:.1}", ap.ap75 * 100.0);
    println!("  APs/m/l  {:.1} / {:.1} / {:.1}", ap.ap_small * 100.0, ap.ap_medium * 100.0, ap.ap_large * 100.0);

    // Show a couple of detections vs ground truth.
    let s = data.sample(1_000_000);
    let d = det.detect(&s.image);
    println!("\nsample scene: {} ground-truth objects, {} detections", s.objects.len(), d[0].len());
    for o in &s.objects {
        println!("  gt  class {} bbox {:?}", o.class, o.bbox.map(|v| v.round()));
    }
    for dd in d[0].iter().take(5) {
        println!("  det class {} score {:.2} bbox {:?}", dd.class, dd.score, dd.bbox.map(|v| v.round()));
    }
}
