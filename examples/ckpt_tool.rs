//! Minimal checkpoint write/read tool over the crash-safe v2 container.
//!
//! Builds the deterministic tiny classifier, then either saves its
//! parameters or loads them back, printing an FNV-1a checksum over the raw
//! parameter bits in both cases. CI uses this to prove the format is
//! profile-independent: a checkpoint written by the release binary must
//! load in a debug binary with the identical checksum (and vice versa).
//!
//! Run with:
//!   cargo run --example ckpt_tool -- write /tmp/model.ckpt
//!   cargo run --example ckpt_tool -- read  /tmp/model.ckpt

use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig};
use revbifpn_nn::checkpoint::{load_params, save_params};

/// FNV-1a over the little-endian bytes of every parameter, in visit order.
fn param_checksum(model: &mut RevBiFPNClassifier) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    model.visit_params(&mut |p| {
        for v in p.value.data() {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    });
    h
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, path) = match &args[..] {
        [_, cmd, path] if cmd == "write" || cmd == "read" => (cmd.as_str(), path),
        _ => {
            eprintln!("usage: ckpt_tool <write|read> <path>");
            std::process::exit(2);
        }
    };

    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    match cmd {
        "write" => {
            // Deterministic perturbation away from the fresh init, so a
            // reader that failed to actually apply the file could never
            // reproduce the checksum by accident.
            model.visit_params(&mut |p| p.value.map_inplace(|v| v * 1.25 + 0.01));
            save_params(path, |f| model.visit_params(f)).expect("save failed");
            println!("wrote {path}");
        }
        "read" => {
            load_params(path, |f| model.visit_params(f)).expect("load failed");
            println!("read {path}");
        }
        _ => unreachable!(),
    }
    println!("param checksum: {:016x}", param_checksum(&mut model));
}
