//! Int8-vs-f32 inference benchmark: times the quantized frozen fast path
//! (per-channel int8 weights, AVX2 `maddubs` GEMM, fused dequant epilogues)
//! against the f32 frozen path and the unfused eval forward for
//! RevBiFPN-S0 and -S3 at batch 1 and 8, and writes
//! `results/BENCH_infer_quant.json`.
//!
//! Run with `cargo run --release --example quant_bench`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_repro::core::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_repro::tensor::{Shape, Tensor};
use std::time::Instant;

struct Stats {
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

fn stats(mut samples: Vec<f64>) -> Stats {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    Stats {
        min_ns: samples[0],
        median_ns: samples[n / 2],
        mean_ns: samples.iter().sum::<f64>() / n as f64,
        max_ns: samples[n - 1],
    }
}

fn time(iters: usize, mut f: impl FnMut()) -> Stats {
    f(); // warm-up: scratch arena growth, page faults
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    stats(samples)
}

struct Row {
    id: String,
    batch: usize,
    resolution: usize,
    stats: Stats,
}

fn json_row(r: &Row) -> String {
    format!(
        "    {{\n      \"id\": \"{}\",\n      \"batch\": {},\n      \"resolution\": {},\n      \
         \"min_ns\": {:.1},\n      \"median_ns\": {:.1},\n      \"mean_ns\": {:.1},\n      \
         \"max_ns\": {:.1},\n      \"images_per_s\": {:.2}\n    }}",
        r.id,
        r.batch,
        r.resolution,
        r.stats.min_ns,
        r.stats.median_ns,
        r.stats.mean_ns,
        r.stats.max_ns,
        r.batch as f64 / (r.stats.median_ns * 1e-9)
    )
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let mut speedups: Vec<(String, f64, f64)> = Vec::new();

    for (name, s) in [("s0", 0usize), ("s3", 3)] {
        let cfg = RevBiFPNConfig::scaled(s, 1000);
        let res = cfg.resolution;
        let mut model = RevBiFPNClassifier::new(cfg.clone());
        let frozen = model.freeze().expect("family configs must freeze");
        let quant = model.freeze_int8().expect("family configs must quantize");
        println!(
            "{name}: resolution {res}, f32 panels {:.1} MiB, int8 panels {:.1} MiB",
            frozen.packed_bytes() as f64 / (1 << 20) as f64,
            quant.quant_packed_bytes() as f64 / (1 << 20) as f64
        );

        for batch in [1usize, 8] {
            let iters = if batch == 1 { 5 } else { 3 };
            let mut rng = StdRng::seed_from_u64(42);
            let x = Tensor::randn(Shape::new(batch, 3, res, res), 1.0, &mut rng);

            let unfused = time(iters, || {
                let _ = model.forward(&x, RunMode::Eval);
            });
            let froz = time(iters, || {
                let _ = frozen.forward(&x);
            });
            let int8 = time(iters, || {
                let _ = quant.forward(&x);
            });
            let over_frozen = froz.median_ns / int8.median_ns;
            let over_unfused = unfused.median_ns / int8.median_ns;
            println!(
                "{name} b{batch}: unfused {:.1} ms, frozen {:.1} ms, int8 {:.1} ms, \
                 int8/frozen {over_frozen:.2}x, int8/unfused {over_unfused:.2}x",
                unfused.median_ns / 1e6,
                froz.median_ns / 1e6,
                int8.median_ns / 1e6
            );
            rows.push(Row {
                id: format!("infer_{name}_b{batch}_unfused"),
                batch,
                resolution: res,
                stats: unfused,
            });
            rows.push(Row {
                id: format!("infer_{name}_b{batch}_frozen"),
                batch,
                resolution: res,
                stats: froz,
            });
            rows.push(Row {
                id: format!("infer_{name}_b{batch}_int8"),
                batch,
                resolution: res,
                stats: int8,
            });
            speedups.push((format!("{name}_b{batch}"), over_frozen, over_unfused));
        }
    }

    let bench_rows: Vec<String> = rows.iter().map(json_row).collect();
    let speedup_rows: Vec<String> = speedups
        .iter()
        .map(|(id, fr, un)| {
            format!(
                "    {{ \"id\": \"{id}\", \"int8_over_frozen\": {fr:.3}, \
                 \"int8_over_unfused\": {un:.3} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmarks\": [\n{}\n  ],\n  \"speedups\": [\n{}\n  ]\n}}\n",
        bench_rows.join(",\n"),
        speedup_rows.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_infer_quant.json", json).expect("write bench json");
    println!("wrote results/BENCH_infer_quant.json");
}
