//! Multi-tenant overload throughput benchmark: drives the serving engine
//! at a configurable overload factor (default 10x the paced tenant's load,
//! `--overload 100` for the deep end) with three tenants — a paced
//! interactive tenant, and two flooding batch tenants held back by rate /
//! in-flight quotas — and writes `results/BENCH_serve_throughput.json`
//! with goodput, the typed shed breakdown, and per-tenant latency
//! percentiles.
//!
//! The number this bench guards: under a flood the engine's *goodput*
//! (completed requests/sec) must stay positive and every rejection must be
//! one of the typed shed categories — overload converts to clean sheds,
//! not collapse. `--smoke` shortens the run for CI.

use revbifpn::RevBiFPNConfig;
use revbifpn_serve::{
    BreakerConfig, PendingResponse, QuotaScope, ServeConfig, ServeEngine, ServeError, TenantId,
    TenantQuota,
};
use revbifpn_tensor::{Shape, Tensor};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Default, Clone, Debug)]
struct ShedCounts {
    quota_rate: u64,
    quota_inflight: u64,
    breaker_open: u64,
    queue_full: u64,
    deadline: u64,
    other: u64,
}

impl ShedCounts {
    /// Classifies a typed rejection; the exhaustive match makes a new
    /// untyped escape hatch a compile error here too.
    fn count(&mut self, e: &ServeError) {
        match e {
            ServeError::QuotaExceeded { scope: QuotaScope::Rate, .. } => self.quota_rate += 1,
            ServeError::QuotaExceeded { scope: QuotaScope::InFlight, .. } => {
                self.quota_inflight += 1;
            }
            ServeError::CircuitOpen { .. } => self.breaker_open += 1,
            ServeError::QueueFull { .. } => self.queue_full += 1,
            ServeError::DeadlineExceeded { .. } => self.deadline += 1,
            ServeError::InvalidShape(_)
            | ServeError::NonFiniteInput { .. }
            | ServeError::OutOfRange { .. }
            | ServeError::Poisoned
            | ServeError::WorkerLost
            | ServeError::ShuttingDown => self.other += 1,
        }
    }

    fn total(&self) -> u64 {
        self.quota_rate
            + self.quota_inflight
            + self.breaker_open
            + self.queue_full
            + self.deadline
            + self.other
    }

    fn merge(&mut self, o: &ShedCounts) {
        self.quota_rate += o.quota_rate;
        self.quota_inflight += o.quota_inflight;
        self.breaker_open += o.breaker_open;
        self.queue_full += o.queue_full;
        self.deadline += o.deadline;
        self.other += o.other;
    }

    fn json(&self) -> String {
        format!(
            "{{ \"quota_rate\": {}, \"quota_inflight\": {}, \"breaker_open\": {}, \
             \"queue_full\": {}, \"deadline\": {}, \"other\": {} }}",
            self.quota_rate,
            self.quota_inflight,
            self.breaker_open,
            self.queue_full,
            self.deadline,
            self.other
        )
    }
}

#[derive(Default)]
struct TenantReport {
    offered: u64,
    completed: u64,
    latencies_ms: Vec<f64>,
    shed: ShedCounts,
}

impl TenantReport {
    fn absorb(&mut self, outcome: Result<f64, ServeError>) {
        match outcome {
            Ok(ms) => {
                self.completed += 1;
                self.latencies_ms.push(ms);
            }
            Err(e) => self.shed.count(&e),
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn image(seed: usize) -> Tensor {
    Tensor::full(Shape::new(1, 3, 32, 32), 0.01 * (seed % 7) as f32)
}

/// Flood submitter: keeps at most `window` responses outstanding, waiting
/// the oldest out when full — sustained pressure with measured latency.
fn flood_tenant(
    engine: &ServeEngine,
    tenant: TenantId,
    per_tick: usize,
    tick: Duration,
    stop: &AtomicBool,
    report: &Mutex<TenantReport>,
) {
    let mut local = TenantReport::default();
    let mut window: VecDeque<PendingResponse> = VecDeque::new();
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..per_tick {
            i += 1;
            local.offered += 1;
            match engine.submit_tenant(tenant, image(i)) {
                Ok(p) => window.push_back(p),
                Err(e) => local.shed.count(&e),
            }
            while window.len() >= 32 {
                let p = window.pop_front().expect("window non-empty");
                local.absorb(p.wait().map(|r| r.latency_ms));
            }
        }
        std::thread::sleep(tick);
    }
    for p in window {
        local.absorb(p.wait().map(|r| r.latency_ms));
    }
    *report.lock().unwrap() = local;
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let overload: usize = args
        .iter()
        .position(|a| a == "--overload")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let duration = Duration::from_millis(if smoke { 2_000 } else { 10_000 });

    let paced = TenantId(1);
    let batch_a = TenantId(2);
    let batch_b = TenantId(3);

    let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
    cfg.workers = 1;
    cfg.queue_capacity = 32;
    cfg.max_batch = 2;
    cfg.default_timeout_ms = 2_000;
    cfg.watchdog_poll_ms = 5;
    cfg.breaker = BreakerConfig {
        window: 16,
        min_samples: 8,
        trip_ratio: 0.5,
        open_ms: 500,
        half_open_probes: 2,
    };
    cfg.tenant_quotas = vec![
        (
            paced,
            TenantQuota {
                rate_per_sec: f64::INFINITY,
                burst: 256,
                max_in_flight: 16,
                weight: 4,
            },
        ),
        (batch_a, TenantQuota { rate_per_sec: 300.0, burst: 16, max_in_flight: 6, weight: 1 }),
        (batch_b, TenantQuota { rate_per_sec: 150.0, burst: 8, max_in_flight: 4, weight: 2 }),
    ];
    let engine = ServeEngine::start(cfg);

    // Warm the packed panels out of the measurement.
    for i in 0..8 {
        let _ = engine.submit_tenant(paced, image(i)).map(|p| p.wait());
    }

    // Each flood thread offers `overload/10` submissions per millisecond
    // tick: --overload 10 is ~1k offered/sec per flood tenant against a
    // paced tenant doing ~100/sec, --overload 100 is ~10k/sec.
    let per_tick = (overload / 10).max(1);
    let stop = AtomicBool::new(false);
    let paced_report = Mutex::new(TenantReport::default());
    let a_report = Mutex::new(TenantReport::default());
    let b_report = Mutex::new(TenantReport::default());
    let started = Instant::now();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            flood_tenant(&engine, batch_a, per_tick, Duration::from_millis(1), &stop, &a_report)
        });
        scope.spawn(|| {
            flood_tenant(&engine, batch_b, per_tick, Duration::from_millis(2), &stop, &b_report)
        });

        // Paced tenant on this thread: sequential, ~100 offered/sec.
        let mut local = TenantReport::default();
        let mut i = 0usize;
        while started.elapsed() < duration {
            i += 1;
            local.offered += 1;
            match engine.submit_tenant(paced, image(i)) {
                Ok(p) => local.absorb(p.wait().map(|r| r.latency_ms)),
                Err(e) => local.shed.count(&e),
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        *paced_report.lock().unwrap() = local;
    });
    let elapsed = started.elapsed().as_secs_f64();

    let reports = [
        ("paced", paced, 4u32, paced_report.into_inner().unwrap()),
        ("flood", batch_a, 1, a_report.into_inner().unwrap()),
        ("flood", batch_b, 2, b_report.into_inner().unwrap()),
    ];

    let mut offered = 0u64;
    let mut completed = 0u64;
    let mut shed = ShedCounts::default();
    let mut tenant_rows = Vec::new();
    for (role, tenant, weight, r) in &reports {
        offered += r.offered;
        completed += r.completed;
        shed.merge(&r.shed);
        let mut lat = r.latencies_ms.clone();
        lat.sort_by(f64::total_cmp);
        let (p50, p99) = (percentile(&lat, 0.50), percentile(&lat, 0.99));
        eprintln!(
            "tenant {} ({role}, weight {weight}): offered {}, completed {}, shed {}, \
             p50 {p50:.1} ms, p99 {p99:.1} ms",
            tenant.0,
            r.offered,
            r.completed,
            r.shed.total()
        );
        tenant_rows.push(format!(
            "    {{ \"tenant\": {}, \"role\": \"{role}\", \"weight\": {weight}, \
             \"offered\": {}, \"completed\": {}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \
             \"shed\": {} }}",
            tenant.0,
            r.offered,
            r.completed,
            r.shed.json()
        ));
    }

    let h = engine.health();
    let goodput = completed as f64 / elapsed;
    let offered_rps = offered as f64 / elapsed;
    eprintln!(
        "overload {overload}x: offered {offered_rps:.0}/s, goodput {goodput:.0}/s, \
         shed total {} ({} swept in queue)",
        shed.total(),
        h.swept_expired
    );

    let json = format!(
        "{{\n  \"overload_factor\": {overload},\n  \"duration_s\": {elapsed:.2},\n  \
         \"offered_per_sec\": {offered_rps:.1},\n  \"goodput_per_sec\": {goodput:.1},\n  \
         \"shed_breakdown\": {},\n  \"swept_expired\": {},\n  \
         \"resident_budget_bytes\": {},\n  \"resident_governed_bytes\": {},\n  \
         \"tenants\": [\n{}\n  ]\n}}\n",
        shed.json(),
        h.swept_expired,
        h.resident_budget_bytes,
        h.resident_governed_bytes,
        tenant_rows.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_serve_throughput.json", json).expect("write bench json");
    println!("wrote results/BENCH_serve_throughput.json");

    engine.shutdown();

    // Sanity gates so CI can run this directly: overload must convert to
    // goodput plus *typed* sheds, with the books intact.
    let mut failed = false;
    if completed == 0 {
        eprintln!("FAIL: zero goodput under overload");
        failed = true;
    }
    if shed.quota_rate == 0 {
        eprintln!("FAIL: the flood was never rate-shed — quotas inert?");
        failed = true;
    }
    if offered < completed {
        eprintln!("FAIL: served more than was offered — accounting broken");
        failed = true;
    }
    if h.queue_depth != 0 {
        eprintln!("FAIL: {} tickets lingering in the queue after shutdown", h.queue_depth);
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
