//! Multi-tenant overload throughput benchmark with a batched-vs-unbatched
//! A/B: each configuration (continuous batching on / off) is driven at 1x
//! and at a configurable overload factor (default 10x, `--overload 100`
//! for the deep end) with three tenants — a paced interactive tenant, and
//! two flooding batch tenants held back by rate / in-flight quotas — and
//! the results land in `results/BENCH_serve_throughput.json` with goodput,
//! the typed shed breakdown, per-tenant latency percentiles, and the mean
//! achieved batch size per batcher bucket.
//!
//! The numbers this bench guards: under a flood the engine's *goodput*
//! (completed requests/sec) must stay positive with every rejection typed,
//! and the batched engine must beat the unbatched one at overload (the
//! continuous batcher's reason to exist) without starving the paced
//! tenant. `--smoke` shortens the run for CI and skips the perf-ratio
//! gates (timing on shared CI boxes is noise).

use revbifpn::RevBiFPNConfig;
use revbifpn_serve::{
    BreakerConfig, HealthSnapshot, PendingResponse, QuotaScope, ServeConfig, ServeEngine,
    ServeError, TenantId, TenantQuota,
};
use revbifpn_tensor::{Shape, Tensor};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Default, Clone, Debug)]
struct ShedCounts {
    quota_rate: u64,
    quota_inflight: u64,
    breaker_open: u64,
    queue_full: u64,
    deadline: u64,
    infeasible: u64,
    other: u64,
}

impl ShedCounts {
    /// Classifies a typed rejection; the exhaustive match makes a new
    /// untyped escape hatch a compile error here too.
    fn count(&mut self, e: &ServeError) {
        match e {
            ServeError::QuotaExceeded { scope: QuotaScope::Rate, .. } => self.quota_rate += 1,
            ServeError::QuotaExceeded { scope: QuotaScope::InFlight, .. } => {
                self.quota_inflight += 1;
            }
            ServeError::CircuitOpen { .. } => self.breaker_open += 1,
            ServeError::QueueFull { .. } => self.queue_full += 1,
            ServeError::DeadlineExceeded { .. } => self.deadline += 1,
            ServeError::Infeasible { .. } => self.infeasible += 1,
            ServeError::InvalidShape(_)
            | ServeError::NonFiniteInput { .. }
            | ServeError::OutOfRange { .. }
            | ServeError::Poisoned
            | ServeError::WorkerLost
            | ServeError::ShuttingDown => self.other += 1,
        }
    }

    fn total(&self) -> u64 {
        self.quota_rate
            + self.quota_inflight
            + self.breaker_open
            + self.queue_full
            + self.deadline
            + self.infeasible
            + self.other
    }

    fn merge(&mut self, o: &ShedCounts) {
        self.quota_rate += o.quota_rate;
        self.quota_inflight += o.quota_inflight;
        self.breaker_open += o.breaker_open;
        self.queue_full += o.queue_full;
        self.deadline += o.deadline;
        self.infeasible += o.infeasible;
        self.other += o.other;
    }

    fn json(&self) -> String {
        format!(
            "{{ \"quota_rate\": {}, \"quota_inflight\": {}, \"breaker_open\": {}, \
             \"queue_full\": {}, \"deadline\": {}, \"infeasible\": {}, \"other\": {} }}",
            self.quota_rate,
            self.quota_inflight,
            self.breaker_open,
            self.queue_full,
            self.deadline,
            self.infeasible,
            self.other
        )
    }
}

#[derive(Default)]
struct TenantReport {
    offered: u64,
    completed: u64,
    latencies_ms: Vec<f64>,
    shed: ShedCounts,
}

impl TenantReport {
    fn absorb(&mut self, outcome: Result<f64, ServeError>) {
        match outcome {
            Ok(ms) => {
                self.completed += 1;
                self.latencies_ms.push(ms);
            }
            Err(e) => self.shed.count(&e),
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn image(seed: usize) -> Tensor {
    Tensor::full(Shape::new(1, 3, 32, 32), 0.01 * (seed % 7) as f32)
}

/// Flood submitter: keeps at most `window` responses outstanding, waiting
/// the oldest out when full — sustained pressure with measured latency.
fn flood_tenant(
    engine: &ServeEngine,
    tenant: TenantId,
    per_tick: usize,
    tick: Duration,
    stop: &AtomicBool,
    report: &Mutex<TenantReport>,
) {
    let mut local = TenantReport::default();
    let mut window: VecDeque<PendingResponse> = VecDeque::new();
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..per_tick {
            i += 1;
            local.offered += 1;
            match engine.submit_tenant(tenant, image(i)) {
                Ok(p) => window.push_back(p),
                Err(e) => local.shed.count(&e),
            }
            while window.len() >= 32 {
                let p = window.pop_front().expect("window non-empty");
                local.absorb(p.wait().map(|r| r.latency_ms));
            }
        }
        std::thread::sleep(tick);
    }
    for p in window {
        local.absorb(p.wait().map(|r| r.latency_ms));
    }
    *report.lock().unwrap() = local;
}

/// One measured configuration: engine wiring, aggregate counts, and the
/// health snapshot taken before shutdown.
struct Scenario {
    name: String,
    batching: bool,
    overload: usize,
    elapsed_s: f64,
    offered: u64,
    completed: u64,
    goodput: f64,
    shed: ShedCounts,
    paced_offered: u64,
    paced_completed: u64,
    paced_p50: f64,
    paced_p99: f64,
    tenant_rows: Vec<String>,
    health: HealthSnapshot,
}

/// Builds a fresh engine (batching on or off) and drives the three-tenant
/// load at `overload`x for `duration`. Each scenario is hermetic: its own
/// engine, its own warmup, its own cost-model calibration at freeze.
fn run_scenario(name: &str, batching: bool, overload: usize, duration: Duration) -> Scenario {
    let paced = TenantId(1);
    let batch_a = TenantId(2);
    let batch_b = TenantId(3);

    let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
    cfg.workers = 1;
    cfg.queue_capacity = 64;
    // The A/B: the unbatched arm reproduces the PR-8 engine (tiny batches,
    // no lingering); the batched arm lets the continuous batcher assemble
    // cost-model-sized batches. Flood quotas admit well past single-worker
    // service capacity, so the engine — not the admission gate — is the
    // bottleneck and the A/B measures serving throughput, not quota policy
    // (the PR-8 bench capped admission at ~550/s, below even unbatched
    // capacity, which made the two arms indistinguishable).
    cfg.max_batch = if batching { 8 } else { 2 };
    cfg.batch.enabled = batching;
    cfg.default_timeout_ms = 2_000;
    cfg.watchdog_poll_ms = 5;
    cfg.breaker = BreakerConfig {
        window: 16,
        min_samples: 8,
        trip_ratio: 0.5,
        open_ms: 500,
        half_open_probes: 2,
    };
    cfg.tenant_quotas = vec![
        (
            paced,
            TenantQuota {
                rate_per_sec: f64::INFINITY,
                burst: 256,
                max_in_flight: 16,
                weight: 4,
            },
        ),
        (batch_a, TenantQuota { rate_per_sec: 2_500.0, burst: 64, max_in_flight: 24, weight: 1 }),
        (batch_b, TenantQuota { rate_per_sec: 1_250.0, burst: 32, max_in_flight: 16, weight: 2 }),
    ];
    let engine = ServeEngine::start(cfg);

    // Warm the packed panels out of the measurement.
    for i in 0..8 {
        let _ = engine.submit_tenant(paced, image(i)).map(|p| p.wait());
    }

    // Each flood thread offers `overload/5` submissions per millisecond
    // tick: --overload 10 is ~2k offered/sec per flood tenant against a
    // paced tenant doing ~100/sec, enough to keep the queue saturated and
    // the flood in-flight quotas pinned (so the floods shed typed while
    // the paced tenant's queue headroom stays guaranteed: flood occupancy
    // is bounded by 24+16 in-flight, under the 64-deep queue). At 1x the
    // floods pace themselves down to roughly the paced tenant's rate.
    let per_tick = (overload / 5).max(1);
    let flood_tick = Duration::from_millis(if overload >= 10 { 1 } else { 10 });
    let stop = AtomicBool::new(false);
    let paced_report = Mutex::new(TenantReport::default());
    let a_report = Mutex::new(TenantReport::default());
    let b_report = Mutex::new(TenantReport::default());
    let started = Instant::now();

    std::thread::scope(|scope| {
        scope.spawn(|| flood_tenant(&engine, batch_a, per_tick, flood_tick, &stop, &a_report));
        scope.spawn(|| {
            flood_tenant(&engine, batch_b, per_tick, flood_tick * 2, &stop, &b_report)
        });

        // Paced tenant on this thread: sequential, ~100 offered/sec.
        let mut local = TenantReport::default();
        let mut i = 0usize;
        while started.elapsed() < duration {
            i += 1;
            local.offered += 1;
            match engine.submit_tenant(paced, image(i)) {
                Ok(p) => local.absorb(p.wait().map(|r| r.latency_ms)),
                Err(e) => local.shed.count(&e),
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        *paced_report.lock().unwrap() = local;
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let reports = [
        ("paced", paced, 4u32, paced_report.into_inner().unwrap()),
        ("flood", batch_a, 1, a_report.into_inner().unwrap()),
        ("flood", batch_b, 2, b_report.into_inner().unwrap()),
    ];

    let mut offered = 0u64;
    let mut completed = 0u64;
    let mut shed = ShedCounts::default();
    let mut tenant_rows = Vec::new();
    let mut paced_stats = (0u64, 0u64, 0.0f64, 0.0f64);
    for (role, tenant, weight, r) in &reports {
        offered += r.offered;
        completed += r.completed;
        shed.merge(&r.shed);
        let mut lat = r.latencies_ms.clone();
        lat.sort_by(f64::total_cmp);
        let (p50, p99) = (percentile(&lat, 0.50), percentile(&lat, 0.99));
        if *role == "paced" {
            paced_stats = (r.offered, r.completed, p50, p99);
        }
        eprintln!(
            "  [{name}] tenant {} ({role}, weight {weight}): offered {}, completed {}, \
             shed {}, p50 {p50:.1} ms, p99 {p99:.1} ms",
            tenant.0,
            r.offered,
            r.completed,
            r.shed.total()
        );
        tenant_rows.push(format!(
            "      {{ \"tenant\": {}, \"role\": \"{role}\", \"weight\": {weight}, \
             \"offered\": {}, \"completed\": {}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \
             \"shed\": {} }}",
            tenant.0,
            r.offered,
            r.completed,
            r.shed.json()
        ));
    }

    let health = engine.health();
    for r in &health.cost_model {
        eprintln!(
            "  [{name}] cost fit variant {} {:?} rung {}: a {:.3} ms, c {:.3} ms/item, \
             resid {:.3} ms, {} samples",
            r.key.variant, r.key.precision, r.key.rung, r.a_ms, r.c_ms, r.residual_ewma_ms,
            r.samples
        );
    }
    engine.shutdown();
    let goodput = completed as f64 / elapsed_s;
    eprintln!(
        "  [{name}] offered {:.0}/s, goodput {goodput:.0}/s, shed total {} \
         (closes: {} size / {} deadline / {} linger)",
        offered as f64 / elapsed_s,
        shed.total(),
        health.batch_size_closes,
        health.batch_deadline_closes,
        health.batch_linger_closes,
    );

    Scenario {
        name: name.into(),
        batching,
        overload,
        elapsed_s,
        offered,
        completed,
        goodput,
        shed,
        paced_offered: paced_stats.0,
        paced_completed: paced_stats.1,
        paced_p50: paced_stats.2,
        paced_p99: paced_stats.3,
        tenant_rows,
        health,
    }
}

fn scenario_json(s: &Scenario) -> String {
    let buckets: Vec<String> = s
        .health
        .batch_buckets
        .iter()
        .map(|b| {
            format!(
                "      {{ \"variant\": {}, \"precision\": \"{:?}\", \"rung\": {}, \
                 \"closes\": {}, \"mean_batch\": {:.3}, \"hist\": {:?} }}",
                b.key.variant, b.key.precision, b.key.rung, b.closes, b.mean_batch, b.hist
            )
        })
        .collect();
    format!(
        "  {{\n    \"name\": \"{}\",\n    \"batching\": {},\n    \"overload_factor\": {},\n    \
         \"duration_s\": {:.2},\n    \"offered_per_sec\": {:.1},\n    \
         \"goodput_per_sec\": {:.1},\n    \"paced_offered\": {},\n    \
         \"paced_completed\": {},\n    \"paced_p50_ms\": {:.3},\n    \
         \"paced_p99_ms\": {:.3},\n    \"shed_breakdown\": {},\n    \"swept_expired\": {},\n    \
         \"close_counts\": {{ \"size\": {}, \"deadline\": {}, \"linger\": {}, \
         \"generation\": {}, \"flush\": {} }},\n    \"batch_buckets\": [\n{}\n    ],\n    \
         \"tenants\": [\n{}\n    ]\n  }}",
        s.name,
        s.batching,
        s.overload,
        s.elapsed_s,
        s.offered as f64 / s.elapsed_s,
        s.goodput,
        s.paced_offered,
        s.paced_completed,
        s.paced_p50,
        s.paced_p99,
        s.shed.json(),
        s.health.swept_expired,
        s.health.batch_size_closes,
        s.health.batch_deadline_closes,
        s.health.batch_linger_closes,
        s.health.batch_generation_closes,
        s.health.batch_flush_closes,
        buckets.join(",\n"),
        s.tenant_rows.join(",\n")
    )
}

/// 10x-overload goodput the PR-8 engine recorded on this host (same bench
/// shape, admission capped by the old flood quotas; see the previous
/// `results/BENCH_serve_throughput.json` in git history). The batched
/// engine must clear 1.5x this.
const PR8_BASELINE_GOODPUT: f64 = 537.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let overload: usize = args
        .iter()
        .position(|a| a == "--overload")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let duration = Duration::from_millis(if smoke { 1_500 } else { 8_000 });

    let scenarios = vec![
        run_scenario("unbatched_1x", false, 1, duration),
        run_scenario("batched_1x", true, 1, duration),
        run_scenario(&format!("unbatched_{overload}x"), false, overload, duration),
        run_scenario(&format!("batched_{overload}x"), true, overload, duration),
    ];
    let unbatched_hi = &scenarios[2];
    let batched_hi = &scenarios[3];
    let batched_lo = &scenarios[1];
    let ratio = batched_hi.goodput / unbatched_hi.goodput.max(1e-9);
    eprintln!(
        "batched vs unbatched at {overload}x: {:.0}/s vs {:.0}/s ({ratio:.2}x)",
        batched_hi.goodput, unbatched_hi.goodput
    );

    let rows: Vec<String> = scenarios.iter().map(scenario_json).collect();
    let vs_pr8 = batched_hi.goodput / PR8_BASELINE_GOODPUT;
    let json = format!(
        "{{\n\"overload_factor\": {overload},\n\"goodput_ratio_at_overload\": {ratio:.3},\n\
         \"pr8_baseline_goodput_per_sec\": {PR8_BASELINE_GOODPUT:.1},\n\
         \"batched_goodput_vs_pr8_baseline\": {vs_pr8:.3},\n\
         \"scenarios\": [\n{}\n]\n}}\n",
        rows.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_serve_throughput.json", json).expect("write bench json");
    println!("wrote results/BENCH_serve_throughput.json");

    // Sanity gates so CI can run this directly: overload must convert to
    // goodput plus *typed* sheds, with the books intact.
    let mut failed = false;
    for s in &scenarios {
        if s.completed == 0 {
            eprintln!("FAIL [{}]: zero goodput", s.name);
            failed = true;
        }
        if s.offered < s.completed {
            eprintln!("FAIL [{}]: served more than was offered — accounting broken", s.name);
            failed = true;
        }
        if s.health.queue_depth != 0 || s.health.batcher_depth != 0 {
            eprintln!(
                "FAIL [{}]: {} queued / {} bucketed tickets lingering after the run",
                s.name, s.health.queue_depth, s.health.batcher_depth
            );
            failed = true;
        }
        if s.overload >= 10 && s.shed.total() == 0 {
            eprintln!(
                "FAIL [{}]: the flood was never shed — quotas and admission inert?",
                s.name
            );
            failed = true;
        }
    }
    // Perf-ratio gates need a quiet machine and a full-length run; smoke
    // mode only checks the books above.
    if !smoke {
        if batched_hi.goodput < 1.5 * PR8_BASELINE_GOODPUT {
            eprintln!(
                "FAIL: batched goodput at {overload}x is {:.0}/s, below 1.5x the PR-8 \
                 unbatched baseline ({PR8_BASELINE_GOODPUT:.0}/s)",
                batched_hi.goodput
            );
            failed = true;
        }
        if ratio < 0.95 {
            eprintln!(
                "FAIL: batching regressed goodput at {overload}x ({ratio:.2}x unbatched)"
            );
            failed = true;
        }
        if batched_hi.paced_completed < batched_hi.paced_offered {
            eprintln!(
                "FAIL: paced tenant lost {} of {} requests under the batched flood",
                batched_hi.paced_offered - batched_hi.paced_completed,
                batched_hi.paced_offered
            );
            failed = true;
        }
        let p99_limit = 2.0 * batched_lo.paced_p99.max(1.0);
        if batched_hi.paced_p99 > p99_limit {
            eprintln!(
                "FAIL: paced p99 {:.1} ms under the batched flood exceeds 2x the \
                 uncontended {:.1} ms",
                batched_hi.paced_p99, batched_lo.paced_p99
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
