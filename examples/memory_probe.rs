//! Interactive memory probe: sweeps depth, resolution and batch size with
//! the byte-exact activation meter and prints the measured peaks for
//! reversible vs conventional training — the raw material behind Figures
//! 1, 4 and 12.
//!
//! Run with: `cargo run --release --example memory_probe`

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_tensor::{Shape, Tensor};

fn measure(cfg: RevBiFPNConfig, batch: usize) -> (usize, usize) {
    let mut rng = StdRng::seed_from_u64(0);
    let res = cfg.resolution;
    let x = Tensor::randn(Shape::new(batch, 3, res, res), 1.0, &mut rng);
    let mut m = RevBiFPNClassifier::new(cfg);
    let (rev, _) = m.measure_step(&x, RunMode::TrainReversible);
    let (conv, _) = m.measure_step(&x, RunMode::TrainConventional);
    (rev, conv)
}

fn main() {
    println!("-- depth sweep (tiny width, 32px, batch 8) --");
    println!("{:>3} {:>14} {:>14} {:>7}", "d", "reversible", "conventional", "ratio");
    for d in 1..=6 {
        let (rev, conv) = measure(RevBiFPNConfig::tiny(10).with_depth(d), 8);
        println!("{:>3} {:>14} {:>14} {:>6.1}x", d, rev, conv, conv as f64 / rev as f64);
    }

    println!("\n-- resolution sweep (tiny width, d=2, batch 4) --");
    println!("{:>4} {:>14} {:>14} {:>7}", "res", "reversible", "conventional", "ratio");
    for res in [32usize, 64, 96, 128] {
        let (rev, conv) = measure(RevBiFPNConfig::tiny(10).with_depth(2).with_resolution(res), 4);
        println!("{:>4} {:>14} {:>14} {:>6.1}x", res, rev, conv, conv as f64 / rev as f64);
    }

    println!("\n-- batch sweep (tiny width, d=2, 32px) --");
    println!("{:>5} {:>14} {:>14} {:>7}", "batch", "reversible", "conventional", "ratio");
    for batch in [1usize, 4, 16] {
        let (rev, conv) = measure(RevBiFPNConfig::tiny(10).with_depth(2), batch);
        println!("{:>5} {:>14} {:>14} {:>6.1}x", batch, rev, conv, conv as f64 / rev as f64);
    }

    println!("\nReversible memory is flat in depth and scales only with the");
    println!("c*h*w of the live pyramid — the paper's O(nchw) vs O(nchwd).");
}
