//! Train a RevBiFPN classifier on the SynthScale multi-scale task with the
//! paper's full recipe structure: SGD + momentum, warmup + cosine + tail
//! learning rate, label smoothing, flips/jitter/mixup/CutMix augmentation,
//! parameter EMA — all with reversible recomputation.
//!
//! Run with: `cargo run --release --example classify_synthetic`
//! (set `EPOCHS=8 TRAIN=1024` for a longer run).

use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_data::augment::AugmentPolicy;
use revbifpn_data::{SynthScale, SynthScaleConfig};
use revbifpn_train::{train_classifier, PipelineConfig, ResilienceConfig, TrainConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let epochs = env_usize("EPOCHS", 4);
    let train_size = env_usize("TRAIN", 512);

    let data = SynthScale::new(SynthScaleConfig::new(32), 7);
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    println!(
        "training {} ({} params) on SynthScale ({} classes) for {epochs} epochs x {train_size} samples",
        model.cfg().name.clone(),
        model.param_count(),
        data.num_classes()
    );

    let cfg = TrainConfig {
        epochs,
        train_size,
        val_size: 256,
        batch_size: 16,
        lr: 0.08,
        momentum: 0.9,
        weight_decay: 4e-5,
        label_smoothing: 0.1,
        ema_decay: 0.95,
        augment: AugmentPolicy { hflip: true, jitter: 0.1, cutout: 0, mixup: 0.1, cutmix: 0.5 },
        seed: 0,
        resilience: ResilienceConfig::default(),
        shards: 0,
        pipeline: PipelineConfig::disabled(),
    };
    let history = train_classifier(&mut model, &data, &cfg, RunMode::TrainReversible);
    println!("\nepoch  train-loss  train-acc  val-acc(EMA)  peak-act-bytes");
    for e in &history.epochs {
        println!(
            "{:>5}  {:>10.4}  {:>9.3}  {:>12.3}  {:>14}",
            e.epoch, e.train_loss, e.train_acc, e.val_acc, e.peak_activation_bytes
        );
    }
    println!(
        "\nfinal EMA validation accuracy: {:.1}% (chance: {:.1}%)",
        history.final_val_acc() * 100.0,
        100.0 / data.num_classes() as f64
    );
}
