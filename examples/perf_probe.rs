//! Decomposes the batch-1 RevBiFPN-S0 stem conv into its phases (im2col,
//! GEMM, total conv2d) and prints per-phase wall-clock. Diagnostic tool for
//! kernel tuning; not part of any paper experiment.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_repro::tensor::{conv2d, sgemm, ConvSpec, Shape, Tensor};
use std::time::Instant;

fn time(label: &str, iters: usize, mut f: impl FnMut()) {
    // Warm up.
    for _ in 0..3 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{label:32} {:.3} ms", per * 1e3);
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let img = Tensor::randn(Shape::new(1, 3, 224, 224), 1.0, &mut rng);
    let w_stem = Tensor::randn(Shape::new(48, 3, 3, 3), 0.1, &mut rng);
    let stem = ConvSpec::kxk(3, 2);
    let iters = 40;

    time("conv2d stem total", iters, || {
        let _ = conv2d(&img, &w_stem, None, &stem);
    });

    // The GEMM the stem lowers to: [48 x 27] * [27 x 12544].
    let (m, k, n) = (48, 27, 112 * 112);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 * 0.1).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.1).collect();
    let mut c = vec![0.0f32; m * n];
    time("sgemm 48x27x12544", iters, || {
        sgemm(m, k, n, 1.0, &a, &b, 0.0, &mut c);
    });

    // Same FLOPs, square-ish: the shape the blocked kernel likes.
    let (m2, k2, n2) = (128, 128, 2048);
    let a2: Vec<f32> = (0..m2 * k2).map(|i| (i % 7) as f32 * 0.1).collect();
    let b2: Vec<f32> = (0..k2 * n2).map(|i| (i % 5) as f32 * 0.1).collect();
    let mut c2 = vec![0.0f32; m2 * n2];
    time("sgemm 128x128x2048", iters, || {
        sgemm(m2, k2, n2, 1.0, &a2, &b2, 0.0, &mut c2);
    });

    // Output allocation cost: zeroing a [1,48,112,112] tensor.
    time("Tensor::zeros out", iters, || {
        let _ = Tensor::zeros(Shape::new(1, 48, 112, 112));
    });
}
