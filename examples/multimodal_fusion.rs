//! Appendix E (future work) realized: the **RevSilo as a reversible
//! multi-modal fusion module**. Two "sensors" — a high-resolution camera
//! stream and a low-resolution wide-context stream (think radar / thermal)
//! — are fused bidirectionally with O(1) activation memory, and both sensor
//! inputs remain exactly recoverable from the fused representation.
//!
//! Run with: `cargo run --release --example multimodal_fusion`

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::{MBConv, MBConvCfg};
use revbifpn_nn::{meter, CacheMode, Layer};
use revbifpn_rev::{RevSilo, ReversibleSequence, TrainMode};
use revbifpn_tensor::{Shape, Tensor};

fn make_fusion_silo(channels: &[usize; 2], seed: u64) -> RevSilo {
    let c = *channels;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut down = |j: usize, i: usize| -> Box<dyn Layer> {
        Box::new(MBConv::new(MBConvCfg::down(c[j], c[i], (i - j) as u32, 2.0).plain().with_zero_init(), &mut rng))
    };
    let mut rng2 = StdRng::seed_from_u64(seed ^ 99);
    let mut up = |j: usize, i: usize| -> Box<dyn Layer> {
        Box::new(MBConv::new(MBConvCfg::up(c[j], c[i], (j - i) as u32, 2.0).plain().with_zero_init(), &mut rng2))
    };
    RevSilo::new(2, 2, &mut down, &mut up)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let channels = [16usize, 32];

    // Sensor A: 32x32 "camera"; sensor B: 16x16 "wide-context" modality.
    let camera = Tensor::randn(Shape::new(1, channels[0], 32, 32), 1.0, &mut rng);
    let context = Tensor::randn(Shape::new(1, channels[1], 16, 16), 1.0, &mut rng);

    // Stack three fusion silos: repeated bidirectional exchange.
    let mut fusion = ReversibleSequence::new();
    for k in 0..3 {
        fusion.add(Box::new(make_fusion_silo(&channels, 10 + k)));
    }
    // Perturb BN gains so the fusion is non-trivial.
    let mut prng = StdRng::seed_from_u64(7);
    fusion.visit_params(&mut |p| {
        if p.name == "bn.gamma" {
            p.value = Tensor::uniform(p.value.shape(), 0.7, 1.3, &mut prng);
        }
    });

    // Reversible training-style forward: only O(c) stats cached.
    meter::reset();
    let fused = fusion.forward(vec![camera.clone(), context.clone()], CacheMode::Stats);
    println!(
        "fused representations: {:?}, cached bytes during forward: {} (inputs are {} bytes)",
        fused.iter().map(|f| f.shape()).collect::<Vec<_>>(),
        meter::current(),
        camera.bytes() + context.bytes(),
    );

    // Backward without ever having stored the intermediate fusion states.
    let dys: Vec<Tensor> = fused.iter().map(|f| Tensor::randn(f.shape(), 0.1, &mut rng)).collect();
    fusion.visit_params(&mut |p| p.zero_grad());
    let (recovered, _grads) = fusion.backward(&fused, dys, TrainMode::Reversible);
    println!(
        "sensor reconstruction during backward: camera err {:.2e}, context err {:.2e}",
        recovered[0].max_abs_diff(&camera),
        recovered[1].max_abs_diff(&context)
    );

    // Standalone inversion (e.g. to audit what each sensor contributed).
    let mut fusion_eval = fusion;
    fusion_eval.clear_cache();
    let fused_eval = fusion_eval.forward(vec![camera.clone(), context.clone()], CacheMode::None);
    let back = fusion_eval.inverse(fused_eval);
    println!(
        "eval-mode inversion: camera err {:.2e}, context err {:.2e}",
        back[0].max_abs_diff(&camera),
        back[1].max_abs_diff(&context)
    );
    println!("\nThe RevSilo fuses modalities bidirectionally, trains in O(nchw) memory,");
    println!("and never destroys sensor information — the Appendix E proposal, working.");
}
