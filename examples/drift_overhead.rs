//! Measures the clean-path cost of the reversible-drift sentinel: the same
//! reversible train step (forward in `Stats` mode + reconstructing
//! backward) timed with fingerprint capture/checking enabled vs disabled.
//! The sentinel reads at most `FP_SAMPLES` strided elements per stream per
//! stage, so the expected overhead is well under the 3% acceptance budget.
//!
//! Run with: `cargo run --release --example drift_overhead`

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_nn::loss::{one_hot, softmax_cross_entropy};
use revbifpn_rev::DriftConfig;
use revbifpn_tensor::{Shape, Tensor};
use std::time::Instant;

fn time_steps(model: &mut RevBiFPNClassifier, x: &Tensor, targets: &Tensor, iters: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        let logits = model.forward(x, RunMode::TrainReversible);
        let (_, dlogits) = softmax_cross_entropy(&logits, targets);
        model.zero_grads();
        model.backward(&dlogits);
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(Shape::new(8, 3, 32, 32), 1.0, &mut rng);
    let targets = one_hot(&[0, 1, 2, 3, 4, 5, 6, 7], 10);
    // Warm up pools/scratch, then interleave off/on blocks and keep the
    // minimum per config — robust to scheduler and thermal noise.
    time_steps(&mut model, &x, &targets, 5);
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..12 {
        model.backbone_mut().body_mut().set_drift_config(DriftConfig { enabled: false, ..DriftConfig::default() });
        off = off.min(time_steps(&mut model, &x, &targets, 10));
        model.backbone_mut().body_mut().set_drift_config(DriftConfig::default());
        on = on.min(time_steps(&mut model, &x, &targets, 10));
    }

    let overhead = (on / off - 1.0) * 100.0;
    println!("reversible step, sentinel off: {:.3} ms (min over 12 blocks)", off * 1e3);
    println!("reversible step, sentinel on:  {:.3} ms", on * 1e3);
    println!("drift-sentinel overhead: {overhead:+.2}% (budget: < 3%)");
}
