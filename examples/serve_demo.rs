//! Serving demo: start the hardened inference engine, push a burst of
//! traffic through it (including a hostile NaN payload and a poison pill),
//! and watch it shed, quarantine, degrade, and recover — without crashing.
//!
//! Run with: `cargo run --release --example serve_demo`

use revbifpn::RevBiFPNConfig;
use revbifpn_serve::{DegradeConfig, ServeConfig, ServeEngine, ServeError};
use revbifpn_tensor::{Shape, Tensor};
use std::time::Duration;

fn image(fill: f32) -> Tensor {
    Tensor::full(Shape::new(1, 3, 32, 32), fill)
}

fn main() {
    let mut cfg = ServeConfig::new(RevBiFPNConfig::tiny(10));
    cfg.workers = 1;
    cfg.queue_capacity = 8;
    cfg.max_batch = 2;
    cfg.degrade = DegradeConfig { high_depth: 4, low_depth: 1, ..DegradeConfig::default() };
    let engine = ServeEngine::start(cfg);
    println!("engine up: tiny model, 1 worker, queue capacity 8");

    // A well-formed request.
    let resp = engine.submit(image(0.1)).unwrap().wait().unwrap();
    println!(
        "clean request -> class {} (score {:.3}) at degrade level {} in {:.1}ms",
        resp.class, resp.score, resp.degrade_level, resp.latency_ms
    );

    // A hostile payload: rejected at admission, never reaches the model.
    let mut nan = image(0.1);
    nan.data_mut()[7] = f32::NAN;
    match engine.submit(nan) {
        Err(e @ ServeError::NonFiniteInput { .. }) => println!("NaN payload -> {e}"),
        other => println!("unexpected: {other:?}"),
    }

    // A poison pill that panics inside the model forward: the batch is
    // bisected, the pill quarantined, and the worker survives.
    let pill = engine
        .submit_with(image(0.2), 5_000, Some(ServeEngine::POISON_TAG))
        .unwrap();
    println!("poison pill -> {:?}", pill.wait().unwrap_err());

    // A burst beyond queue capacity: the excess is shed, not buffered.
    let mut accepted = 0;
    let mut shed = 0;
    let mut pending = Vec::new();
    for i in 0..24 {
        match engine.submit(image(0.01 * i as f32)) {
            Ok(p) => {
                accepted += 1;
                pending.push(p);
            }
            Err(ServeError::QueueFull { .. }) => shed += 1,
            Err(e) => println!("unexpected: {e}"),
        }
    }
    for p in pending {
        let _ = p.wait();
    }
    println!("burst of 24 -> {accepted} served, {shed} shed at admission");

    // Let the ladder settle, then report.
    std::thread::sleep(Duration::from_millis(600));
    let h = engine.health();
    println!(
        "health: completed={} shed={} rejected={} quarantined={} level={} p50={:.1}ms p99={:.1}ms restarts={} scratch_peak={}B",
        h.completed_count,
        h.shed_count,
        h.rejected_count,
        h.quarantined_count,
        h.degrade_level,
        h.p50_ms,
        h.p99_ms,
        h.worker_restarts,
        h.peak_scratch_bytes
    );
    for rec in engine.quarantine_records() {
        println!("quarantined: digest {:016x} shape {:?} reason {}", rec.digest, rec.shape, rec.reason);
    }
    engine.shutdown();
    println!("engine drained and stopped");
}
