//! Quickstart: build a RevBiFPN classifier, run one reversible training
//! step, verify memory savings vs conventional training, and invert the
//! backbone back to the input image.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_nn::loss::{one_hot, softmax_cross_entropy};
use revbifpn_tensor::{Shape, Tensor};

fn main() {
    // A miniature RevBiFPN (3 streams, 32x32 inputs) that trains on CPU.
    let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
    let params = model.param_count();
    println!(
        "model: {} ({} params, {:.1}M MACs @ {}px)",
        model.cfg().name,
        params,
        model.macs(1) as f64 / 1e6,
        model.cfg().resolution
    );

    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(Shape::new(4, 3, 32, 32), 1.0, &mut rng);
    let labels = vec![1usize, 3, 5, 7];

    // One training step with reversible recomputation.
    let (peak_rev, logits) = {
        revbifpn_nn::meter::reset();
        let logits = model.forward(&x, RunMode::TrainReversible);
        let (loss, dlogits) = softmax_cross_entropy(&logits, &one_hot(&labels, 10));
        println!("loss: {loss:.4}");
        model.zero_grads();
        model.backward(&dlogits);
        let peak = revbifpn_nn::meter::peak();
        model.clear_cache();
        (peak, logits)
    };
    println!("logits shape: {}", logits.shape());

    // The same step with conventional caching needs far more memory.
    let (peak_conv, _) = model.measure_step(&x, RunMode::TrainConventional);
    println!(
        "peak activation bytes  reversible: {peak_rev}  conventional: {peak_conv}  ({:.1}x saving)",
        peak_conv as f64 / peak_rev as f64
    );

    // Full reversibility: reconstruct the input image from the pyramid.
    let pyramid = model.backbone_mut().forward(&x, revbifpn_nn::CacheMode::None);
    let reconstructed = model.backbone_mut().invert(pyramid).expect("SpaceToDepth stem is invertible");
    println!("input reconstruction max |err|: {:.2e}", reconstructed.max_abs_diff(&x));
}
