//! Frozen-vs-unfused inference benchmark: times eval-mode forwards of the
//! training model against the `freeze()`d fast path (conv–BN–activation
//! fusion + persistent pre-packed GEMM panels) for RevBiFPN-S0 and -S3 at
//! batch 1 and 8, and writes `results/BENCH_infer_fused.json`.
//!
//! Run with `cargo run --release --example freeze_bench`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_repro::core::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_repro::tensor::{Shape, Tensor};
use std::time::Instant;

struct Stats {
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

fn stats(mut samples: Vec<f64>) -> Stats {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    Stats {
        min_ns: samples[0],
        median_ns: samples[n / 2],
        mean_ns: samples.iter().sum::<f64>() / n as f64,
        max_ns: samples[n - 1],
    }
}

fn time(iters: usize, mut f: impl FnMut()) -> Stats {
    f(); // warm-up: scratch arena growth, page faults
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    stats(samples)
}

struct Row {
    id: String,
    batch: usize,
    resolution: usize,
    stats: Stats,
}

fn json_row(r: &Row) -> String {
    format!(
        "    {{\n      \"id\": \"{}\",\n      \"batch\": {},\n      \"resolution\": {},\n      \
         \"min_ns\": {:.1},\n      \"median_ns\": {:.1},\n      \"mean_ns\": {:.1},\n      \
         \"max_ns\": {:.1},\n      \"images_per_s\": {:.2}\n    }}",
        r.id,
        r.batch,
        r.resolution,
        r.stats.min_ns,
        r.stats.median_ns,
        r.stats.mean_ns,
        r.stats.max_ns,
        r.batch as f64 / (r.stats.median_ns * 1e-9)
    )
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();

    for (name, s) in [("s0", 0usize), ("s3", 3)] {
        let cfg = RevBiFPNConfig::scaled(s, 1000);
        let res = cfg.resolution;
        let mut model = RevBiFPNClassifier::new(cfg.clone());
        let frozen = model.freeze().expect("family configs must freeze");
        println!(
            "{name}: resolution {res}, packed panels {:.1} MiB",
            frozen.packed_bytes() as f64 / (1 << 20) as f64
        );

        for batch in [1usize, 8] {
            let iters = if batch == 1 { 5 } else { 3 };
            let mut rng = StdRng::seed_from_u64(42);
            let x = Tensor::randn(Shape::new(batch, 3, res, res), 1.0, &mut rng);

            let unfused = time(iters, || {
                let _ = model.forward(&x, RunMode::Eval);
            });
            let froz = time(iters, || {
                let _ = frozen.forward(&x);
            });
            let speedup = unfused.median_ns / froz.median_ns;
            println!(
                "{name} b{batch}: unfused {:.1} ms, frozen {:.1} ms, speedup {speedup:.2}x",
                unfused.median_ns / 1e6,
                froz.median_ns / 1e6
            );
            rows.push(Row {
                id: format!("infer_{name}_b{batch}_unfused"),
                batch,
                resolution: res,
                stats: unfused,
            });
            rows.push(Row {
                id: format!("infer_{name}_b{batch}_frozen"),
                batch,
                resolution: res,
                stats: froz,
            });
            speedups.push((format!("{name}_b{batch}"), speedup));
        }
    }

    let bench_rows: Vec<String> = rows.iter().map(json_row).collect();
    let speedup_rows: Vec<String> = speedups
        .iter()
        .map(|(id, sp)| format!("    {{ \"id\": \"{id}\", \"frozen_over_unfused\": {sp:.3} }}"))
        .collect();
    let json = format!(
        "{{\n  \"benchmarks\": [\n{}\n  ],\n  \"speedups\": [\n{}\n  ]\n}}\n",
        bench_rows.join(",\n"),
        speedup_rows.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_infer_fused.json", json).expect("write bench json");
    println!("wrote results/BENCH_infer_fused.json");
}
