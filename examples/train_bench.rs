//! Training-step throughput bench: the seed serial step (single model,
//! whole batch) versus the sharded data-parallel engine
//! (`revbifpn_train::ShardEngine`) at shard counts 1/2/4, versus the
//! stage-pipelined engine (`revbifpn_train::PipelineEngine`) — sync
//! fill/drain, combined with inner shards, and the PETRA delayed-gradient
//! mode — with the per-phase wall-clock breakdown (forward / reconstruct /
//! backward / reduce) from the `nn::meter` phase timers and the pipeline's
//! measured bubble fraction.
//!
//! Also verifies the engines' determinism contracts on the spot: merged
//! gradients and loss must be **bitwise** identical across shard counts,
//! and the sync pipelined step bitwise-identical to the shard engine.
//!
//! Usage:
//!   cargo run --release --example train_bench            # writes results/BENCH_train_step.json
//!   cargo run --release --example train_bench -- --smoke # quick determinism gate, no file
//!
//! Phase counters are aggregate thread-time: concurrent shard/stage tasks
//! each charge their own clock, so on a multi-core host the phase sum can
//! exceed wall-clock. On a single-CPU host the sharded step cannot beat the
//! serial step through parallelism alone (same FLOPs + reduction overhead);
//! what remains is cache locality — smaller per-task working sets — and the
//! bench reports whatever the host actually delivers.

use revbifpn_repro::core::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_repro::data::{SynthScale, SynthScaleConfig};
use revbifpn_repro::nn::loss::{label_smooth, one_hot, softmax_cross_entropy};
use revbifpn_repro::nn::meter::{self, Phase, PhaseTimes};
use revbifpn_repro::rev::DriftConfig;
use revbifpn_repro::tensor::{par, Tensor};
use revbifpn_repro::train::{
    evaluate, train_pipeline_delayed, PipelineConfig, PipelineEngine, ShardEngine,
    ShardStepFaults, TrainConfig,
};
use std::time::Instant;

const BATCH: usize = 16;
const THREADS: usize = 4;

fn setup() -> (RevBiFPNClassifier, Tensor, Tensor) {
    let data = SynthScale::new(SynthScaleConfig::new(32), 5);
    let model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    let (images, labels) = data.batch(0, BATCH);
    let targets = label_smooth(&one_hot(&labels, data.num_classes()), 0.1);
    (model, images, targets)
}

struct Measured {
    wall_ms: f64,
    phases: PhaseTimes,
}

fn measure(iters: usize, mut step: impl FnMut()) -> Measured {
    for _ in 0..2 {
        step(); // warm-up: scratch arenas, persistent shard buffers
    }
    let p0 = meter::phase_times();
    // Min over iterations: this host is a shared container, and the
    // fastest observed step is the best estimate of the uncontended time.
    let mut wall_ms = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        step();
        wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let mut phases = meter::phase_times().since(&p0);
    phases.forward_nanos /= iters as u64;
    phases.reconstruct_nanos /= iters as u64;
    phases.backward_nanos /= iters as u64;
    phases.reduce_nanos /= iters as u64;
    phases.optimizer_nanos /= iters as u64;
    Measured { wall_ms, phases }
}

/// One seed-style serial step: whole batch through one model.
fn serial_step(model: &mut RevBiFPNClassifier, images: &Tensor, targets: &Tensor) {
    let logits = meter::time_phase(Phase::Forward, || model.forward(images, RunMode::TrainReversible));
    let (_, dlogits) = softmax_cross_entropy(&logits, targets);
    model.zero_grads();
    model.backward(&dlogits);
}

fn grads_of(model: &mut RevBiFPNClassifier) -> Vec<Tensor> {
    let mut g = Vec::new();
    model.visit_params(&mut |p| g.push(p.grad.clone()));
    g
}

/// Runs one engine step at `shards` and returns (loss, grads).
fn engine_once(shards: usize) -> (f64, Vec<Tensor>) {
    let (mut model, images, targets) = setup();
    let mut engine = ShardEngine::new(model.cfg(), shards, DriftConfig::default());
    let out = engine.step(
        &mut model,
        &images,
        &targets,
        RunMode::TrainReversible,
        &ShardStepFaults::default(),
    );
    assert!(out.backward_ran, "clean step must complete");
    (out.loss, grads_of(&mut model))
}

fn assert_bitwise_match(shards: usize) {
    let (l1, g1) = engine_once(1);
    let (ls, gs) = engine_once(shards);
    assert_eq!(l1.to_bits(), ls.to_bits(), "loss diverged at S={shards}");
    assert_eq!(g1.len(), gs.len());
    for (i, (a, b)) in g1.iter().zip(&gs).enumerate() {
        assert_eq!(a, b, "grad tensor {i} diverged at S={shards}");
    }
    println!("determinism: S={shards} grads and loss bitwise-equal to S=1 ... ok");
}

/// Runs one sync pipelined step at `(stages, micros, shards)` and
/// returns (loss, grads).
fn pipeline_once(stages: usize, micros: usize, shards: usize) -> (f64, Vec<Tensor>) {
    let (mut model, images, targets) = setup();
    let pcfg = PipelineConfig { stages, micros, shards, staleness: 0 };
    let mut engine = PipelineEngine::new(model.cfg(), &pcfg, DriftConfig::default());
    let out = engine.step(
        &mut model,
        &images,
        &targets,
        RunMode::TrainReversible,
        &ShardStepFaults::default(),
    );
    assert!(out.backward_ran, "clean pipelined step must complete");
    (out.loss, grads_of(&mut model))
}

/// The pipeline determinism gate: a sync fill/drain step over `stages`
/// workers must be bitwise identical to the one-shard engine step.
fn assert_pipeline_bitwise_match(stages: usize, micros: usize, shards: usize) {
    let (l1, g1) = engine_once(1);
    let (lp, gp) = pipeline_once(stages, micros, shards);
    assert_eq!(l1.to_bits(), lp.to_bits(), "loss diverged at P={stages} m={micros} S={shards}");
    assert_eq!(g1.len(), gp.len());
    for (i, (a, b)) in g1.iter().zip(&gp).enumerate() {
        assert_eq!(a, b, "grad tensor {i} diverged at P={stages} m={micros} S={shards}");
    }
    println!(
        "determinism: P={stages} m={micros} S={shards} pipelined step bitwise-equal to S=1 ... ok"
    );
}

fn phase_json(m: &Measured) -> String {
    const MS: f64 = 1e-6;
    format!(
        concat!(
            "{{ \"wall_ms_per_step\": {:.3}, \"phases_ms\": {{ ",
            "\"forward\": {:.3}, \"reconstruct\": {:.3}, \"backward\": {:.3}, ",
            "\"reduce\": {:.3}, \"optimizer\": {:.3} }} }}"
        ),
        m.wall_ms,
        m.phases.forward_nanos as f64 * MS,
        m.phases.reconstruct_nanos as f64 * MS,
        m.phases.backward_nanos as f64 * MS,
        m.phases.reduce_nanos as f64 * MS,
        m.phases.optimizer_nanos as f64 * MS,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    par::set_max_threads(if smoke { 2 } else { THREADS });

    if smoke {
        assert_bitwise_match(2);
        assert_pipeline_bitwise_match(2, 2, 1);
        println!("train_bench --smoke: ok");
        return;
    }

    assert_bitwise_match(2);
    assert_bitwise_match(4);
    assert_pipeline_bitwise_match(2, 2, 1);
    assert_pipeline_bitwise_match(4, 2, 1);
    assert_pipeline_bitwise_match(2, 2, 2);

    let iters = 10;

    let (mut model, images, targets) = setup();
    let serial = measure(iters, || serial_step(&mut model, &images, &targets));
    println!("serial (1 model, batch {BATCH}):        {:.2} ms/step", serial.wall_ms);

    let mut sharded = Vec::new();
    for shards in [1usize, 2, 4] {
        let (mut m, images, targets) = setup();
        let mut engine = ShardEngine::new(m.cfg(), shards, DriftConfig::default());
        let measured = measure(iters, || {
            let out = engine.step(&mut m, &images, &targets, RunMode::TrainReversible, &ShardStepFaults::default());
            assert!(out.backward_ran);
            engine.apply_bn_stats(&mut m);
        });
        println!("sharded S={shards} (threads {THREADS}):           {:.2} ms/step", measured.wall_ms);
        sharded.push((shards, measured));
    }

    // Stage-pipelined arms: sync fill/drain at P stages x m micro-batches,
    // plus the combined config (inner shards inside each stage task).
    let mut piped = Vec::new();
    for (stages, micros, shards) in [(2usize, 2usize, 1usize), (4, 2, 1), (2, 2, 2)] {
        let (mut m, images, targets) = setup();
        let pcfg = PipelineConfig { stages, micros, shards, staleness: 0 };
        let mut engine = PipelineEngine::new(m.cfg(), &pcfg, DriftConfig::default());
        let measured = measure(iters, || {
            let out = engine.step(&mut m, &images, &targets, RunMode::TrainReversible, &ShardStepFaults::default());
            assert!(out.backward_ran);
            engine.apply_bn_stats(&mut m);
        });
        let bubble = engine.mean_bubble_fraction();
        println!(
            "pipelined P={stages} m={micros} S={shards} (threads {THREADS}): {:.2} ms/step  (bubble {:.2})",
            measured.wall_ms, bubble
        );
        piped.push((stages, micros, shards, measured, bubble));
    }

    // PETRA delayed-gradient arm: K overlapping flights keep every stage
    // busy across step boundaries, trading the fill/drain bubble for
    // bounded parameter staleness. Whole-run timing (the overlap only
    // exists across steps), with the validation pass timed separately and
    // subtracted.
    let delayed = {
        let data = SynthScale::new(SynthScaleConfig::new(32), 5);
        let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
        let cfg = TrainConfig {
            epochs: 1,
            train_size: 128,
            val_size: 16,
            batch_size: BATCH,
            lr: 0.04,
            pipeline: PipelineConfig { stages: 2, micros: 2, shards: 1, staleness: 1 },
            ..TrainConfig::small()
        };
        let steps = cfg.train_size.div_ceil(cfg.batch_size);
        let t0 = Instant::now();
        let h = train_pipeline_delayed(&mut model, &data, &cfg);
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(!h.aborted, "delayed bench run must not abort");
        let t1 = Instant::now();
        evaluate(&mut model, &data, cfg.val_size, cfg.batch_size);
        let eval_ms = t1.elapsed().as_secs_f64() * 1e3;
        let wall_ms = (total_ms - eval_ms).max(0.0) / steps as f64;
        println!(
            "delayed P=2 m=2 K=1 (threads {THREADS}):    {:.2} ms/step  (bubble {:.2})",
            wall_ms, h.phases.bubble_fraction
        );
        (wall_ms, h.phases.bubble_fraction)
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"config\": {{ \"model\": \"tiny\", \"resolution\": 32, \"batch\": {BATCH}, \"threads\": {THREADS}, \"host_cpus\": {} }},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    json.push_str("  \"grads_bitwise_equal_across_shards\": true,\n");
    json.push_str("  \"pipelined_step_bitwise_equal_to_sharded\": true,\n");
    json.push_str(&format!("  \"serial_step\": {},\n", phase_json(&serial)));
    json.push_str("  \"sharded_step\": {\n");
    for (i, (shards, m)) in sharded.iter().enumerate() {
        let sep = if i + 1 == sharded.len() { "" } else { "," };
        json.push_str(&format!("    \"S{shards}\": {}{sep}\n", phase_json(m)));
    }
    json.push_str("  },\n");
    json.push_str("  \"pipelined_step\": {\n");
    for (i, (stages, micros, shards, m, bubble)) in piped.iter().enumerate() {
        let sep = if i + 1 == piped.len() { "" } else { "," };
        let body = phase_json(m);
        let body = body
            .strip_suffix(" }")
            .map(|b| format!("{b}, \"bubble_fraction\": {bubble:.3} }}"))
            .unwrap_or(body);
        json.push_str(&format!("    \"P{stages}m{micros}S{shards}\": {body}{sep}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"delayed_step\": {{ \"wall_ms_per_step\": {:.3}, \"stages\": 2, \"micros\": 2, \"staleness\": 1, \"bubble_fraction\": {:.3}, \"note\": \"whole-run timing: includes augmentation, per-stage optimizers, and snapshot sync\" }},\n",
        delayed.0, delayed.1
    ));
    json.push_str(&format!(
        "  \"host_note\": \"{} hardware cpu(s): stage overlap cannot shorten wall-clock here; compare bubble_fraction (delayed {:.2} vs sync {:.2}) for the occupancy the overlap buys on a multi-core host\"\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        delayed.1,
        piped.first().map(|p| p.4).unwrap_or(0.0),
    ));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_train_step.json", &json).expect("write bench json");
    println!("wrote results/BENCH_train_step.json");
}
