//! Training-step throughput bench: the seed serial step (single model,
//! whole batch) versus the sharded data-parallel engine
//! (`revbifpn_train::ShardEngine`) at shard counts 1/2/4, with the
//! per-phase wall-clock breakdown (forward / reconstruct / backward /
//! reduce) from the `nn::meter` phase timers.
//!
//! Also verifies the engine's determinism contract on the spot: merged
//! gradients and loss must be **bitwise** identical across shard counts.
//!
//! Usage:
//!   cargo run --release --example train_bench            # writes results/BENCH_train_step.json
//!   cargo run --release --example train_bench -- --smoke # quick determinism gate, no file
//!
//! Phase counters are aggregate thread-time: concurrent shard tasks each
//! charge their own clock, so on a multi-core host the phase sum can exceed
//! wall-clock. On a single-CPU host the sharded step cannot beat the serial
//! step (same FLOPs + reduction overhead); the bench reports whatever the
//! host actually delivers.

use revbifpn_repro::core::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
use revbifpn_repro::data::{SynthScale, SynthScaleConfig};
use revbifpn_repro::nn::loss::{label_smooth, one_hot, softmax_cross_entropy};
use revbifpn_repro::nn::meter::{self, Phase, PhaseTimes};
use revbifpn_repro::rev::DriftConfig;
use revbifpn_repro::tensor::{par, Tensor};
use revbifpn_repro::train::{ShardEngine, ShardStepFaults};
use std::time::Instant;

const BATCH: usize = 16;
const THREADS: usize = 4;

fn setup() -> (RevBiFPNClassifier, Tensor, Tensor) {
    let data = SynthScale::new(SynthScaleConfig::new(32), 5);
    let model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(data.num_classes()));
    let (images, labels) = data.batch(0, BATCH);
    let targets = label_smooth(&one_hot(&labels, data.num_classes()), 0.1);
    (model, images, targets)
}

struct Measured {
    wall_ms: f64,
    phases: PhaseTimes,
}

fn measure(iters: usize, mut step: impl FnMut()) -> Measured {
    for _ in 0..2 {
        step(); // warm-up: scratch arenas, persistent shard buffers
    }
    let p0 = meter::phase_times();
    let t0 = Instant::now();
    for _ in 0..iters {
        step();
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    let mut phases = meter::phase_times().since(&p0);
    phases.forward_nanos /= iters as u64;
    phases.reconstruct_nanos /= iters as u64;
    phases.backward_nanos /= iters as u64;
    phases.reduce_nanos /= iters as u64;
    phases.optimizer_nanos /= iters as u64;
    Measured { wall_ms, phases }
}

/// One seed-style serial step: whole batch through one model.
fn serial_step(model: &mut RevBiFPNClassifier, images: &Tensor, targets: &Tensor) {
    let logits = meter::time_phase(Phase::Forward, || model.forward(images, RunMode::TrainReversible));
    let (_, dlogits) = softmax_cross_entropy(&logits, targets);
    model.zero_grads();
    model.backward(&dlogits);
}

fn grads_of(model: &mut RevBiFPNClassifier) -> Vec<Tensor> {
    let mut g = Vec::new();
    model.visit_params(&mut |p| g.push(p.grad.clone()));
    g
}

/// Runs one engine step at `shards` and returns (loss, grads).
fn engine_once(shards: usize) -> (f64, Vec<Tensor>) {
    let (mut model, images, targets) = setup();
    let mut engine = ShardEngine::new(model.cfg(), shards, DriftConfig::default());
    let out = engine.step(
        &mut model,
        &images,
        &targets,
        RunMode::TrainReversible,
        &ShardStepFaults::default(),
    );
    assert!(out.backward_ran, "clean step must complete");
    (out.loss, grads_of(&mut model))
}

fn assert_bitwise_match(shards: usize) {
    let (l1, g1) = engine_once(1);
    let (ls, gs) = engine_once(shards);
    assert_eq!(l1.to_bits(), ls.to_bits(), "loss diverged at S={shards}");
    assert_eq!(g1.len(), gs.len());
    for (i, (a, b)) in g1.iter().zip(&gs).enumerate() {
        assert_eq!(a, b, "grad tensor {i} diverged at S={shards}");
    }
    println!("determinism: S={shards} grads and loss bitwise-equal to S=1 ... ok");
}

fn phase_json(m: &Measured) -> String {
    const MS: f64 = 1e-6;
    format!(
        concat!(
            "{{ \"wall_ms_per_step\": {:.3}, \"phases_ms\": {{ ",
            "\"forward\": {:.3}, \"reconstruct\": {:.3}, \"backward\": {:.3}, ",
            "\"reduce\": {:.3}, \"optimizer\": {:.3} }} }}"
        ),
        m.wall_ms,
        m.phases.forward_nanos as f64 * MS,
        m.phases.reconstruct_nanos as f64 * MS,
        m.phases.backward_nanos as f64 * MS,
        m.phases.reduce_nanos as f64 * MS,
        m.phases.optimizer_nanos as f64 * MS,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    par::set_max_threads(if smoke { 2 } else { THREADS });

    if smoke {
        assert_bitwise_match(2);
        println!("train_bench --smoke: ok");
        return;
    }

    assert_bitwise_match(2);
    assert_bitwise_match(4);

    let iters = 5;

    let (mut model, images, targets) = setup();
    let serial = measure(iters, || serial_step(&mut model, &images, &targets));
    println!("serial (1 model, batch {BATCH}):        {:.2} ms/step", serial.wall_ms);

    let mut sharded = Vec::new();
    for shards in [1usize, 2, 4] {
        let (mut m, images, targets) = setup();
        let mut engine = ShardEngine::new(m.cfg(), shards, DriftConfig::default());
        let measured = measure(iters, || {
            let out = engine.step(&mut m, &images, &targets, RunMode::TrainReversible, &ShardStepFaults::default());
            assert!(out.backward_ran);
            engine.apply_bn_stats(&mut m);
        });
        println!("sharded S={shards} (threads {THREADS}):           {:.2} ms/step", measured.wall_ms);
        sharded.push((shards, measured));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"config\": {{ \"model\": \"tiny\", \"resolution\": 32, \"batch\": {BATCH}, \"threads\": {THREADS}, \"host_cpus\": {} }},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    json.push_str("  \"grads_bitwise_equal_across_shards\": true,\n");
    json.push_str(&format!("  \"serial_step\": {},\n", phase_json(&serial)));
    json.push_str("  \"sharded_step\": {\n");
    for (i, (shards, m)) in sharded.iter().enumerate() {
        let sep = if i + 1 == sharded.len() { "" } else { "," };
        json.push_str(&format!("    \"S{shards}\": {}{sep}\n", phase_json(m)));
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_train_step.json", &json).expect("write bench json");
    println!("wrote results/BENCH_train_step.json");
}
