//! Cold-start benchmark for the `RBFNFRZ1` artifact path: in-memory
//! freeze-from-config vs copy-deserialization vs mmap, at f32 and int8
//! tiers, and writes `results/BENCH_cold_start.json`.
//!
//! The serving claim under test (ISSUE 7): a worker cold-starting from an
//! mmap'd artifact must be at least 5x faster than copy deserialization at
//! the S3 scale, and the loaded model's forward must be bitwise equal to
//! the in-memory `freeze()` / `freeze_int8()` result. The bench enforces
//! both and exits non-zero on violation, so CI can gate on it directly.
//!
//! The hard floor applies to the S3 **f32** artifact. The int8 row is
//! measured and reported but not ratio-gated: its file is ~2.5x smaller
//! (that is the point of int8), so its copy baseline is proportionally
//! cheap, while both paths share the same owned-decode floor (dominated by
//! the classifier head's f32 `Linear`, which has no zero-copy
//! representation). The ratio there is a property of the small baseline,
//! not of mmap slowness — the int8 absolute mmap cold start is the fastest
//! row in the table.
//!
//! `--smoke` restricts to the tiny config (no S3 build, no threshold) for
//! quick local runs.

use revbifpn::artifact::{load_classifier_artifact, save_classifier_artifact};
use revbifpn::{FrozenClassifier, RevBiFPNClassifier, RevBiFPNConfig};
use revbifpn_tensor::{Shape, Tensor};
use std::path::Path;
use std::time::Instant;

const MMAP_SPEEDUP_FLOOR_S3: f64 = 5.0;

struct Row {
    id: String,
    tier: &'static str,
    artifact_bytes: u64,
    freeze_ms: f64,
    copy_load_ms: f64,
    mmap_load_ms: f64,
    mmap_speedup: f64,
    bitwise_equal: bool,
}

/// Medians `iters` cold loads of `path`, each in a fresh child process
/// (re-exec of this binary with `--load-once`): a real cold start has a
/// cold allocator and no warm in-process buffers, while the page cache —
/// shared across processes — stays warm, so the children measure exactly
/// "new worker process deserializes an already-fetched artifact".
fn median_cold_load_ms(iters: usize, path: &Path, mode: &str) -> f64 {
    let exe = std::env::current_exe().expect("own executable path");
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let out = std::process::Command::new(&exe)
                .args(["--load-once", path.to_str().unwrap(), mode])
                .output()
                .expect("spawn load child");
            assert!(out.status.success(), "child load failed: {}", String::from_utf8_lossy(&out.stderr));
            let stdout = String::from_utf8_lossy(&out.stdout);
            stdout
                .lines()
                .find_map(|l| l.strip_prefix("LOAD_MS="))
                .and_then(|v| v.trim().parse::<f64>().ok())
                .expect("child must report LOAD_MS")
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Child mode: one timed load, result printed for the parent.
fn load_once(path: &Path, mode: &str) {
    let prefer_map = match mode {
        "map" => true,
        "copy" => false,
        other => panic!("bad --load-once mode {other}"),
    };
    let t = Instant::now();
    let (m, _r) = load_classifier_artifact(path, prefer_map).expect("load artifact");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(&m);
    println!("LOAD_MS={ms:.4}");
}

fn bench_config(name: &str, cfg: RevBiFPNConfig, int8: bool, dir: &Path) -> Row {
    let tier = if int8 { "int8" } else { "f32" };
    eprintln!("building {name} ({tier})...");
    let t = Instant::now();
    let model = RevBiFPNClassifier::new(cfg.clone());
    let frozen: FrozenClassifier =
        if int8 { model.freeze_int8().unwrap() } else { model.freeze().unwrap() };
    let freeze_ms = t.elapsed().as_secs_f64() * 1e3;

    let path = dir.join(format!("{name}_{tier}.frz"));
    save_classifier_artifact(&path, &frozen).expect("save artifact");
    let artifact_bytes = std::fs::metadata(&path).unwrap().len();

    // Warm the page cache so both paths measure deserialization, not disk.
    let _ = std::fs::read(&path).unwrap();

    let copy_load_ms = median_cold_load_ms(3, &path, "copy");
    let mmap_load_ms = median_cold_load_ms(5, &path, "map");

    // Bitwise parity of the mmap-served forward against the in-memory
    // frozen model, on a deterministic input.
    let x = Tensor::full(Shape::new(1, 3, cfg.resolution, cfg.resolution), 0.125);
    let want = frozen.forward(&x);
    let (mapped, reader) = load_classifier_artifact(&path, true).unwrap();
    reader.verify_sections().expect("payload CRCs");
    let got = mapped.forward(&x);
    let bitwise_equal = want.data() == got.data();

    let mmap_speedup = copy_load_ms / mmap_load_ms.max(1e-6);
    eprintln!(
        "{name} {tier}: artifact {:.1} MiB, freeze {freeze_ms:.0} ms, copy {copy_load_ms:.2} ms, \
         mmap {mmap_load_ms:.2} ms ({mmap_speedup:.1}x), bitwise_equal={bitwise_equal}",
        artifact_bytes as f64 / (1 << 20) as f64
    );
    Row {
        id: format!("{name}_{tier}"),
        tier,
        artifact_bytes,
        freeze_ms,
        copy_load_ms,
        mmap_load_ms,
        mmap_speedup,
        bitwise_equal,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--load-once" {
        load_once(Path::new(&args[2]), &args[3]);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let dir = std::env::temp_dir().join(format!("revbifpn_coldstart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");

    let mut rows = vec![bench_config("tiny", RevBiFPNConfig::tiny(10), false, &dir)];
    if !smoke {
        let s3 = RevBiFPNConfig::scaled(3, 1000);
        rows.push(bench_config("s3", s3.clone(), false, &dir));
        rows.push(bench_config("s3", s3, true, &dir));
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"id\": \"{}\", \"tier\": \"{}\", \"artifact_bytes\": {}, \
                 \"freeze_ms\": {:.3}, \"copy_load_ms\": {:.3}, \"mmap_load_ms\": {:.3}, \
                 \"mmap_speedup\": {:.3}, \"bitwise_equal\": {} }}",
                r.id,
                r.tier,
                r.artifact_bytes,
                r.freeze_ms,
                r.copy_load_ms,
                r.mmap_load_ms,
                r.mmap_speedup,
                r.bitwise_equal
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"mmap_speedup_floor_s3\": {MMAP_SPEEDUP_FLOOR_S3},\n  \"floor_applies_to\": \"s3_f32\",\n  \"cold_starts\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_cold_start.json", json).expect("write bench json");
    println!("wrote results/BENCH_cold_start.json");

    let _ = std::fs::remove_dir_all(&dir);

    let mut failed = false;
    for r in &rows {
        if !r.bitwise_equal {
            eprintln!("FAIL: {} mmap-loaded forward is not bitwise equal", r.id);
            failed = true;
        }
        if !smoke && r.id == "s3_f32" && r.mmap_speedup < MMAP_SPEEDUP_FLOOR_S3 {
            eprintln!(
                "FAIL: {} mmap speedup {:.2}x below the {MMAP_SPEEDUP_FLOOR_S3}x floor",
                r.id, r.mmap_speedup
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
