//! Steady-state allocation accounting for the conv kernels, observed through
//! `nn::meter`'s scratch-arena bridge.
//!
//! This file holds a single test on purpose: the scratch counters are
//! process-global, so it must not share its process slot with other tests
//! that exercise the kernels concurrently.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::Conv2d;
use revbifpn_nn::meter;
use revbifpn_nn::{CacheMode, Layer};
use revbifpn_tensor::{par, ConvSpec, Shape, Tensor};

#[test]
fn conv_layer_makes_zero_heap_allocations_at_steady_state() {
    // Single-threaded so every scratch borrow lands in this thread's arena;
    // with workers, each pool thread additionally pays a one-time warm-up
    // growth the first time dynamic tile scheduling hands it work.
    par::set_max_threads(1);

    let mut rng = StdRng::seed_from_u64(9);
    let mut stem = Conv2d::new(3, 48, ConvSpec::kxk(3, 2), false, &mut rng);
    let mut point = Conv2d::pointwise(48, 96, true, &mut rng);
    let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);

    let step = |stem: &mut Conv2d, point: &mut Conv2d| {
        let y = stem.forward(&x, CacheMode::Full);
        let z = point.forward(&y, CacheMode::Full);
        let dz = point.backward(&Tensor::ones(z.shape()));
        let _ = stem.backward(&dz);
    };

    // Warm the thread-local arena with every shape the step borrows.
    for _ in 0..2 {
        step(&mut stem, &mut point);
    }

    meter::reset_scratch_stats();
    for _ in 0..5 {
        step(&mut stem, &mut point);
    }
    let report = meter::report();
    assert!(report.scratch.borrows > 0, "the kernels should be using the scratch arena");
    assert_eq!(
        report.scratch.heap_growths, 0,
        "steady-state conv2d forward/backward must not allocate: {:?}",
        report.scratch
    );

    par::set_max_threads(0);
}
