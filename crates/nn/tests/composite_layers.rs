//! Integration tests for layer composition: deep stacks, cache-mode
//! semantics across whole networks, and meter/analytic agreement for every
//! mode on realistic compositions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::{
    BatchNorm2d, Conv2d, Dropout, GlobalAvgPool, HardSwish, Linear, MBConv, MBConvCfg, Relu,
    SqueezeExcite, Upsample,
};
use revbifpn_nn::{meter, param_count, CacheMode, Layer, Sequential};
use revbifpn_tensor::{ConvSpec, ResizeMode, Shape, Tensor};

fn tiny_net(rng: &mut StdRng) -> Sequential {
    let mut s = Sequential::new();
    s.add(Box::new(Conv2d::new(3, 8, ConvSpec::kxk(3, 2), false, rng)));
    s.add(Box::new(BatchNorm2d::new(8)));
    s.add(Box::new(HardSwish::new()));
    s.add(Box::new(MBConv::new(MBConvCfg::same(8, 3, 2.0).with_se(0.25), rng)));
    s.add(Box::new(MBConv::new(MBConvCfg::down(8, 16, 1, 2.0), rng)));
    s.add(Box::new(Conv2d::pointwise(16, 32, false, rng)));
    s.add(Box::new(BatchNorm2d::new(32)));
    s.add(Box::new(Relu::new()));
    s.add(Box::new(GlobalAvgPool::new()));
    s.add(Box::new(Dropout::new(0.1, 7)));
    s.add(Box::new(Linear::new(32, 5, rng)));
    s
}

#[test]
fn deep_stack_forward_backward_shapes() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = tiny_net(&mut rng);
    let x = Tensor::randn(Shape::new(2, 3, 16, 16), 1.0, &mut rng);
    assert_eq!(net.out_shape(x.shape()), Shape::new(2, 5, 1, 1));
    let y = net.forward(&x, CacheMode::Full);
    assert_eq!(y.shape(), Shape::new(2, 5, 1, 1));
    let dx = net.backward(&Tensor::ones(y.shape()));
    assert_eq!(dx.shape(), x.shape());
    assert!(dx.is_finite());
    net.clear_cache();
    assert!(param_count(&mut net) > 1000);
}

#[test]
fn meter_agrees_with_analytic_for_all_modes() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = tiny_net(&mut rng);
    let x = Tensor::randn(Shape::new(2, 3, 16, 16), 1.0, &mut rng);
    for mode in [CacheMode::None, CacheMode::Stats, CacheMode::Full] {
        meter::reset();
        let _ = net.forward(&x, mode);
        assert_eq!(
            meter::current() as u64,
            net.cache_bytes(x.shape(), mode),
            "mode {mode:?}"
        );
        net.clear_cache();
        assert_eq!(meter::current(), 0);
    }
}

#[test]
fn eval_mode_is_deterministic_and_stateless() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = tiny_net(&mut rng);
    let x = Tensor::randn(Shape::new(1, 3, 16, 16), 1.0, &mut rng);
    let y1 = net.forward(&x, CacheMode::None);
    let y2 = net.forward(&x, CacheMode::None);
    assert_eq!(y1, y2);
}

#[test]
fn training_updates_bn_running_stats_eval_does_not() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut bn = BatchNorm2d::new(4);
    let x = Tensor::randn(Shape::new(4, 4, 8, 8), 2.0, &mut rng).map(|v| v + 3.0);
    let before = bn.running_mean().clone();
    let _ = bn.forward(&x, CacheMode::None);
    assert_eq!(bn.running_mean(), &before, "eval must not update running stats");
    let _ = bn.forward(&x, CacheMode::Stats);
    assert!(bn.running_mean().max_abs_diff(&before) > 0.01, "training must update running stats");
    bn.clear_cache();
}

#[test]
fn stats_then_full_replays_whole_network_exactly() {
    // The reversible-recomputation contract at the network level: a Stats
    // pass followed by a Full pass on the same input produces the identical
    // output (BN stats and dropout seeds replayed).
    let mut rng = StdRng::seed_from_u64(4);
    let mut net = tiny_net(&mut rng);
    let x = Tensor::randn(Shape::new(2, 3, 16, 16), 1.0, &mut rng);
    let y_stats = net.forward(&x, CacheMode::Stats);
    let y_full = net.forward(&x, CacheMode::Full);
    assert!(y_stats.max_abs_diff(&y_full) < 1e-6);
    net.clear_cache();
}

#[test]
fn upsample_downsample_chain_restores_shape() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut s = Sequential::new();
    s.add(Box::new(Upsample::new(2, ResizeMode::Bilinear)));
    s.add(Box::new(Conv2d::new(4, 4, ConvSpec::depthwise(3, 2, 4), false, &mut rng)));
    let x = Tensor::randn(Shape::new(1, 4, 6, 6), 1.0, &mut rng);
    let y = s.forward(&x, CacheMode::None);
    assert_eq!(y.shape(), x.shape());
}

#[test]
fn se_gate_backward_through_sequential() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut s = Sequential::new();
    s.add(Box::new(Conv2d::pointwise(4, 8, false, &mut rng)));
    s.add(Box::new(SqueezeExcite::new(8, 0.5, &mut rng)));
    s.add(Box::new(Conv2d::pointwise(8, 4, false, &mut rng)));
    let x = Tensor::randn(Shape::new(2, 4, 5, 5), 1.0, &mut rng);
    let y = s.forward(&x, CacheMode::Full);
    let dx = s.backward(&Tensor::ones(y.shape()));
    assert!(dx.is_finite());
    assert!(dx.abs_max() > 0.0);
}

#[test]
fn gradient_accumulation_across_steps() {
    // Two backward passes without zero_grad must accumulate exactly 2x.
    let mut rng = StdRng::seed_from_u64(7);
    let mut conv = Conv2d::pointwise(3, 4, false, &mut rng);
    let x = Tensor::randn(Shape::new(1, 3, 4, 4), 1.0, &mut rng);
    let y = conv.forward(&x, CacheMode::Full);
    let dy = Tensor::ones(y.shape());
    let _ = conv.backward(&dy);
    let mut g1 = Tensor::zeros(Shape::new(1, 1, 1, 1));
    conv.visit_params(&mut |p| g1 = p.grad.clone());
    let _ = conv.forward(&x, CacheMode::Full);
    let _ = conv.backward(&dy);
    conv.visit_params(&mut |p| {
        assert!(p.grad.max_abs_diff(&g1.scaled(2.0)) < 1e-4);
    });
}
