//! Property-based corruption tests for the crash-safe checkpoint container:
//! arbitrary truncations and byte flips must be *rejected* by the loader —
//! never panic, never yield wrong data — and stray tmp files from
//! interrupted writes must not break subsequent saves.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use revbifpn_nn::checkpoint::{load_blobs, save_blobs, tmp_path};
use std::path::PathBuf;

/// Deterministic random blob set: `n` blobs with varied names and lengths.
fn make_blobs(seed: u64, n: usize) -> Vec<(String, Vec<f32>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.random::<usize>() % 64;
            let data: Vec<f32> = (0..len).map(|_| rng.random::<f32>() * 20.0 - 10.0).collect();
            (format!("layer{i}/weight{}", rng.random::<u32>() % 100), data)
        })
        .collect()
}

fn scratch(name: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("revbifpn_proptest_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{seed:x}.ckpt"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Save/load round-trips arbitrary blob sets exactly.
    #[test]
    fn roundtrip_is_exact(seed in any::<u64>(), n in 1usize..6) {
        let blobs = make_blobs(seed, n);
        let path = scratch("roundtrip", seed);
        save_blobs(&path, &blobs).unwrap();
        let loaded = load_blobs(&path).unwrap();
        prop_assert_eq!(loaded, blobs);
        std::fs::remove_file(&path).unwrap();
    }

    /// Any truncation — a torn write — is rejected, never a panic.
    #[test]
    fn any_truncation_is_rejected(seed in any::<u64>(), n in 1usize..5, cut in any::<u64>()) {
        let blobs = make_blobs(seed, n);
        let path = scratch("truncate", seed ^ cut);
        save_blobs(&path, &blobs).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let keep = cut % len; // strictly shorter than the valid file
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep).unwrap();
        drop(f);
        prop_assert!(load_blobs(&path).is_err(), "truncation to {} of {} accepted", keep, len);
        std::fs::remove_file(&path).unwrap();
    }

    /// Flipping any single bit anywhere in the file is caught (structure
    /// check or per-blob CRC32), never accepted and never a panic.
    #[test]
    fn any_single_bit_flip_is_rejected(seed in any::<u64>(), pos in any::<u64>(), bit in 0u32..8) {
        let blobs = make_blobs(seed, 3);
        let path = scratch("bitflip", seed ^ pos ^ u64::from(bit));
        save_blobs(&path, &blobs).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(load_blobs(&path).is_err(), "bit flip at byte {} accepted", i);
        std::fs::remove_file(&path).unwrap();
    }

    /// A stray `.tmp` from an interrupted atomic write neither corrupts the
    /// next save nor survives it.
    #[test]
    fn stray_tmp_does_not_break_the_next_save(seed in any::<u64>(), junk in 0usize..200) {
        let blobs = make_blobs(seed, 2);
        let path = scratch("straytmp", seed.wrapping_add(junk as u64));
        let tmp = tmp_path(&path);
        std::fs::write(&tmp, vec![0xABu8; junk]).unwrap();
        save_blobs(&path, &blobs).unwrap();
        prop_assert!(!tmp.exists(), "tmp file left behind after a successful save");
        prop_assert_eq!(load_blobs(&path).unwrap(), blobs);
        std::fs::remove_file(&path).unwrap();
    }
}
