//! # revbifpn-nn
//!
//! A manual-backprop neural-network module framework with the one feature
//! the RevBiFPN reproduction revolves around: **explicit control over what a
//! layer caches for its backward pass** ([`CacheMode`]), paired with a
//! byte-exact activation-memory [`meter`].
//!
//! Layers implement [`Layer`]; composites are built from [`Sequential`],
//! [`Residual`](layers::Residual) and the concrete layers in [`layers`]
//! (convolutions, BatchNorm, hard-swish, squeeze-excite, MBConv, ...).
//!
//! ```
//! use revbifpn_nn::{layers::MBConv, layers::MBConvCfg, CacheMode, Layer};
//! use revbifpn_tensor::{Shape, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut block = MBConv::new(MBConvCfg::same(8, 3, 2.0).with_se(0.25), &mut rng);
//! let x = Tensor::randn(Shape::new(1, 8, 16, 16), 1.0, &mut rng);
//! let y = block.forward(&x, CacheMode::Full);
//! let dx = block.backward(&y);
//! assert_eq!(dx.shape(), x.shape());
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod checkpoint;
pub mod freeze;
pub mod gradcheck;
pub mod init;
pub mod loss;
pub mod meter;
mod mode;
mod module;
mod param;

pub use freeze::{freeze_layer, freeze_layer_int8, ActKind, FreezeError, FrozenLayer, FusedConv};
pub use meter::Cached;
pub use mode::CacheMode;
pub use module::{grad_sq_norm, param_count, zero_grads, Identity, Layer, Sequential};
pub use param::{count_scalars, Param};

/// Concrete layer implementations.
pub mod layers {
    mod act;
    mod bn;
    mod conv;
    mod dropout;
    mod linear;
    mod mbconv;
    mod se;
    mod shape_ops;

    pub use act::{HardSigmoid, HardSwish, Relu, Sigmoid};
    pub use bn::{BatchNorm2d, BnMoments};
    pub use conv::Conv2d;
    pub use dropout::{DropPath, Dropout, Residual};
    pub use linear::Linear;
    pub use mbconv::{MBConv, MBConvCfg};
    pub use se::SqueezeExcite;
    pub use shape_ops::{GlobalAvgPool, SpaceToDepth, Upsample};
}
