//! `RBFNFRZ1` — the zero-copy frozen-model artifact container.
//!
//! A frozen model (f32 or int8 tier) is serialized into a **single aligned,
//! per-section-CRC'd blob**: a small *structure stream* describing the layer
//! tree inline, plus 64-byte-aligned *sections* holding the large payloads
//! (packed GEMM panel images, linear weights). The file is written
//! atomically — tmp file, fsync of the file **and its parent directory**,
//! rename — and loaded by `mmap` where available, so packed panels reference
//! the page cache directly ([`revbifpn_tensor::PackedGemmA::from_shared_image`])
//! and a worker cold-starts in milliseconds. A copy-loading fallback keeps
//! every other target working.
//!
//! # Layout
//!
//! ```text
//! header   48 bytes:
//!   magic       8   b"RBFNFRZ1"
//!   version     4   u32 LE = 1
//!   layout      4   u32 LE, gemm_layout_fingerprint() of the writing build
//!   flags       4   u32 LE, caller-defined (model kind / precision tier)
//!   n_sections  4   u32 LE
//!   struct_len  8   u64 LE
//!   meta_crc    4   u32 LE, CRC32 over TOC ‖ structure stream
//!   digest      8   u64 LE, FNV-1a64 over TOC ‖ structure stream
//!   header_crc  4   u32 LE over the 44 bytes above
//! toc      n_sections * 24: { offset u64, len u64, crc u32, pad u32 }
//! structure stream (struct_len bytes)
//! sections, each 64-byte aligned, zero-padded between
//! ```
//!
//! # Validation strategy
//!
//! The header, TOC and structure stream are CRC-verified **eagerly** at
//! open — they are small, and every offset/length is bounds-checked before
//! use. Per-section payload CRCs are verified **on demand** via
//! [`ArtifactReader::verify_sections`]: a trusted cold-start skips the scan
//! (touching ~50 MiB of panels would forfeit the mmap win), while the serve
//! layer's hot-reload publish always runs it, so a bit-flipped section is
//! quarantined before it can ever serve a request.
//!
//! # Fault injection
//!
//! [`inject_io_faults`] arms deterministic write-path faults (torn writes,
//! short writes, ENOSPC, transient errors, directory-fsync failure) for the
//! next atomic write on the calling thread — the chaos harness drives the
//! whole checkpoint/artifact lifecycle through them.

use crate::checkpoint::crc32;
use crate::freeze::{ActKind, FrozenLayer, FusedConv};
use revbifpn_tensor::{
    gemm_layout_fingerprint, ConvPlan, ConvSpec, EpilogueAct, PackedGemmA, PackedGemmAI8,
    PlanKind, QuantConvPlan, QuantPlanKind, ResizeMode, Shape, SharedBytes, Tensor,
};
use std::cell::Cell;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"RBFNFRZ1";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 48;
const TOC_ENTRY_LEN: usize = 24;
const SECTION_ALIGN: usize = 64;
/// f32 arrays at or above this many elements go to a section instead of the
/// structure stream.
const SECTION_MIN_F32S: usize = 256;
/// i8/i32 arrays at or above this many *bytes* go to a section instead of
/// the structure stream: the structure stream is CRC'd eagerly at every
/// open (the serving cold path), sections only on demand.
const SECTION_MIN_BYTES: usize = 1024;

fn inv(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn fnv1a64(seed: u64, data: &[u8]) -> u64 {
    let mut h = if seed == 0 { 0xcbf2_9ce4_8422_2325 } else { seed };
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// --------------------------------------------------------------- I/O faults

/// Deterministic write-path faults for the next atomic write on this thread
/// (see [`inject_io_faults`]). Fields compose; all default to "no fault".
#[derive(Clone, Debug, Default)]
pub struct IoFaults {
    /// Keep only this many bytes of the tmp file, then simulate a crash:
    /// the partial tmp is left behind, no rename happens, and the write
    /// reports an error (standing in for the process dying mid-write).
    pub torn_write: Option<usize>,
    /// Silently lose this many tail bytes but complete the fsync + rename —
    /// a lying lower layer. Only load-time CRCs can catch this one.
    pub short_write: Option<usize>,
    /// Report `ENOSPC` after this many bytes reach the tmp file; the
    /// partial tmp is left behind and no rename happens.
    pub enospc_after: Option<usize>,
    /// Fail this many initial attempts with a transient `Interrupted`
    /// error, exercising the bounded retry-with-backoff path.
    pub transient_errors: u32,
    /// The parent-directory fsync after the rename reports failure (the
    /// rename itself may not be durable — the caller must treat the save
    /// as failed).
    pub fail_dir_fsync: bool,
}

thread_local! {
    static IO_FAULTS: Cell<Option<IoFaults>> = const { Cell::new(None) };
}

/// Arms `faults` for the next [`write_atomic`] on this thread (taken once).
pub fn inject_io_faults(faults: IoFaults) {
    IO_FAULTS.with(|c| c.set(Some(faults)));
}

/// Clears any armed faults (test hygiene).
pub fn clear_io_faults() {
    IO_FAULTS.with(|c| c.set(None));
}

/// Maximum attempts for a transiently-failing I/O operation.
pub const IO_RETRY_BUDGET: u32 = 4;

fn is_transient(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock)
}

/// Runs `op`, retrying transient failures (`EINTR`/`EAGAIN`-class) up to
/// [`IO_RETRY_BUDGET`] attempts with exponential backoff (1/2/4 ms). Every
/// retry counts one `"io.retries"` meter event; a persistent failure or any
/// non-transient error propagates unchanged.
pub fn with_io_retries<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut delay_ms = 1u64;
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if is_transient(&e) && attempt + 1 < IO_RETRY_BUDGET => {
                crate::meter::count("io.retries");
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                delay_ms *= 2;
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Renames `from` to `to` with the transient-retry budget of
/// [`with_io_retries`] — quarantine moves use this so a busy file cannot
/// wedge the reload path.
pub fn rename_with_retries(from: &Path, to: &Path) -> io::Result<()> {
    with_io_retries(|| fs::rename(from, to))
}

/// Writes `bytes` to `path` atomically and durably: `<path>.tmp` is
/// written and fsynced, renamed over `path`, then the parent directory is
/// fsynced so the rename itself survives power loss. Transient errors are
/// retried under [`with_io_retries`]; injected faults (see [`IoFaults`])
/// perturb exactly one write.
///
/// # Errors
///
/// Propagates I/O errors (including a failed directory fsync — the caller
/// must not assume durability). On error the destination is only replaced
/// if the failure happened after the rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let faults = IO_FAULTS.with(|c| c.take()).unwrap_or_default();
    let budget = Cell::new(faults.transient_errors);
    with_io_retries(|| {
        if budget.get() > 0 {
            budget.set(budget.get() - 1);
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected transient error"));
        }
        write_atomic_once(path, bytes, &faults)
    })
}

fn write_atomic_once(path: &Path, bytes: &[u8], faults: &IoFaults) -> io::Result<()> {
    let tmp = crate::checkpoint::tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        if let Some(keep) = faults.torn_write {
            f.write_all(&bytes[..keep.min(bytes.len())])?;
            f.sync_all()?;
            return Err(io::Error::other("injected torn write (simulated crash mid-write)"));
        }
        if let Some(after) = faults.enospc_after {
            f.write_all(&bytes[..after.min(bytes.len())])?;
            f.sync_all()?;
            return Err(io::Error::from_raw_os_error(28)); // ENOSPC
        }
        let lose = faults.short_write.unwrap_or(0).min(bytes.len());
        f.write_all(&bytes[..bytes.len() - lose])?;
        f.flush()?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if faults.fail_dir_fsync {
        return Err(io::Error::other("injected directory fsync failure"));
    }
    sync_parent_dir(path)
}

/// Fsyncs `path`'s parent directory so a completed rename is durable.
/// Failure is propagated on Unix (where directory fsync is well-defined);
/// elsewhere an unsupported operation is tolerated.
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let Some(dir) = path.parent() else { return Ok(()) };
    let dir = if dir.as_os_str().is_empty() { Path::new(".") } else { dir };
    match File::open(dir).and_then(|d| d.sync_all()) {
        Ok(()) => Ok(()),
        Err(e) if !cfg!(unix) && e.kind() == io::ErrorKind::Unsupported => Ok(()),
        Err(e) => Err(e),
    }
}

/// The `.corrupt` quarantine sibling for `path`.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".corrupt");
    PathBuf::from(os)
}

/// Prunes quarantined (`*.corrupt`) files in `dir` down to the newest
/// `keep` (by modification time, file name as tie-break), mirroring the
/// checkpoint retention policy: failures must leave evidence, but a
/// crash-looping deployment must not fill the disk with it. Returns how
/// many files were removed. `keep` is clamped to at least 1.
pub fn prune_quarantine(dir: &Path, keep: usize) -> io::Result<usize> {
    let mut found: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let is_corrupt = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".corrupt"));
        if !is_corrupt || !path.is_file() {
            continue;
        }
        let mtime = entry.metadata()?.modified().unwrap_or(std::time::UNIX_EPOCH);
        found.push((mtime, path));
    }
    // Newest first; name descending breaks equal-mtime ties deterministically.
    found.sort_by(|a, b| b.cmp(a));
    let mut removed = 0;
    for (_, old) in found.into_iter().skip(keep.max(1)) {
        fs::remove_file(old)?;
        removed += 1;
    }
    Ok(removed)
}

// ----------------------------------------------------------------- writer

/// Assembles an `RBFNFRZ1` artifact: an inline structure stream plus
/// aligned, individually CRC'd payload sections. See the [module docs](self).
#[derive(Debug, Default)]
pub struct ArtifactWriter {
    flags: u32,
    structure: Vec<u8>,
    sections: Vec<Vec<u8>>,
}

impl ArtifactWriter {
    /// A fresh writer; `flags` are caller-defined (model kind, tier).
    pub fn new(flags: u32) -> Self {
        Self { flags, structure: Vec::new(), sections: Vec::new() }
    }

    /// Appends one raw byte to the structure stream.
    pub fn put_u8(&mut self, v: u8) {
        self.structure.push(v);
    }

    /// Appends a `u32` (LE) to the structure stream.
    pub fn put_u32(&mut self, v: u32) {
        self.structure.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE) to the structure stream.
    pub fn put_u64(&mut self, v: u64) {
        self.structure.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` (LE bits) to the structure stream.
    pub fn put_f32(&mut self, v: f32) {
        self.structure.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string to the structure stream.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.structure.extend_from_slice(s.as_bytes());
    }

    /// Adds a payload section, returning its id.
    pub fn put_section(&mut self, bytes: Vec<u8>) -> u32 {
        self.sections.push(bytes);
        (self.sections.len() - 1) as u32
    }

    /// Appends an f32 array: inline below [`SECTION_MIN_F32S`] elements,
    /// as a section reference at or above it.
    pub fn put_f32s(&mut self, v: &[f32]) {
        if v.len() < SECTION_MIN_F32S {
            self.put_u8(0);
            self.put_u32(v.len() as u32);
            for x in v {
                self.structure.extend_from_slice(&x.to_le_bytes());
            }
        } else {
            self.put_u8(1);
            self.put_u32(v.len() as u32);
            let id = self.put_section(f32s_to_le_bytes(v));
            self.put_u32(id);
        }
    }

    /// Appends an `i8` array: inline below [`SECTION_MIN_BYTES`] bytes, as
    /// a section reference at or above it.
    pub fn put_i8s(&mut self, v: &[i8]) {
        let bytes = unsafe {
            // i8 -> u8 reinterpretation is always valid.
            std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len())
        };
        if bytes.len() < SECTION_MIN_BYTES {
            self.put_u8(0);
            self.put_u32(v.len() as u32);
            self.structure.extend_from_slice(bytes);
        } else {
            self.put_u8(1);
            self.put_u32(v.len() as u32);
            let id = self.put_section(bytes.to_vec());
            self.put_u32(id);
        }
    }

    /// Appends an `i32` array: inline below [`SECTION_MIN_BYTES`] bytes, as
    /// a section reference at or above it.
    pub fn put_i32s(&mut self, v: &[i32]) {
        if v.len() * 4 < SECTION_MIN_BYTES {
            self.put_u8(0);
            self.put_u32(v.len() as u32);
            for x in v {
                self.structure.extend_from_slice(&x.to_le_bytes());
            }
        } else {
            self.put_u8(1);
            self.put_u32(v.len() as u32);
            let mut bytes = Vec::with_capacity(v.len() * 4);
            for x in v {
                bytes.extend_from_slice(&x.to_le_bytes());
            }
            let id = self.put_section(bytes);
            self.put_u32(id);
        }
    }

    /// Appends an f32 panel image as an aligned section (always), writing
    /// the reference into the structure stream.
    pub fn put_panel_f32(&mut self, image: &[f32]) {
        let id = self.put_section(f32s_to_le_bytes(image));
        self.put_u32(id);
        self.put_u32(image.len() as u32);
    }

    /// Appends an int8 panel image as an aligned section (always), writing
    /// the reference into the structure stream.
    pub fn put_panel_i8(&mut self, image: &[i8]) {
        let bytes = unsafe { std::slice::from_raw_parts(image.as_ptr().cast::<u8>(), image.len()) };
        let id = self.put_section(bytes.to_vec());
        self.put_u32(id);
        self.put_u32(image.len() as u32);
    }

    /// Appends a dense tensor (shape + data, auto inline/section).
    pub fn put_tensor(&mut self, t: &Tensor) {
        let s = t.shape();
        for d in [s.n, s.c, s.h, s.w] {
            self.put_u32(d as u32);
        }
        self.put_f32s(t.data());
    }

    /// Assembles the final artifact bytes.
    pub fn finish(&self) -> Vec<u8> {
        let n = self.sections.len();
        let toc_len = n * TOC_ENTRY_LEN;
        let payload_base = HEADER_LEN + toc_len + self.structure.len();

        // Lay out sections.
        let mut offsets = Vec::with_capacity(n);
        let mut cursor = payload_base;
        for s in &self.sections {
            cursor = cursor.div_ceil(SECTION_ALIGN) * SECTION_ALIGN;
            offsets.push(cursor);
            cursor += s.len();
        }
        let total = cursor;

        let mut toc = Vec::with_capacity(toc_len);
        for (s, &off) in self.sections.iter().zip(&offsets) {
            toc.extend_from_slice(&(off as u64).to_le_bytes());
            toc.extend_from_slice(&(s.len() as u64).to_le_bytes());
            toc.extend_from_slice(&crc32(s).to_le_bytes());
            toc.extend_from_slice(&0u32.to_le_bytes());
        }

        let mut meta_crc_src = toc.clone();
        meta_crc_src.extend_from_slice(&self.structure);
        let meta_crc = crc32(&meta_crc_src);
        let digest = fnv1a64(0, &meta_crc_src);

        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&gemm_layout_fingerprint().to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&(self.structure.len() as u64).to_le_bytes());
        out.extend_from_slice(&meta_crc.to_le_bytes());
        out.extend_from_slice(&digest.to_le_bytes());
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);
        out.extend_from_slice(&toc);
        out.extend_from_slice(&self.structure);
        for (s, &off) in self.sections.iter().zip(&offsets) {
            out.resize(off, 0);
            out.extend_from_slice(s);
        }
        debug_assert_eq!(out.len(), total);
        out
    }

    /// Assembles and writes the artifact atomically (see [`write_atomic`]).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &self.finish())
    }
}

fn f32s_to_le_bytes(v: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decodes a packed little-endian f32 byte run into an owned vector; on
/// little-endian targets this is a single bulk copy (the decode path is on
/// the serving cold start, where per-element loops show up).
fn f32s_from_le_bytes(raw: &[u8]) -> Vec<f32> {
    debug_assert_eq!(raw.len() % 4, 0);
    let n = raw.len() / 4;
    #[cfg(target_endian = "little")]
    {
        let mut v = Vec::<f32>::with_capacity(n);
        // SAFETY: u8 -> f32 bit reinterpretation of exactly n elements into
        // freshly reserved capacity; any alignment of `raw` is fine for a
        // byte-wise copy.
        unsafe {
            std::ptr::copy_nonoverlapping(raw.as_ptr(), v.as_mut_ptr().cast::<u8>(), n * 4);
            v.set_len(n);
        }
        v
    }
    #[cfg(not(target_endian = "little"))]
    {
        raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
    }
}

// ----------------------------------------------------------------- reader

#[derive(Clone, Copy, Debug)]
struct SectionMeta {
    off: usize,
    len: usize,
    crc: u32,
}

/// A validated view over an `RBFNFRZ1` artifact, mmap-backed where
/// available. Header, TOC and structure stream are verified at open;
/// section payloads on demand ([`ArtifactReader::verify_sections`]).
#[derive(Debug)]
pub struct ArtifactReader {
    bytes: SharedBytes,
    mapped: bool,
    flags: u32,
    digest: u64,
    struct_off: usize,
    struct_len: usize,
    toc: Vec<SectionMeta>,
}

impl ArtifactReader {
    /// Opens `path`, preferring mmap when `prefer_map` (with transparent
    /// copy-load fallback), and eagerly validates header, TOC and
    /// structure-stream CRC.
    pub fn open(path: &Path, prefer_map: bool) -> io::Result<Self> {
        let (bytes, mapped) = SharedBytes::load(path, prefer_map)?;
        Self::from_bytes(bytes, mapped)
    }

    /// Parses and validates an in-memory (or mapped) artifact buffer.
    pub fn from_bytes(bytes: SharedBytes, mapped: bool) -> io::Result<Self> {
        let buf = bytes.as_slice();
        if buf.len() < HEADER_LEN {
            return Err(inv("artifact shorter than its header"));
        }
        if &buf[..8] != MAGIC {
            return Err(inv("bad artifact magic (not an RBFNFRZ1 file)"));
        }
        let header_crc = u32::from_le_bytes(buf[44..48].try_into().unwrap());
        if crc32(&buf[..44]) != header_crc {
            return Err(inv("artifact header CRC mismatch"));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(inv(format!("unsupported artifact version {version}")));
        }
        let layout = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        if layout != gemm_layout_fingerprint() {
            return Err(inv(format!(
                "artifact packed for GEMM layout {layout:#010x}, this build uses {:#010x}",
                gemm_layout_fingerprint()
            )));
        }
        let flags = u32::from_le_bytes(buf[16..20].try_into().unwrap());
        let n = u32::from_le_bytes(buf[20..24].try_into().unwrap()) as usize;
        let struct_len = u64::from_le_bytes(buf[24..32].try_into().unwrap());
        let meta_crc = u32::from_le_bytes(buf[32..36].try_into().unwrap());
        let digest = u64::from_le_bytes(buf[36..44].try_into().unwrap());

        let toc_len = n.checked_mul(TOC_ENTRY_LEN).ok_or_else(|| inv("TOC size overflow"))?;
        let struct_len =
            usize::try_from(struct_len).map_err(|_| inv("structure length overflow"))?;
        let struct_off = HEADER_LEN + toc_len;
        let struct_end =
            struct_off.checked_add(struct_len).ok_or_else(|| inv("structure range overflow"))?;
        if struct_end > buf.len() {
            return Err(inv("artifact truncated inside TOC/structure"));
        }
        if crc32(&buf[HEADER_LEN..struct_end]) != meta_crc {
            return Err(inv("artifact TOC/structure CRC mismatch"));
        }

        let mut toc = Vec::with_capacity(n);
        for i in 0..n {
            let e = HEADER_LEN + i * TOC_ENTRY_LEN;
            let off = u64::from_le_bytes(buf[e..e + 8].try_into().unwrap());
            let len = u64::from_le_bytes(buf[e + 8..e + 16].try_into().unwrap());
            let crc = u32::from_le_bytes(buf[e + 16..e + 20].try_into().unwrap());
            let (off, len) = (
                usize::try_from(off).map_err(|_| inv("section offset overflow"))?,
                usize::try_from(len).map_err(|_| inv("section length overflow"))?,
            );
            let end = off.checked_add(len).ok_or_else(|| inv("section range overflow"))?;
            if off < struct_end || end > buf.len() {
                return Err(inv(format!("section {i} range out of bounds")));
            }
            if !off.is_multiple_of(SECTION_ALIGN) {
                return Err(inv(format!("section {i} misaligned")));
            }
            toc.push(SectionMeta { off, len, crc });
        }
        Ok(Self { bytes, mapped, flags, digest, struct_off, struct_len, toc })
    }

    /// Caller-defined flags stored at write time.
    pub fn flags(&self) -> u32 {
        self.flags
    }

    /// FNV-1a64 content digest (covers the structure stream and every
    /// section CRC) — the artifact's identity for health reporting.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Whether the underlying buffer is an mmap (vs. a heap copy).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// Total bytes of the backing buffer (mapped or copied).
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of payload sections.
    pub fn section_count(&self) -> usize {
        self.toc.len()
    }

    /// Verifies every section payload against its TOC CRC — the full-file
    /// integrity scan run before publishing a hot reload.
    ///
    /// # Errors
    ///
    /// `InvalidData` naming the first corrupt section.
    pub fn verify_sections(&self) -> io::Result<()> {
        let buf = self.bytes.as_slice();
        for (i, s) in self.toc.iter().enumerate() {
            if crc32(&buf[s.off..s.off + s.len]) != s.crc {
                return Err(inv(format!("section {i} payload CRC mismatch")));
            }
        }
        Ok(())
    }

    /// A cursor over the structure stream.
    pub fn cursor(&self) -> TreeReader<'_> {
        TreeReader { r: self, pos: self.struct_off, end: self.struct_off + self.struct_len }
    }

    fn section(&self, id: u32) -> io::Result<SectionMeta> {
        self.toc
            .get(id as usize)
            .copied()
            .ok_or_else(|| inv(format!("section id {id} out of range")))
    }
}

/// A bounds-checked cursor over an artifact's structure stream, resolving
/// section references against the owning [`ArtifactReader`].
#[derive(Debug)]
pub struct TreeReader<'a> {
    r: &'a ArtifactReader,
    pos: usize,
    end: usize,
}

impl<'a> TreeReader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.end)
            .ok_or_else(|| inv("structure stream truncated"))?;
        let s = &self.r.bytes.as_slice()[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` (LE).
    pub fn get_u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` (LE).
    pub fn get_u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` (LE bits).
    pub fn get_f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string (capped at 64 KiB).
    pub fn get_str(&mut self) -> io::Result<String> {
        let len = self.get_u32()? as usize;
        if len > 65536 {
            return Err(inv("unreasonable string length"));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| inv("non-UTF-8 string"))
    }

    /// Reads an f32 array written by [`ArtifactWriter::put_f32s`].
    pub fn get_f32s(&mut self) -> io::Result<Vec<f32>> {
        let tag = self.get_u8()?;
        let len = self.get_u32()? as usize;
        let raw = match tag {
            0 => self.take(len.checked_mul(4).ok_or_else(|| inv("f32 array overflow"))?)?,
            1 => {
                let id = self.get_u32()?;
                let s = self.r.section(id)?;
                if s.len != len * 4 {
                    return Err(inv("f32 section length mismatch"));
                }
                &self.r.bytes.as_slice()[s.off..s.off + s.len]
            }
            _ => return Err(inv("bad f32 array tag")),
        };
        Ok(f32s_from_le_bytes(raw))
    }

    /// Reads an `i8` array written by [`ArtifactWriter::put_i8s`].
    pub fn get_i8s(&mut self) -> io::Result<Vec<i8>> {
        let tag = self.get_u8()?;
        let len = self.get_u32()? as usize;
        let raw = match tag {
            0 => self.take(len)?,
            1 => {
                let id = self.get_u32()?;
                let s = self.r.section(id)?;
                if s.len != len {
                    return Err(inv("i8 section length mismatch"));
                }
                &self.r.bytes.as_slice()[s.off..s.off + s.len]
            }
            _ => return Err(inv("bad i8 array tag")),
        };
        let mut v = Vec::<i8>::with_capacity(raw.len());
        // SAFETY: u8 -> i8 bit reinterpretation into freshly reserved
        // capacity of the same length.
        unsafe {
            std::ptr::copy_nonoverlapping(raw.as_ptr(), v.as_mut_ptr().cast::<u8>(), raw.len());
            v.set_len(raw.len());
        }
        Ok(v)
    }

    /// Reads an `i32` array written by [`ArtifactWriter::put_i32s`].
    pub fn get_i32s(&mut self) -> io::Result<Vec<i32>> {
        let tag = self.get_u8()?;
        let len = self.get_u32()? as usize;
        let raw = match tag {
            0 => self.take(len.checked_mul(4).ok_or_else(|| inv("i32 array overflow"))?)?,
            1 => {
                let id = self.get_u32()?;
                let s = self.r.section(id)?;
                if s.len != len * 4 {
                    return Err(inv("i32 section length mismatch"));
                }
                &self.r.bytes.as_slice()[s.off..s.off + s.len]
            }
            _ => return Err(inv("bad i32 array tag")),
        };
        Ok(raw.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    /// Resolves an f32 panel reference into a [`PackedGemmA`]. On
    /// little-endian targets the panel image *borrows* the artifact buffer
    /// (zero-copy); elsewhere it is decoded into an owned buffer.
    pub fn get_panel_f32(&mut self, m: usize, k: usize) -> io::Result<PackedGemmA> {
        let id = self.get_u32()?;
        let len = self.get_u32()? as usize;
        let s = self.r.section(id)?;
        if len != PackedGemmA::image_len(m, k) || s.len != len * 4 {
            return Err(inv("f32 panel image length disagrees with its plan"));
        }
        #[cfg(target_endian = "little")]
        {
            PackedGemmA::from_shared_image(m, k, self.r.bytes.clone(), s.off).map_err(inv)
        }
        #[cfg(not(target_endian = "little"))]
        {
            let raw = &self.r.bytes.as_slice()[s.off..s.off + s.len];
            let image =
                raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
            PackedGemmA::from_owned_image(m, k, image).map_err(inv)
        }
    }

    /// Resolves an int8 panel reference into a [`PackedGemmAI8`] image view
    /// (always zero-copy; single bytes have no endianness). Scales and
    /// weight sums are passed through from the caller's decode.
    pub fn get_panel_i8(
        &mut self,
        m: usize,
        k: usize,
        scales: Vec<f32>,
        wsums: Vec<i32>,
    ) -> io::Result<PackedGemmAI8> {
        let id = self.get_u32()?;
        let len = self.get_u32()? as usize;
        let s = self.r.section(id)?;
        if len != PackedGemmAI8::image_len(m, k) || s.len != len {
            return Err(inv("int8 panel image length disagrees with its plan"));
        }
        PackedGemmAI8::from_shared_image(m, k, self.r.bytes.clone(), s.off, scales, wsums)
            .map_err(inv)
    }

    /// Reads a dense tensor written by [`ArtifactWriter::put_tensor`].
    pub fn get_tensor(&mut self) -> io::Result<Tensor> {
        let mut dims = [0usize; 4];
        for d in &mut dims {
            *d = self.get_u32()? as usize;
        }
        let shape = Shape::new(dims[0], dims[1], dims[2], dims[3]);
        let data = self.get_f32s()?;
        Tensor::from_vec(shape, data)
            .map_err(|_| inv("tensor payload length disagrees with its shape"))
    }

    /// Bytes remaining in the structure stream.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }
}

// -------------------------------------------------- frozen layer tree codec

fn act_tag(a: EpilogueAct) -> u8 {
    match a {
        EpilogueAct::None => 0,
        EpilogueAct::Relu => 1,
        EpilogueAct::HardSwish => 2,
        EpilogueAct::HardSigmoid => 3,
    }
}

fn act_from(tag: u8) -> io::Result<EpilogueAct> {
    Ok(match tag {
        0 => EpilogueAct::None,
        1 => EpilogueAct::Relu,
        2 => EpilogueAct::HardSwish,
        3 => EpilogueAct::HardSigmoid,
        _ => return Err(inv("bad epilogue activation tag")),
    })
}

fn kind_tag(a: ActKind) -> u8 {
    match a {
        ActKind::Relu => 0,
        ActKind::HardSwish => 1,
        ActKind::HardSigmoid => 2,
        ActKind::Sigmoid => 3,
    }
}

fn kind_from(tag: u8) -> io::Result<ActKind> {
    Ok(match tag {
        0 => ActKind::Relu,
        1 => ActKind::HardSwish,
        2 => ActKind::HardSigmoid,
        3 => ActKind::Sigmoid,
        _ => return Err(inv("bad activation kind tag")),
    })
}

fn put_spec(w: &mut ArtifactWriter, s: &ConvSpec) {
    for v in [s.kh, s.kw, s.sh, s.sw, s.ph, s.pw, s.groups] {
        w.put_u32(v as u32);
    }
}

fn get_spec(r: &mut TreeReader<'_>) -> io::Result<ConvSpec> {
    let mut v = [0usize; 7];
    for d in &mut v {
        *d = r.get_u32()? as usize;
    }
    Ok(ConvSpec { kh: v[0], kw: v[1], sh: v[2], sw: v[3], ph: v[4], pw: v[5], groups: v[6] })
}

fn encode_conv(w: &mut ArtifactWriter, fc: &FusedConv) -> io::Result<()> {
    if let Some(q) = fc.qplan() {
        w.put_u8(1);
        put_spec(w, q.spec());
        w.put_u32(q.c_in() as u32);
        w.put_u32(q.c_out() as u32);
        w.put_u8(act_tag(q.act()));
        w.put_f32s(q.bias());
        match q.kind() {
            QuantPlanKind::Pointwise(pa) => {
                w.put_u8(0);
                w.put_f32s(pa.scales());
                w.put_i32s(pa.wsums());
                w.put_panel_i8(pa.image());
            }
            QuantPlanKind::Depthwise { qweight, scales } => {
                w.put_u8(1);
                w.put_i8s(qweight);
                w.put_f32s(scales);
            }
            QuantPlanKind::General { groups } => {
                w.put_u8(2);
                w.put_u32(groups.len() as u32);
                for pa in groups {
                    w.put_f32s(pa.scales());
                    w.put_i32s(pa.wsums());
                    w.put_panel_i8(pa.image());
                }
            }
        }
    } else if let Some(p) = fc.plan() {
        w.put_u8(0);
        put_spec(w, p.spec());
        w.put_u32(p.c_in() as u32);
        w.put_u32(p.c_out() as u32);
        w.put_u8(act_tag(p.act()));
        w.put_f32s(p.bias());
        match p.kind() {
            PlanKind::Pointwise(pa) => {
                w.put_u8(0);
                w.put_panel_f32(pa.image());
            }
            PlanKind::Depthwise { weight } => {
                w.put_u8(1);
                w.put_f32s(weight);
            }
            PlanKind::General { groups } => {
                w.put_u8(2);
                w.put_u32(groups.len() as u32);
                for pa in groups {
                    w.put_panel_f32(pa.image());
                }
            }
        }
    } else {
        return Err(inv("cannot serialize an uncompiled fused conv"));
    }
    Ok(())
}

fn decode_conv(r: &mut TreeReader<'_>) -> io::Result<FusedConv> {
    let tier = r.get_u8()?;
    let spec = get_spec(r)?;
    let c_in = r.get_u32()? as usize;
    let c_out = r.get_u32()? as usize;
    let act = act_from(r.get_u8()?)?;
    let bias = r.get_f32s()?;
    if c_in == 0 || c_out == 0 || spec.groups == 0 {
        return Err(inv("degenerate conv header"));
    }
    match tier {
        1 => {
            let kind = match r.get_u8()? {
                0 => {
                    let scales = r.get_f32s()?;
                    let wsums = r.get_i32s()?;
                    QuantPlanKind::Pointwise(r.get_panel_i8(c_out, c_in, scales, wsums)?)
                }
                1 => QuantPlanKind::Depthwise { qweight: r.get_i8s()?, scales: r.get_f32s()? },
                2 => {
                    let n = r.get_u32()? as usize;
                    if n != spec.groups {
                        return Err(inv("group count disagrees with spec"));
                    }
                    let cout_g =
                        c_out.checked_div(n).filter(|_| n > 0).ok_or_else(|| inv("bad groups"))?;
                    let k = (c_in / n) * spec.kh * spec.kw;
                    let mut groups = Vec::with_capacity(n);
                    for _ in 0..n {
                        let scales = r.get_f32s()?;
                        let wsums = r.get_i32s()?;
                        groups.push(r.get_panel_i8(cout_g, k, scales, wsums)?);
                    }
                    QuantPlanKind::General { groups }
                }
                _ => return Err(inv("bad quant plan kind tag")),
            };
            let plan = QuantConvPlan::from_parts(spec, c_in, c_out, bias, act, kind).map_err(inv)?;
            Ok(FusedConv::from_qplan(plan))
        }
        0 => {
            let kind = match r.get_u8()? {
                0 => PlanKind::Pointwise(r.get_panel_f32(c_out, c_in)?),
                1 => PlanKind::Depthwise { weight: r.get_f32s()? },
                2 => {
                    let n = r.get_u32()? as usize;
                    if n != spec.groups {
                        return Err(inv("group count disagrees with spec"));
                    }
                    let cout_g =
                        c_out.checked_div(n).filter(|_| n > 0).ok_or_else(|| inv("bad groups"))?;
                    let k = (c_in / n) * spec.kh * spec.kw;
                    let mut groups = Vec::with_capacity(n);
                    for _ in 0..n {
                        groups.push(r.get_panel_f32(cout_g, k)?);
                    }
                    PlanKind::General { groups }
                }
                _ => return Err(inv("bad plan kind tag")),
            };
            let plan = ConvPlan::from_parts(spec, c_in, c_out, bias, act, kind).map_err(inv)?;
            Ok(FusedConv::from_plan(plan))
        }
        _ => Err(inv("bad conv tier tag")),
    }
}

/// Serializes a compiled [`FrozenLayer`] tree into the writer's structure
/// stream, sending packed panel images to aligned sections.
///
/// # Errors
///
/// Fails on a tree containing an uncompiled conv.
pub fn encode_layer(w: &mut ArtifactWriter, layer: &FrozenLayer) -> io::Result<()> {
    match layer {
        FrozenLayer::Identity => w.put_u8(0),
        FrozenLayer::Conv(fc) => {
            w.put_u8(1);
            encode_conv(w, fc)?;
        }
        FrozenLayer::Affine { scale, bias } => {
            w.put_u8(2);
            w.put_tensor(scale);
            w.put_tensor(bias);
        }
        FrozenLayer::Act(kind) => {
            w.put_u8(3);
            w.put_u8(kind_tag(*kind));
        }
        FrozenLayer::Linear { weight, bias } => {
            w.put_u8(4);
            w.put_tensor(weight);
            w.put_tensor(bias);
        }
        FrozenLayer::Upsample { factor, mode } => {
            w.put_u8(5);
            w.put_u32(*factor as u32);
            w.put_u8(match mode {
                ResizeMode::Bilinear => 0,
                ResizeMode::Nearest => 1,
            });
        }
        FrozenLayer::SpaceToDepth { block } => {
            w.put_u8(6);
            w.put_u32(*block as u32);
        }
        FrozenLayer::GlobalAvgPool => w.put_u8(7),
        FrozenLayer::SqueezeExcite { reduce, expand } => {
            w.put_u8(8);
            encode_conv(w, reduce)?;
            encode_conv(w, expand)?;
        }
        FrozenLayer::Residual(inner) => {
            w.put_u8(9);
            encode_layer(w, inner)?;
        }
        FrozenLayer::Seq(children) => {
            w.put_u8(10);
            w.put_u32(children.len() as u32);
            for c in children {
                encode_layer(w, c)?;
            }
        }
    }
    Ok(())
}

/// Deserializes a [`FrozenLayer`] tree written by [`encode_layer`]. Panel
/// images reference the artifact buffer directly where possible.
pub fn decode_layer(r: &mut TreeReader<'_>) -> io::Result<FrozenLayer> {
    Ok(match r.get_u8()? {
        0 => FrozenLayer::Identity,
        1 => FrozenLayer::Conv(Box::new(decode_conv(r)?)),
        2 => {
            let scale = r.get_tensor()?;
            let bias = r.get_tensor()?;
            FrozenLayer::Affine { scale, bias }
        }
        3 => FrozenLayer::Act(kind_from(r.get_u8()?)?),
        4 => {
            let weight = r.get_tensor()?;
            let bias = r.get_tensor()?;
            FrozenLayer::Linear { weight, bias }
        }
        5 => {
            let factor = r.get_u32()? as usize;
            let mode = match r.get_u8()? {
                0 => ResizeMode::Bilinear,
                1 => ResizeMode::Nearest,
                _ => return Err(inv("bad resize mode tag")),
            };
            FrozenLayer::Upsample { factor, mode }
        }
        6 => FrozenLayer::SpaceToDepth { block: r.get_u32()? as usize },
        7 => FrozenLayer::GlobalAvgPool,
        8 => {
            let reduce = Box::new(decode_conv(r)?);
            let expand = Box::new(decode_conv(r)?);
            FrozenLayer::SqueezeExcite { reduce, expand }
        }
        9 => FrozenLayer::Residual(Box::new(decode_layer(r)?)),
        10 => {
            let n = r.get_u32()? as usize;
            if n > 1 << 20 {
                return Err(inv("unreasonable sequence length"));
            }
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(decode_layer(r)?);
            }
            FrozenLayer::Seq(children)
        }
        _ => return Err(inv("bad frozen layer tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freeze::freeze_layer;
    use crate::layers::{BatchNorm2d, Conv2d, HardSwish};
    use crate::meter;
    use crate::module::{Layer, Sequential};
    use crate::CacheMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("revbifpn_artifact_{tag}_{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_frozen() -> (FrozenLayer, Tensor) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seq = Sequential::new()
            .push(Box::new(Conv2d::pointwise(6, 12, false, &mut rng)))
            .push(Box::new(BatchNorm2d::new(12)))
            .push(Box::new(HardSwish::new()))
            .push(Box::new(Conv2d::new(12, 8, ConvSpec::kxk(3, 1), true, &mut rng)));
        let x = Tensor::randn(Shape::new(2, 6, 8, 8), 1.0, &mut rng);
        for _ in 0..2 {
            let _ = seq.forward(&x, CacheMode::Stats);
            seq.clear_cache();
        }
        (freeze_layer(&seq).unwrap(), x)
    }

    fn roundtrip(path: &Path, frozen: &FrozenLayer, prefer_map: bool) -> (FrozenLayer, bool) {
        let mut w = ArtifactWriter::new(0);
        encode_layer(&mut w, frozen).unwrap();
        w.save(path).unwrap();
        let r = ArtifactReader::open(path, prefer_map).unwrap();
        r.verify_sections().unwrap();
        let mut cur = r.cursor();
        let decoded = decode_layer(&mut cur).unwrap();
        assert_eq!(cur.remaining(), 0, "trailing structure bytes");
        (decoded, r.is_mapped())
    }

    #[test]
    fn layer_roundtrips_bitwise_mapped_and_copied() {
        let dir = tmp_dir("roundtrip");
        let (frozen, x) = sample_frozen();
        let want = frozen.forward(&x);
        for prefer_map in [true, false] {
            let path = dir.join(format!("m_{prefer_map}.frz"));
            let (decoded, mapped) = roundtrip(&path, &frozen, prefer_map);
            assert_eq!(mapped, prefer_map && SharedBytes::mmap_supported());
            let got = decoded.forward(&x);
            assert_eq!(got, want, "artifact forward must be bitwise equal");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn int8_layer_roundtrips_bitwise() {
        let dir = tmp_dir("roundtrip_q");
        let mut rng = StdRng::seed_from_u64(12);
        let mut seq = Sequential::new()
            .push(Box::new(Conv2d::pointwise(6, 12, false, &mut rng)))
            .push(Box::new(BatchNorm2d::new(12)))
            .push(Box::new(HardSwish::new()));
        let x = Tensor::randn(Shape::new(1, 6, 8, 8), 1.0, &mut rng);
        let _ = seq.forward(&x, CacheMode::Stats);
        seq.clear_cache();
        let frozen = crate::freeze::freeze_layer_int8(&seq).unwrap();
        let want = frozen.forward(&x);
        let path = dir.join("q.frz");
        let (decoded, _) = roundtrip(&path, &frozen, true);
        assert_eq!(decoded.forward(&x), want);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_bit_flips_never_produce_wrong_answers() {
        let (frozen, x) = sample_frozen();
        let want = frozen.forward(&x);
        let mut w = ArtifactWriter::new(0);
        encode_layer(&mut w, &frozen).unwrap();
        let clean = w.finish();
        // Flip one bit at a spread of positions across header, TOC,
        // structure and payload. Every flip must either fail validation or
        // land in inert padding (in which case decoding is still bitwise
        // correct) — a flip must never silently change an answer.
        for pos in (0..clean.len()).step_by(clean.len() / 37 + 1) {
            let mut bad = clean.clone();
            bad[pos] ^= 0x10;
            let outcome = ArtifactReader::from_bytes(SharedBytes::from_vec(bad), false)
                .and_then(|r| {
                    r.verify_sections()?;
                    decode_layer(&mut r.cursor())
                });
            if let Ok(decoded) = outcome {
                assert_eq!(
                    decoded.forward(&x),
                    want,
                    "bit flip at {pos} passed validation AND changed the output"
                );
            }
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let (frozen, _) = sample_frozen();
        let mut w = ArtifactWriter::new(0);
        encode_layer(&mut w, &frozen).unwrap();
        let clean = w.finish();
        for keep in [0, 7, HEADER_LEN - 1, HEADER_LEN + 3, clean.len() / 2, clean.len() - 1] {
            let outcome =
                ArtifactReader::from_bytes(SharedBytes::from_vec(clean[..keep].to_vec()), false)
                    .and_then(|r| r.verify_sections());
            assert!(outcome.is_err(), "truncation to {keep} bytes went undetected");
        }
    }

    #[test]
    fn torn_write_leaves_destination_untouched() {
        let dir = tmp_dir("torn");
        let path = dir.join("model.frz");
        let (frozen, x) = sample_frozen();
        let mut w = ArtifactWriter::new(0);
        encode_layer(&mut w, &frozen).unwrap();
        w.save(&path).unwrap();
        let want = frozen.forward(&x);

        // Torn write: error reported, previous generation still loadable.
        inject_io_faults(IoFaults { torn_write: Some(100), ..Default::default() });
        assert!(w.save(&path).is_err());
        let r = ArtifactReader::open(&path, true).unwrap();
        r.verify_sections().unwrap();
        let mut cur = r.cursor();
        let decoded = decode_layer(&mut cur).unwrap();
        assert_eq!(decoded.forward(&x), want, "previous generation must survive a torn write");

        // ENOSPC: same guarantee.
        inject_io_faults(IoFaults { enospc_after: Some(256), ..Default::default() });
        let err = w.save(&path).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert!(ArtifactReader::open(&path, true).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_is_caught_by_validation() {
        let dir = tmp_dir("short");
        let path = dir.join("model.frz");
        let (frozen, _) = sample_frozen();
        let mut w = ArtifactWriter::new(0);
        encode_layer(&mut w, &frozen).unwrap();
        inject_io_faults(IoFaults { short_write: Some(40), ..Default::default() });
        w.save(&path).unwrap(); // the write "succeeds" — the FS lied
        let outcome = ArtifactReader::open(&path, true).and_then(|r| r.verify_sections());
        assert!(outcome.is_err(), "silent tail loss must fail CRC validation");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_errors_are_retried_and_metered() {
        let dir = tmp_dir("retry");
        let path = dir.join("f.bin");
        let before = meter::event_count("io.retries");
        inject_io_faults(IoFaults { transient_errors: 2, ..Default::default() });
        write_atomic(&path, b"payload").unwrap();
        assert_eq!(meter::event_count("io.retries"), before + 2);
        assert_eq!(fs::read(&path).unwrap(), b"payload");

        // A persistent transient failure exhausts the budget and errors.
        let before = meter::event_count("io.retries");
        inject_io_faults(IoFaults { transient_errors: IO_RETRY_BUDGET + 2, ..Default::default() });
        assert!(write_atomic(&path, b"p2").is_err());
        assert_eq!(meter::event_count("io.retries"), before + (IO_RETRY_BUDGET - 1) as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_fsync_failure_is_reported() {
        let dir = tmp_dir("dirsync");
        let path = dir.join("f.bin");
        inject_io_faults(IoFaults { fail_dir_fsync: true, ..Default::default() });
        assert!(write_atomic(&path, b"x").is_err(), "non-durable rename must be reported");
        clear_io_faults();
    }

    #[test]
    fn layout_fingerprint_mismatch_is_rejected() {
        let (frozen, _) = sample_frozen();
        let mut w = ArtifactWriter::new(0);
        encode_layer(&mut w, &frozen).unwrap();
        let mut bytes = w.finish();
        bytes[12] ^= 0xff; // perturb the layout fingerprint
        let fixed_crc = crc32(&bytes[..44]);
        bytes[44..48].copy_from_slice(&fixed_crc.to_le_bytes());
        let err = ArtifactReader::from_bytes(SharedBytes::from_vec(bytes), false).unwrap_err();
        assert!(err.to_string().contains("GEMM layout"), "{err}");
    }

    #[test]
    fn prune_quarantine_keeps_only_newest_corrupt_files() {
        let dir = tmp_dir("prunequar");
        // Five quarantined artifacts with strictly increasing mtimes, plus
        // bystanders that must never be touched.
        for i in 0..5 {
            fs::write(dir.join(format!("m{i}.frz.corrupt")), [i as u8]).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        fs::write(dir.join("live.frz"), b"keep me").unwrap();
        fs::write(dir.join("notes.txt"), b"also me").unwrap();

        let removed = prune_quarantine(&dir, 2).unwrap();
        assert_eq!(removed, 3);
        let mut left: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".corrupt"))
            .collect();
        left.sort();
        assert_eq!(left, vec!["m3.frz.corrupt", "m4.frz.corrupt"], "newest two survive");
        assert!(dir.join("live.frz").exists(), "non-quarantine files untouched");
        assert!(dir.join("notes.txt").exists());

        // Pruning an already-small set is a no-op; keep clamps to >= 1.
        assert_eq!(prune_quarantine(&dir, 2).unwrap(), 0);
        assert_eq!(prune_quarantine(&dir, 0).unwrap(), 1, "keep=0 still keeps one");
        fs::remove_dir_all(&dir).unwrap();
    }
}
