//! Inference-time model freezing: BN folding, conv–bias–activation fusion,
//! and persistent pre-packed GEMM weight panels.
//!
//! `Layer::freeze` compiles an eval-mode layer graph into a [`FrozenLayer`]
//! tree whose forward pass uses only fused kernels:
//!
//! * eval-mode BatchNorm becomes a per-channel affine (`scale = gamma /
//!   sqrt(running_var + eps)`, `bias = beta - running_mean * scale`) which is
//!   folded into the preceding convolution's weights and bias;
//! * ReLU / hard-swish / hard-sigmoid following a convolution run inside the
//!   GEMM epilogue ([`EpilogueAct`]) instead of as a separate pass;
//! * each convolution's im2col-GEMM weight panels are packed exactly once
//!   ([`revbifpn_tensor::ConvPlan`]) and reused across every subsequent
//!   forward. The resident bytes are registered with [`meter::add_packed`]
//!   so memory figures stay honest, and each packing increments the
//!   `"freeze.weights_packed"` event counter so tests can assert zero
//!   re-packing at steady state.
//!
//! Freezing is two-phase: [`Layer::freeze`] produces an *uncompiled* tree
//! (cheap, fusion happens structurally via [`FrozenLayer::sequence`]), and
//! [`FrozenLayer::compile`] packs the weights. [`freeze_layer`] does both.
//!
//! A third, optional lowering sits on top: [`FrozenLayer::quantize`]
//! re-packs every fused conv's folded weights as per-output-channel
//! symmetric int8 (scale `max|w| / 127`) and serves it through the int8
//! GEMM/depthwise kernels with dynamically quantized activations
//! ([`freeze_layer_int8`] chains freeze → quantize → compile). Quantized
//! bytes ride the separate [`meter::quant_packed_current`] gauge and the
//! `"freeze.weights_quantized"` event counter.
//!
//! The packed-bytes accounting uses the thread-local meter, so a frozen
//! layer should be compiled and dropped on the same thread.

use crate::meter;
use crate::module::Layer;
use revbifpn_tensor::{
    global_avg_pool, sgemm_a_bt, space_to_depth, upsample, ConvPlan, ConvSpec, EpilogueAct,
    QuantConvPlan, ResizeMode, Shape, Tensor,
};

/// Error returned when a layer (or one of its children) has no frozen form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FreezeError {
    /// The offending component does not implement freezing.
    Unsupported {
        /// What kind of component refused (`"layer"`, `"reversible stage"`,
        /// `"detection backbone"`, ...), so a failure deep inside a new
        /// architecture is attributable from the error alone.
        kind: String,
        /// The component's reported name.
        layer: String,
    },
}

impl FreezeError {
    /// Convenience constructor for [`FreezeError::Unsupported`].
    pub fn unsupported(kind: impl Into<String>, layer: impl Into<String>) -> Self {
        Self::Unsupported { kind: kind.into(), layer: layer.into() }
    }
}

impl std::fmt::Display for FreezeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unsupported { kind, layer } => {
                write!(f, "{kind} `{layer}` cannot be frozen")
            }
        }
    }
}

impl std::error::Error for FreezeError {}

/// RAII registration of packed-weight bytes with the thread-local meter.
#[derive(Debug)]
struct PackedBytes {
    bytes: usize,
}

impl PackedBytes {
    fn new(bytes: usize) -> Self {
        meter::add_packed(bytes);
        Self { bytes }
    }
}

impl Drop for PackedBytes {
    fn drop(&mut self) {
        meter::sub_packed(self.bytes);
    }
}

/// RAII registration of quantized packed-weight bytes with the thread-local
/// meter's int8 gauge ([`meter::quant_packed_current`]).
#[derive(Debug)]
struct QuantPackedBytes {
    bytes: usize,
}

impl QuantPackedBytes {
    fn new(bytes: usize) -> Self {
        meter::add_quant_packed(bytes);
        Self { bytes }
    }
}

impl Drop for QuantPackedBytes {
    fn drop(&mut self) {
        meter::sub_quant_packed(self.bytes);
    }
}

/// A convolution with folded per-channel scale/bias and an optional fused
/// epilogue activation, executed from persistently packed GEMM weight panels.
#[derive(Debug)]
pub struct FusedConv {
    /// The folded f32 weights; `None` for a conv rebuilt from a serialized
    /// plan (artifact loading), which can never re-pack or re-quantize.
    weight: Option<Tensor>,
    c_out: usize,
    bias: Vec<f32>,
    spec: ConvSpec,
    act: EpilogueAct,
    plan: Option<ConvPlan>,
    resident: Option<PackedBytes>,
    qplan: Option<QuantConvPlan>,
    qresident: Option<QuantPackedBytes>,
}

impl FusedConv {
    /// Builds an uncompiled fused conv from raw weights. A missing bias
    /// becomes zeros (folding a BatchNorm in will overwrite it anyway).
    pub fn new(weight: Tensor, bias: Option<&Tensor>, spec: ConvSpec) -> Self {
        let c_out = weight.shape().n;
        let bias = bias.map(|b| b.data().to_vec()).unwrap_or_else(|| vec![0.0; c_out]);
        assert_eq!(bias.len(), c_out, "fused conv bias length mismatch");
        Self {
            weight: Some(weight),
            c_out,
            bias,
            spec,
            act: EpilogueAct::None,
            plan: None,
            resident: None,
            qplan: None,
            qresident: None,
        }
    }

    /// Rebuilds a *plan-only* fused conv from a deserialized [`ConvPlan`]
    /// (the zero-copy artifact path). The original weights are gone: the
    /// conv serves forwards from the plan but cannot be re-folded or
    /// quantized. Its panel bytes are deliberately **not** registered on the
    /// thread-local packed gauge — loaded models may be shared across
    /// worker threads behind an `Arc` and would unbalance per-thread
    /// accounting; the artifact layer reports their residency instead.
    pub fn from_plan(plan: ConvPlan) -> Self {
        Self {
            weight: None,
            c_out: plan.c_out(),
            bias: plan.bias().to_vec(),
            spec: *plan.spec(),
            act: plan.act(),
            plan: Some(plan),
            resident: None,
            qplan: None,
            qresident: None,
        }
    }

    /// Rebuilds a plan-only *quantized* fused conv from a deserialized
    /// [`QuantConvPlan`]; see [`FusedConv::from_plan`].
    pub fn from_qplan(qplan: QuantConvPlan) -> Self {
        Self {
            weight: None,
            c_out: qplan.c_out(),
            bias: qplan.bias().to_vec(),
            spec: *qplan.spec(),
            act: qplan.act(),
            plan: None,
            resident: None,
            qplan: Some(qplan),
            qresident: None,
        }
    }

    /// The compiled f32 plan, if present (serialization support).
    pub fn plan(&self) -> Option<&ConvPlan> {
        self.plan.as_ref()
    }

    /// The compiled int8 plan, if present (serialization support).
    pub fn qplan(&self) -> Option<&QuantConvPlan> {
        self.qplan.as_ref()
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Folds a following per-channel affine `y = scale * x + shift` into the
    /// weights and bias: `w' = scale * w`, `b' = scale * b + shift`.
    pub(crate) fn fold_affine(&mut self, scale: &[f32], shift: &[f32]) {
        assert!(self.plan.is_none() && self.qplan.is_none(), "cannot fold into a compiled conv");
        let c_out = self.c_out();
        assert_eq!(scale.len(), c_out, "affine scale length mismatch");
        assert_eq!(shift.len(), c_out, "affine shift length mismatch");
        let weight = self.weight.as_mut().expect("cannot fold into a plan-only conv");
        let per = weight.shape().numel() / c_out;
        for (o, chunk) in weight.data_mut().chunks_mut(per).enumerate() {
            for w in chunk.iter_mut() {
                *w *= scale[o];
            }
            self.bias[o] = self.bias[o] * scale[o] + shift[o];
        }
    }

    /// Attaches `act` as the epilogue activation if none is set yet.
    /// Returns `false` (leaving the conv unchanged) when an activation is
    /// already fused or the conv is compiled.
    pub(crate) fn try_set_act(&mut self, act: EpilogueAct) -> bool {
        if self.act == EpilogueAct::None
            && act != EpilogueAct::None
            && self.plan.is_none()
            && self.qplan.is_none()
        {
            self.act = act;
            true
        } else {
            false
        }
    }

    /// Packs the weight panels (idempotent). Counts one
    /// `"freeze.weights_packed"` event and registers the resident bytes.
    /// A no-op on a conv that was already [`FusedConv::quantize`]d — the
    /// int8 image supersedes the f32 panels.
    pub fn compile(&mut self) {
        if self.plan.is_none() && self.qplan.is_none() {
            let weight = self.weight.as_ref().expect("plan-only convs are always compiled");
            let plan = ConvPlan::new(weight, self.bias.clone(), self.spec, self.act);
            meter::count("freeze.weights_packed");
            self.resident = Some(PackedBytes::new(plan.packed_bytes()));
            self.plan = Some(plan);
        }
    }

    /// Lowers this conv to int8 (idempotent): quantizes the folded weights
    /// per output channel, packs the int8 panels, counts one
    /// `"freeze.weights_quantized"` event and registers the resident bytes
    /// on the quantized gauge. Any existing f32 packed panels are released
    /// — a quantized conv serves int8 only.
    pub fn quantize(&mut self) {
        if self.qplan.is_none() {
            // A plan-only conv has no raw weights left to re-quantize; it
            // keeps serving its existing f32 plan.
            let Some(weight) = self.weight.as_ref() else { return };
            let qplan = QuantConvPlan::new(weight, self.bias.clone(), self.spec, self.act);
            meter::count("freeze.weights_quantized");
            self.qresident = Some(QuantPackedBytes::new(qplan.packed_bytes()));
            self.qplan = Some(qplan);
            self.plan = None;
            self.resident = None;
        }
    }

    /// `true` once [`FusedConv::quantize`] has lowered this conv to int8.
    pub fn is_quantized(&self) -> bool {
        self.qplan.is_some()
    }

    /// Bytes of packed f32 panels (0 before [`FusedConv::compile`] and
    /// after [`FusedConv::quantize`]).
    pub fn packed_bytes(&self) -> usize {
        self.plan.as_ref().map(|p| p.packed_bytes()).unwrap_or(0)
    }

    /// Bytes of quantized packed panels (0 unless quantized).
    pub fn quant_packed_bytes(&self) -> usize {
        self.qplan.as_ref().map(|p| p.packed_bytes()).unwrap_or(0)
    }

    /// Output shape for input shape `x`.
    pub fn out_shape(&self, x: Shape) -> Shape {
        self.spec.out_shape(x, self.c_out())
    }

    /// Fused forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the conv was not compiled.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_carry(x, None).0
    }

    /// Fused forward with activation-absmax carrying: `in_absmax` is `x`'s
    /// exact absolute maximum if the producer already computed it (the int8
    /// path folds the scan into each write-back); the returned absmax is
    /// `Some` when this conv's kernel produced one for the next consumer.
    /// The f32 path ignores and yields no carry.
    ///
    /// # Panics
    ///
    /// Panics if the conv was not compiled.
    pub fn forward_carry(&self, x: &Tensor, in_absmax: Option<f32>) -> (Tensor, Option<f32>) {
        if let Some(q) = &self.qplan {
            let (y, m) = q.forward_quant(x, in_absmax);
            (y, Some(m))
        } else {
            let plan = self.plan.as_ref().expect("FusedConv::forward before compile()");
            (plan.forward(x), None)
        }
    }
}

/// Standalone activation kinds, for positions where the activation cannot
/// ride a GEMM epilogue (e.g. not preceded by a convolution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActKind {
    /// Rectified linear unit.
    Relu,
    /// Hard-swish.
    HardSwish,
    /// Hard-sigmoid.
    HardSigmoid,
    /// Logistic sigmoid (never fused; has no epilogue form).
    Sigmoid,
}

impl ActKind {
    fn epilogue(self) -> Option<EpilogueAct> {
        match self {
            Self::Relu => Some(EpilogueAct::Relu),
            Self::HardSwish => Some(EpilogueAct::HardSwish),
            Self::HardSigmoid => Some(EpilogueAct::HardSigmoid),
            Self::Sigmoid => None,
        }
    }

    fn apply(self, x: &Tensor) -> Tensor {
        // Formulas textually match the training-path layers in
        // `layers::act` and the GEMM `EpilogueAct`.
        match self {
            Self::Relu => x.map(|v| v.max(0.0)),
            Self::HardSwish => x.map(|v| v * (v + 3.0).clamp(0.0, 6.0) / 6.0),
            Self::HardSigmoid => x.map(|v| (v + 3.0).clamp(0.0, 6.0) / 6.0),
            Self::Sigmoid => x.map(|v| 1.0 / (1.0 + (-v).exp())),
        }
    }
}

/// The inference-only compiled form of a layer graph.
#[derive(Debug)]
pub enum FrozenLayer {
    /// No-op (frozen dropout / drop-path / empty chains).
    Identity,
    /// A fused convolution (weights pre-packed, bias + activation in the
    /// GEMM epilogue).
    Conv(Box<FusedConv>),
    /// Per-channel `y = scale * x + bias` (an unfused eval-mode BatchNorm).
    Affine {
        /// Per-channel multiplier, `[c]`.
        scale: Tensor,
        /// Per-channel offset, `[c]`.
        bias: Tensor,
    },
    /// A standalone elementwise activation.
    Act(ActKind),
    /// Dense layer `y = x W^T + b`.
    Linear {
        /// Weight matrix stored `[out, in]`.
        weight: Tensor,
        /// Bias vector `[out]`.
        bias: Tensor,
    },
    /// Integer-factor upsampling.
    Upsample {
        /// Scale factor.
        factor: usize,
        /// Interpolation mode.
        mode: ResizeMode,
    },
    /// SpaceToDepth rearrangement.
    SpaceToDepth {
        /// Block size.
        block: usize,
    },
    /// Global average pooling to `[n, c, 1, 1]`.
    GlobalAvgPool,
    /// Squeeze-excite gating with both 1x1 convs fused (ReLU and
    /// hard-sigmoid run in the GEMM epilogues).
    SqueezeExcite {
        /// Bottleneck reduction conv (fused ReLU).
        reduce: Box<FusedConv>,
        /// Expansion conv (fused hard-sigmoid gate).
        expand: Box<FusedConv>,
    },
    /// Identity skip around a branch: `y = x + branch(x)`.
    Residual(Box<FrozenLayer>),
    /// Layers applied in order.
    Seq(Vec<FrozenLayer>),
}

impl FrozenLayer {
    /// Builds a chain from already-frozen children, peephole-fusing as it
    /// goes: nested sequences are spliced flat, identities dropped, a
    /// [`FrozenLayer::Affine`] directly after a conv is folded into its
    /// weights, and a fusable activation after a conv becomes its epilogue.
    pub fn sequence(children: Vec<FrozenLayer>) -> FrozenLayer {
        let mut out: Vec<FrozenLayer> = Vec::new();
        for child in children {
            Self::push_fused(&mut out, child);
        }
        match out.len() {
            0 => FrozenLayer::Identity,
            1 => out.pop().expect("len checked"),
            _ => FrozenLayer::Seq(out),
        }
    }

    fn push_fused(out: &mut Vec<FrozenLayer>, child: FrozenLayer) {
        match child {
            FrozenLayer::Identity => {}
            FrozenLayer::Seq(inner) => {
                for sub in inner {
                    Self::push_fused(out, sub);
                }
            }
            FrozenLayer::Affine { scale, bias } => {
                if let Some(FrozenLayer::Conv(fc)) = out.last_mut() {
                    if fc.act == EpilogueAct::None {
                        fc.fold_affine(scale.data(), bias.data());
                        return;
                    }
                }
                out.push(FrozenLayer::Affine { scale, bias });
            }
            FrozenLayer::Act(kind) => {
                if let (Some(FrozenLayer::Conv(fc)), Some(epi)) = (out.last_mut(), kind.epilogue())
                {
                    if fc.try_set_act(epi) {
                        return;
                    }
                }
                out.push(FrozenLayer::Act(kind));
            }
            other => out.push(other),
        }
    }

    /// Packs every conv's weight panels (idempotent, recursive).
    pub fn compile(&mut self) {
        match self {
            FrozenLayer::Conv(fc) => fc.compile(),
            FrozenLayer::SqueezeExcite { reduce, expand } => {
                reduce.compile();
                expand.compile();
            }
            FrozenLayer::Residual(inner) => inner.compile(),
            FrozenLayer::Seq(children) => {
                for c in children {
                    c.compile();
                }
            }
            _ => {}
        }
    }

    /// Lowers every quantizable conv in this subtree to int8 (idempotent,
    /// recursive). Squeeze-excite gates stay f32: their GEMMs are `n x c`
    /// pointwise reductions of a handful of values — no throughput to win —
    /// and the multiplicative gate is the most quantization-sensitive spot
    /// in the network.
    pub fn quantize(&mut self) {
        match self {
            FrozenLayer::Conv(fc) => fc.quantize(),
            FrozenLayer::SqueezeExcite { .. } => {}
            FrozenLayer::Residual(inner) => inner.quantize(),
            FrozenLayer::Seq(children) => {
                for c in children {
                    c.quantize();
                }
            }
            _ => {}
        }
    }

    /// Total bytes of packed f32 weight panels in this subtree.
    pub fn packed_bytes(&self) -> usize {
        match self {
            FrozenLayer::Conv(fc) => fc.packed_bytes(),
            FrozenLayer::SqueezeExcite { reduce, expand } => {
                reduce.packed_bytes() + expand.packed_bytes()
            }
            FrozenLayer::Residual(inner) => inner.packed_bytes(),
            FrozenLayer::Seq(children) => children.iter().map(|c| c.packed_bytes()).sum(),
            _ => 0,
        }
    }

    /// Total bytes of quantized (int8) packed weight panels in this subtree.
    pub fn quant_packed_bytes(&self) -> usize {
        match self {
            FrozenLayer::Conv(fc) => fc.quant_packed_bytes(),
            FrozenLayer::SqueezeExcite { reduce, expand } => {
                reduce.quant_packed_bytes() + expand.quant_packed_bytes()
            }
            FrozenLayer::Residual(inner) => inner.quant_packed_bytes(),
            FrozenLayer::Seq(children) => children.iter().map(|c| c.quant_packed_bytes()).sum(),
            _ => 0,
        }
    }

    /// Fused forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the tree contains an uncompiled conv.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_carry(x, None).0
    }

    /// Fused forward with activation-absmax carrying (see
    /// [`FusedConv::forward_carry`]): quantized convs fold their output's
    /// absmax scan into the kernel write-back and hand it to the next
    /// quantized consumer through value-preserving layers, so chained int8
    /// layers never re-scan their inputs. Layers that change values (or
    /// whose outputs' absmax is not exactly the input's) drop the carry.
    ///
    /// # Panics
    ///
    /// Panics if the tree contains an uncompiled conv.
    pub fn forward_carry(&self, x: &Tensor, in_absmax: Option<f32>) -> (Tensor, Option<f32>) {
        match self {
            // Exact value-preserving rearrangements keep the carry alive.
            FrozenLayer::Identity => (x.clone(), in_absmax),
            FrozenLayer::SpaceToDepth { block } => (space_to_depth(x, *block), in_absmax),
            FrozenLayer::Conv(fc) => fc.forward_carry(x, in_absmax),
            FrozenLayer::Seq(children) => {
                let mut cur = x.clone();
                let mut carry = in_absmax;
                for c in children {
                    let (y, m) = c.forward_carry(&cur, carry);
                    cur = y;
                    carry = m;
                }
                (cur, carry)
            }
            FrozenLayer::Residual(inner) => {
                let (b, _) = inner.forward_carry(x, in_absmax);
                (&b + x, None)
            }
            other => (other.forward_uncarried(x), None),
        }
    }

    /// Forward arms that neither consume nor produce an absmax carry.
    fn forward_uncarried(&self, x: &Tensor) -> Tensor {
        match self {
            FrozenLayer::Identity
            | FrozenLayer::Conv(_)
            | FrozenLayer::Seq(_)
            | FrozenLayer::Residual(_)
            | FrozenLayer::SpaceToDepth { .. } => unreachable!("handled by forward_carry"),
            FrozenLayer::Affine { scale, bias } => {
                let mut y = x.clone();
                y.mul_channel(scale);
                y.add_channel_bias(bias);
                y
            }
            FrozenLayer::Act(kind) => kind.apply(x),
            FrozenLayer::Linear { weight, bias } => {
                let xs = x.shape();
                let (out_f, in_f) = (weight.shape().n, weight.shape().c);
                assert_eq!(
                    (xs.c, xs.h, xs.w),
                    (in_f, 1, 1),
                    "frozen linear expects [n, {in_f}, 1, 1], got {xs}"
                );
                let mut y = Tensor::zeros(Shape::new(xs.n, out_f, 1, 1));
                sgemm_a_bt(xs.n, in_f, out_f, 1.0, x.data(), weight.data(), 0.0, y.data_mut());
                for n in 0..xs.n {
                    for o in 0..out_f {
                        y.data_mut()[n * out_f + o] += bias.data()[o];
                    }
                }
                y
            }
            FrozenLayer::Upsample { factor, mode } => upsample(x, *factor, *mode),
            FrozenLayer::GlobalAvgPool => global_avg_pool(x),
            FrozenLayer::SqueezeExcite { reduce, expand } => {
                let s = global_avg_pool(x);
                let g = expand.forward(&reduce.forward(&s));
                let xs = x.shape();
                let (c, hw) = (xs.c, xs.hw());
                let mut y = x.clone();
                for n in 0..xs.n {
                    for ci in 0..c {
                        let gv = g.data()[n * c + ci];
                        let base = (n * c + ci) * hw;
                        for v in &mut y.data_mut()[base..base + hw] {
                            *v *= gv;
                        }
                    }
                }
                y
            }
        }
    }
}

/// Freezes a layer and compiles the result (packs all conv weight panels).
pub fn freeze_layer(layer: &dyn Layer) -> Result<FrozenLayer, FreezeError> {
    let mut frozen = layer.freeze()?;
    frozen.compile();
    Ok(frozen)
}

/// Freezes a layer and lowers it to int8: quantizes every quantizable conv,
/// then compiles whatever remains f32 (e.g. squeeze-excite gates).
pub fn freeze_layer_int8(layer: &dyn Layer) -> Result<FrozenLayer, FreezeError> {
    let mut frozen = layer.freeze()?;
    frozen.quantize();
    frozen.compile();
    Ok(frozen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{
        BatchNorm2d, Conv2d, DropPath, Dropout, HardSwish, MBConv, MBConvCfg, Relu, Residual,
        SqueezeExcite,
    };
    use crate::mode::CacheMode;
    use crate::module::{Identity, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trains the BN stats away from (0, 1) so folding is non-trivial.
    fn warm_bn(seq: &mut dyn Layer, x: &Tensor) {
        for _ in 0..3 {
            let _ = seq.forward(x, CacheMode::Stats);
            seq.clear_cache();
        }
    }

    #[test]
    fn conv_bn_act_chain_folds_to_one_fused_conv() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut seq = Sequential::new()
            .push(Box::new(Conv2d::pointwise(6, 10, false, &mut rng)))
            .push(Box::new(BatchNorm2d::new(10)))
            .push(Box::new(HardSwish::new()));
        let x = Tensor::randn(Shape::new(2, 6, 8, 8), 1.0, &mut rng);
        warm_bn(&mut seq, &x);

        let frozen = freeze_layer(&seq).unwrap();
        assert!(matches!(frozen, FrozenLayer::Conv(_)), "chain should fuse to one conv");
        assert!(frozen.packed_bytes() > 0);

        let want = seq.forward(&x, CacheMode::None);
        let got = frozen.forward(&x);
        let tol = 1e-5 * (1.0 + want.abs_max());
        assert!(got.max_abs_diff(&want) < tol, "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn dropout_and_droppath_freeze_to_identity() {
        assert!(matches!(Dropout::new(0.5, 1).freeze().unwrap(), FrozenLayer::Identity));
        assert!(matches!(DropPath::new(0.5, 1).freeze().unwrap(), FrozenLayer::Identity));
        let seq = Sequential::new().push(Box::new(Identity)).push(Box::new(Dropout::new(0.3, 2)));
        assert!(matches!(seq.freeze().unwrap(), FrozenLayer::Identity));
    }

    #[test]
    fn squeeze_excite_freezes_with_fused_gates() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut se = SqueezeExcite::new(8, 0.25, &mut rng);
        let x = Tensor::randn(Shape::new(2, 8, 5, 5), 1.0, &mut rng);
        let frozen = freeze_layer(&se).unwrap();
        let want = se.forward(&x, CacheMode::None);
        let got = frozen.forward(&x);
        let tol = 1e-5 * (1.0 + want.abs_max());
        assert!(got.max_abs_diff(&want) < tol, "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn mbconv_freezes_and_matches_eval() {
        let mut rng = StdRng::seed_from_u64(2);
        for cfg in [
            MBConvCfg::same(8, 3, 2.0).with_se(0.25),
            MBConvCfg::down(8, 12, 1, 2.0),
            MBConvCfg::up(8, 6, 1, 1.5),
        ] {
            let mut b = MBConv::new(cfg, &mut rng);
            let x = Tensor::randn(Shape::new(2, 8, 8, 8), 1.0, &mut rng);
            warm_bn(&mut b, &x);
            let frozen = freeze_layer(&b).unwrap();
            let want = b.forward(&x, CacheMode::None);
            let got = frozen.forward(&x);
            assert_eq!(got.shape(), want.shape());
            let tol = 1e-4 * (1.0 + want.abs_max());
            assert!(
                got.max_abs_diff(&want) < tol,
                "cfg {cfg:?}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn residual_freeze_keeps_the_skip() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::pointwise(4, 4, true, &mut rng);
        let mut res = Residual::new(Box::new(conv), 0.1, 7);
        let x = Tensor::randn(Shape::new(1, 4, 6, 6), 1.0, &mut rng);
        let frozen = freeze_layer(&res).unwrap();
        let want = res.forward(&x, CacheMode::None);
        let got = frozen.forward(&x);
        let tol = 1e-5 * (1.0 + want.abs_max());
        assert!(got.max_abs_diff(&want) < tol);
    }

    #[test]
    fn packing_is_metered_and_released_on_drop() {
        let mut rng = StdRng::seed_from_u64(4);
        let before_events = meter::event_count("freeze.weights_packed");
        let base = meter::packed_current();
        let seq = Sequential::new()
            .push(Box::new(Conv2d::pointwise(6, 10, false, &mut rng)))
            .push(Box::new(BatchNorm2d::new(10)));
        let frozen = freeze_layer(&seq).unwrap();
        assert_eq!(meter::event_count("freeze.weights_packed"), before_events + 1);
        assert_eq!(meter::packed_current(), base + frozen.packed_bytes());
        // Forward passes never re-pack.
        let x = Tensor::randn(Shape::new(1, 6, 4, 4), 1.0, &mut rng);
        let _ = frozen.forward(&x);
        let _ = frozen.forward(&x);
        assert_eq!(meter::event_count("freeze.weights_packed"), before_events + 1);
        drop(frozen);
        assert_eq!(meter::packed_current(), base);
    }

    #[test]
    fn compile_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(5);
        let conv = Conv2d::pointwise(4, 4, true, &mut rng);
        let before = meter::event_count("freeze.weights_packed");
        let mut frozen = conv.freeze().unwrap();
        assert_eq!(frozen.packed_bytes(), 0, "freeze alone must not pack");
        frozen.compile();
        frozen.compile();
        assert_eq!(meter::event_count("freeze.weights_packed"), before + 1);
    }

    #[test]
    fn quantized_chain_tracks_the_f32_frozen_forward() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seq = Sequential::new()
            .push(Box::new(Conv2d::pointwise(6, 12, false, &mut rng)))
            .push(Box::new(BatchNorm2d::new(12)))
            .push(Box::new(HardSwish::new()))
            .push(Box::new(Conv2d::pointwise(12, 8, true, &mut rng)))
            .push(Box::new(Relu::new()));
        let x = Tensor::randn(Shape::new(2, 6, 8, 8), 1.0, &mut rng);
        warm_bn(&mut seq, &x);

        let f32_frozen = freeze_layer(&seq).unwrap();
        let int8 = freeze_layer_int8(&seq).unwrap();
        assert_eq!(int8.packed_bytes(), 0, "fully quantized chain holds no f32 panels");
        assert!(int8.quant_packed_bytes() > 0);
        assert!(
            int8.quant_packed_bytes() < f32_frozen.packed_bytes(),
            "int8 image must be smaller than the f32 panels"
        );

        let want = f32_frozen.forward(&x);
        let got = int8.forward(&x);
        assert_eq!(got.shape(), want.shape());
        // Loose end-to-end bound: two chained quantized layers on a small
        // random model stay within a few percent of the f32 frozen output.
        let tol = 0.05 * (1.0 + want.abs_max());
        assert!(got.max_abs_diff(&want) < tol, "diff {}", got.max_abs_diff(&want));

        // The carry path (scan folded into the producer's write-back) must
        // be bit-identical to forwards that re-scan at every layer.
        let (carried, m) = int8.forward_carry(&x, Some(x.abs_max()));
        assert_eq!(carried, got);
        assert_eq!(m.expect("quantized chain ends in a conv"), got.abs_max());
    }

    #[test]
    fn quantization_is_metered_and_released_on_drop() {
        let mut rng = StdRng::seed_from_u64(7);
        let before_events = meter::event_count("freeze.weights_quantized");
        let base_q = meter::quant_packed_current();
        let base_f = meter::packed_current();
        let seq = Sequential::new()
            .push(Box::new(Conv2d::pointwise(6, 10, false, &mut rng)))
            .push(Box::new(BatchNorm2d::new(10)));
        let frozen = freeze_layer_int8(&seq).unwrap();
        assert_eq!(meter::event_count("freeze.weights_quantized"), before_events + 1);
        assert_eq!(meter::quant_packed_current(), base_q + frozen.quant_packed_bytes());
        assert_eq!(meter::packed_current(), base_f, "quantized conv registers no f32 panels");
        drop(frozen);
        assert_eq!(meter::quant_packed_current(), base_q);
    }

    #[test]
    fn quantize_after_compile_swaps_the_resident_image() {
        let mut rng = StdRng::seed_from_u64(8);
        let conv = Conv2d::pointwise(4, 6, true, &mut rng);
        let base_f = meter::packed_current();
        let base_q = meter::quant_packed_current();
        let mut frozen = conv.freeze().unwrap();
        frozen.compile();
        assert!(meter::packed_current() > base_f);
        frozen.quantize();
        assert_eq!(meter::packed_current(), base_f, "f32 panels released on quantize");
        assert_eq!(meter::quant_packed_current(), base_q + frozen.quant_packed_bytes());
        drop(frozen);
        assert_eq!(meter::quant_packed_current(), base_q);
    }

    #[test]
    fn squeeze_excite_stays_f32_under_quantization() {
        let mut rng = StdRng::seed_from_u64(9);
        let se = SqueezeExcite::new(8, 0.25, &mut rng);
        let mut frozen = se.freeze().unwrap();
        frozen.quantize();
        frozen.compile();
        assert_eq!(frozen.quant_packed_bytes(), 0);
        assert!(frozen.packed_bytes() > 0, "SE gates keep their f32 panels");
    }

    #[test]
    fn unsupported_layers_report_their_name() {
        #[derive(Debug)]
        struct Opaque;
        impl Layer for Opaque {
            fn forward(&mut self, x: &Tensor, _mode: CacheMode) -> Tensor {
                x.clone()
            }
            fn backward(&mut self, dy: &Tensor) -> Tensor {
                dy.clone()
            }
            fn name(&self) -> &str {
                "opaque"
            }
        }
        let err = Opaque.freeze().unwrap_err();
        assert_eq!(err, FreezeError::unsupported("layer", "opaque"));
        assert_eq!(err.to_string(), "layer `opaque` cannot be frozen");
        // A chain containing it fails the same way.
        let seq = Sequential::new().push(Box::new(Relu::new())).push(Box::new(Opaque));
        assert!(seq.freeze().is_err());
    }
}
