//! Learnable parameters: a value tensor paired with its gradient accumulator
//! and optimizer-relevant metadata.

use revbifpn_tensor::{Shape, Tensor};

/// A learnable parameter.
///
/// Gradients accumulate across backward calls; the optimizer reads them via
/// [`Param::grad`] and the caller zeroes them with [`Param::zero_grad`]
/// between steps.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether weight decay applies (convention: true for conv/linear
    /// weights, false for biases and normalization affine parameters).
    pub weight_decay: bool,
    /// Human-readable name for debugging and test assertions.
    pub name: &'static str,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor, weight_decay: bool, name: &'static str) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad, weight_decay, name }
    }

    /// Zero-initialized parameter (e.g. biases, zero-init BN gains).
    pub fn zeros(shape: Shape, weight_decay: bool, name: &'static str) -> Self {
        Self::new(Tensor::zeros(shape), weight_decay, name)
    }

    /// One-initialized parameter (e.g. BN gains).
    pub fn ones(shape: Shape, weight_decay: bool, name: &'static str) -> Self {
        Self::new(Tensor::ones(shape), weight_decay, name)
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.value.shape().numel()
    }

    /// Adds `g` into the gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, g: &Tensor) {
        self.grad.add_assign(g);
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// Counts scalar parameters reachable through `visit`.
pub fn count_scalars(visit: impl FnOnce(&mut dyn FnMut(&mut Param))) -> u64 {
    let mut total = 0u64;
    visit(&mut |p: &mut Param| total += p.numel() as u64);
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(Shape::vector(4)), true, "w");
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.numel(), 4);
        assert!(p.weight_decay);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::zeros(Shape::vector(2), false, "b");
        let g = Tensor::from_vec(Shape::vector(2), vec![1.0, 2.0]).unwrap();
        p.accumulate(&g);
        p.accumulate(&g);
        assert_eq!(p.grad.data(), &[2.0, 4.0]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
