//! Cache modes: the central mechanism that makes reversible recomputation
//! measurable.
//!
//! A conventional framework always caches whatever backward needs
//! ([`CacheMode::Full`]). A reversible network instead runs its forward pass
//! with [`CacheMode::Stats`] — only O(channels) statistics (BatchNorm batch
//! moments, dropout seeds) are kept — and re-runs each block with
//! [`CacheMode::Full`] *transiently* during the backward pass, after
//! reconstructing the block's input from its output.

/// How much state a layer may retain during a forward pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheMode {
    /// Inference: no caching, BatchNorm uses running statistics.
    None,
    /// Reversible-training forward: cache only O(c) statistics and RNG seeds
    /// so a later recomputation reproduces this pass bit-for-bit. BatchNorm
    /// uses (and stores) batch statistics and updates running statistics.
    Stats,
    /// Conventional training forward (or the transient recomputation inside
    /// a reversible backward): cache everything backward needs.
    Full,
}

impl CacheMode {
    /// `true` for the two training modes ([`CacheMode::Stats`] / [`CacheMode::Full`]).
    pub fn is_training(self) -> bool {
        !matches!(self, CacheMode::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_predicate() {
        assert!(!CacheMode::None.is_training());
        assert!(CacheMode::Stats.is_training());
        assert!(CacheMode::Full.is_training());
    }
}
