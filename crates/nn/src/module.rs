//! The single-input [`Layer`] trait and generic helpers over it.

use crate::freeze::{FreezeError, FrozenLayer};
use crate::mode::CacheMode;
use crate::param::Param;
use revbifpn_tensor::{Shape, Tensor};

/// A differentiable single-input, single-output network module.
///
/// Layers own their parameters and their backward-pass caches. The caller
/// controls how much is cached through [`CacheMode`]:
///
/// * `None` — inference; `backward` must not be called afterwards.
/// * `Stats` — cache only O(c) statistics/seeds so that a later `Full`
///   forward on the *same input values* reproduces this pass exactly.
/// * `Full` — cache what `backward` needs.
///
/// `backward` consumes the `Full` cache, accumulates parameter gradients,
/// and returns the gradient w.r.t. the input.
///
/// `Send` is a supertrait so reversible modules can schedule independent
/// sub-layer reconstruction/backward calls on the worker pool and the
/// sharded trainer can run whole model replicas on worker threads. Layers
/// hold only owned tensors and plain state, so this costs implementations
/// nothing.
pub trait Layer: std::fmt::Debug + Send {
    /// Forward pass.
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor;

    /// Backward pass; consumes the cache from the last `Full` forward.
    ///
    /// # Panics
    ///
    /// Panics if no `Full`-mode forward preceded this call.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Output shape for an input of shape `x`.
    fn out_shape(&self, x: Shape) -> Shape {
        x
    }

    /// Multiply-accumulate count of one forward pass on input shape `x`.
    fn macs(&self, x: Shape) -> u64 {
        let _ = x;
        0
    }

    /// Visits every parameter (used by optimizers, EMA, counting).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        let _ = f;
    }

    /// Visits every non-parameter persistent buffer (e.g. BatchNorm running
    /// statistics) in a stable order. Checkpointing uses this so a resumed
    /// run restores inference-relevant state bit-exactly, not just the
    /// trainable parameters.
    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        let _ = f;
    }

    /// Visits every [`crate::layers::BatchNorm2d`] in the module tree, in a
    /// stable order that is identical across structurally equal models. The
    /// sharded training step relies on this to switch model replicas into
    /// decoupled-statistics mode and to pair up per-sample batch moments
    /// across replicas by position.
    fn visit_bn(&mut self, f: &mut dyn FnMut(&mut crate::layers::BatchNorm2d)) {
        let _ = f;
    }

    /// Drops all cached state (both `Stats` and `Full` caches).
    fn clear_cache(&mut self) {}

    /// Analytic prediction of the bytes this layer caches during a forward
    /// pass in `mode` on input shape `x`. Cross-checked against the meter in
    /// tests; used to extrapolate paper-scale memory without allocating.
    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        let _ = (x, mode);
        0
    }

    /// Short human-readable identifier.
    fn name(&self) -> &str {
        "layer"
    }

    /// This layer's inference-only frozen form (see [`crate::freeze`]).
    ///
    /// The returned tree is *uncompiled*: call [`FrozenLayer::compile`] (or
    /// use [`crate::freeze::freeze_layer`]) to pack the conv weights before
    /// running it. Layers without a fused equivalent return
    /// [`FreezeError::Unsupported`].
    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Err(FreezeError::unsupported("layer", self.name()))
    }
}

/// Counts scalar parameters of a layer.
pub fn param_count(layer: &mut dyn Layer) -> u64 {
    let mut total = 0u64;
    layer.visit_params(&mut |p| total += p.numel() as u64);
    total
}

/// Zeroes all parameter gradients of a layer.
pub fn zero_grads(layer: &mut dyn Layer) {
    layer.visit_params(&mut |p| p.zero_grad());
}

/// Sum of squared gradient elements (for grad-norm diagnostics).
pub fn grad_sq_norm(layer: &mut dyn Layer) -> f64 {
    let mut total = 0.0;
    layer.visit_params(&mut |p| total += p.grad.sq_sum());
    total
}

/// The identity layer (useful as a placeholder, e.g. an absent expansion
/// stage in MBConv with expansion ratio 1).
#[derive(Debug, Default)]
pub struct Identity;

impl Layer for Identity {
    fn forward(&mut self, x: &Tensor, _mode: CacheMode) -> Tensor {
        x.clone()
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        dy.clone()
    }

    fn name(&self) -> &str {
        "identity"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Identity)
    }
}

/// A chain of layers applied in order.
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty chain (acts as identity).
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Builds from parts.
    pub fn from_layers(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the chained layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, mode);
        }
        cur
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut cur = dy.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    fn out_shape(&self, x: Shape) -> Shape {
        self.layers.iter().fold(x, |s, l| l.out_shape(s))
    }

    fn macs(&self, x: Shape) -> u64 {
        let mut s = x;
        let mut total = 0;
        for l in &self.layers {
            total += l.macs(s);
            s = l.out_shape(s);
        }
        total
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for l in &mut self.layers {
            l.visit_buffers(f);
        }
    }

    fn visit_bn(&mut self, f: &mut dyn FnMut(&mut crate::layers::BatchNorm2d)) {
        for l in &mut self.layers {
            l.visit_bn(f);
        }
    }

    fn clear_cache(&mut self) {
        for l in &mut self.layers {
            l.clear_cache();
        }
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        let mut s = x;
        let mut total = 0;
        for l in &self.layers {
            total += l.cache_bytes(s, mode);
            s = l.out_shape(s);
        }
        total
    }

    fn name(&self) -> &str {
        "sequential"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        let children = self.layers.iter().map(|l| l.freeze()).collect::<Result<Vec<_>, _>>()?;
        Ok(FrozenLayer::sequence(children))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let mut id = Identity;
        let x = Tensor::ones(Shape::new(1, 2, 2, 2));
        let y = id.forward(&x, CacheMode::Full);
        assert_eq!(y, x);
        let dx = id.backward(&y);
        assert_eq!(dx, x);
        assert_eq!(param_count(&mut id), 0);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::new();
        assert!(s.is_empty());
        let x = Tensor::ones(Shape::new(1, 1, 1, 1));
        assert_eq!(s.forward(&x, CacheMode::None), x);
        assert_eq!(s.out_shape(x.shape()), x.shape());
        assert_eq!(s.macs(x.shape()), 0);
    }

    #[test]
    fn sequential_chains() {
        let s = Sequential::new().push(Box::new(Identity)).push(Box::new(Identity));
        assert_eq!(s.len(), 2);
    }
}
