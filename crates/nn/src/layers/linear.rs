//! Dense (fully connected) layer on `[n, c, 1, 1]` feature vectors.

use crate::freeze::{FreezeError, FrozenLayer};
use crate::init::kaiming_linear;
use crate::meter::Cached;
use crate::mode::CacheMode;
use crate::module::Layer;
use crate::param::Param;
use rand::Rng;
use revbifpn_tensor::{par, sgemm_a_bt, Shape, Tensor};

/// `y = x W^T + b` with `x: [n, in, 1, 1]`, `W: [out, in]`, `y: [n, out, 1, 1]`.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cache_x: Cached<Tensor>,
}

impl Linear {
    /// Kaiming-uniform initialized dense layer.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self {
            weight: Param::new(kaiming_linear(out_features, in_features, rng), true, "linear.weight"),
            bias: Param::zeros(Shape::vector(out_features), false, "linear.bias"),
            in_features,
            out_features,
            cache_x: Cached::empty(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        let xs = x.shape();
        assert_eq!(
            (xs.c, xs.h, xs.w),
            (self.in_features, 1, 1),
            "Linear expects [n, {}, 1, 1], got {xs}",
            self.in_features
        );
        let mut y = Tensor::zeros(Shape::new(xs.n, self.out_features, 1, 1));
        // y [n, out] = x [n, in] @ W^T   (W stored [out, in])
        sgemm_a_bt(xs.n, self.in_features, self.out_features, 1.0, x.data(), self.weight.value.data(), 0.0, y.data_mut());
        for n in 0..xs.n {
            for o in 0..self.out_features {
                y.data_mut()[n * self.out_features + o] += self.bias.value.data()[o];
            }
        }
        if mode == CacheMode::Full {
            self.cache_x.put_tensor(x.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("Linear::backward without Full forward");
        let n = x.shape().n;
        let (of, inf) = (self.out_features, self.in_features);
        // dW [out, in] = sum_n dy_n [out, 1] @ x_n [1, in]. A single GEMM
        // contracting over the batch would tie the f32 association to the
        // batch extent; per-sample outer products merged with the pairwise
        // sample tree keep dW bitwise invariant to micro-batch shard
        // boundaries (same contract as the conv weight gradients).
        let mut dw = Tensor::zeros(self.weight.value.shape());
        let dyd = dy.data();
        let xd = x.data();
        par::tree_reduce_with_slabs(n, of * inf, dw.data_mut(), |i, slab| {
            sgemm_a_bt(of, 1, inf, 1.0, &dyd[i * of..(i + 1) * of], &xd[i * inf..(i + 1) * inf], 1.0, slab);
        });
        self.weight.accumulate(&dw);
        // db: per-sample rows of dy reduced with the same tree.
        let mut db = Tensor::zeros(Shape::vector(of));
        par::tree_reduce_with_slabs(n, of, db.data_mut(), |i, slab| {
            slab.copy_from_slice(&dyd[i * of..(i + 1) * of]);
        });
        self.bias.accumulate(&db);
        // dx [n, in] = dy [n, out] @ W [out, in]
        let mut dx = Tensor::zeros(x.shape());
        revbifpn_tensor::sgemm(n, of, inf, 1.0, dyd, self.weight.value.data(), 0.0, dx.data_mut());
        dx
    }

    fn out_shape(&self, x: Shape) -> Shape {
        Shape::new(x.n, self.out_features, 1, 1)
    }

    fn macs(&self, x: Shape) -> u64 {
        (x.n * self.in_features * self.out_features) as u64
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn clear_cache(&mut self) {
        self.cache_x.clear();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        if mode == CacheMode::Full {
            x.bytes() as u64
        } else {
            0
        }
    }

    fn name(&self) -> &str {
        "linear"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Linear { weight: self.weight.value.clone(), bias: self.bias.value.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use crate::module::param_count;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_params_macs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(8, 3, &mut rng);
        assert_eq!(l.out_shape(Shape::new(5, 8, 1, 1)), Shape::new(5, 3, 1, 1));
        assert_eq!(param_count(&mut l), 8 * 3 + 3);
        assert_eq!(l.macs(Shape::new(5, 8, 1, 1)), 5 * 8 * 3);
    }

    #[test]
    fn known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(2, 1, &mut rng);
        l.weight.value = Tensor::from_vec(Shape::new(1, 2, 1, 1), vec![2.0, -1.0]).unwrap();
        l.bias.value = Tensor::from_vec(Shape::vector(1), vec![0.5]).unwrap();
        let x = Tensor::from_vec(Shape::new(1, 2, 1, 1), vec![3.0, 4.0]).unwrap();
        let y = l.forward(&x, CacheMode::None);
        assert_eq!(y.data(), &[2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn gradients_pass_finite_diff() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(6, 4, &mut rng);
        let x = Tensor::randn(Shape::new(3, 6, 1, 1), 1.0, &mut rng);
        check_layer(&mut l, &x, 2e-2);
    }

    #[test]
    fn weight_grads_are_shard_invariant() {
        // Per-shard backward + pairwise-tree merge must reproduce the
        // full-batch gradients bit for bit (dW used to be one GEMM
        // contracting over the batch, whose f32 association broke this).
        let mut rng = StdRng::seed_from_u64(3);
        let (n, inf, of) = (8usize, 6usize, 5usize);
        let mut l = Linear::new(inf, of, &mut rng);
        let x = Tensor::randn(Shape::new(n, inf, 1, 1), 1.0, &mut rng);
        let dy = Tensor::randn(Shape::new(n, of, 1, 1), 1.0, &mut rng);
        let _ = l.forward(&x, CacheMode::Full);
        let _ = l.backward(&dy);
        let dw_full = l.weight.grad.clone();
        let db_full = l.bias.grad.clone();
        for shards in [2usize, 4] {
            let m = n / shards;
            let mut dws: Vec<Vec<f32>> = Vec::new();
            let mut dbs: Vec<Vec<f32>> = Vec::new();
            for s in 0..shards {
                l.weight.zero_grad();
                l.bias.zero_grad();
                let xs = Tensor::from_vec(
                    Shape::new(m, inf, 1, 1),
                    x.data()[s * m * inf..(s + 1) * m * inf].to_vec(),
                )
                .unwrap();
                let dys = Tensor::from_vec(
                    Shape::new(m, of, 1, 1),
                    dy.data()[s * m * of..(s + 1) * m * of].to_vec(),
                )
                .unwrap();
                let _ = l.forward(&xs, CacheMode::Full);
                let _ = l.backward(&dys);
                dws.push(l.weight.grad.data().to_vec());
                dbs.push(l.bias.grad.data().to_vec());
            }
            par::tree_reduce_serial(shards, |d, s| {
                let (head, tail) = dws.split_at_mut(s);
                for (a, b) in head[d].iter_mut().zip(&tail[0]) {
                    *a += *b;
                }
                let (head, tail) = dbs.split_at_mut(s);
                for (a, b) in head[d].iter_mut().zip(&tail[0]) {
                    *a += *b;
                }
            });
            for (i, (a, b)) in dws[0].iter().zip(dw_full.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "dW shards={shards} idx {i}");
            }
            for (i, (a, b)) in dbs[0].iter().zip(db_full.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "db shards={shards} idx {i}");
            }
        }
    }
}
