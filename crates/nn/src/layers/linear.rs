//! Dense (fully connected) layer on `[n, c, 1, 1]` feature vectors.

use crate::freeze::{FreezeError, FrozenLayer};
use crate::init::kaiming_linear;
use crate::meter::Cached;
use crate::mode::CacheMode;
use crate::module::Layer;
use crate::param::Param;
use rand::Rng;
use revbifpn_tensor::{sgemm_a_bt, sgemm_at_b, Shape, Tensor};

/// `y = x W^T + b` with `x: [n, in, 1, 1]`, `W: [out, in]`, `y: [n, out, 1, 1]`.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cache_x: Cached<Tensor>,
}

impl Linear {
    /// Kaiming-uniform initialized dense layer.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self {
            weight: Param::new(kaiming_linear(out_features, in_features, rng), true, "linear.weight"),
            bias: Param::zeros(Shape::vector(out_features), false, "linear.bias"),
            in_features,
            out_features,
            cache_x: Cached::empty(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        let xs = x.shape();
        assert_eq!(
            (xs.c, xs.h, xs.w),
            (self.in_features, 1, 1),
            "Linear expects [n, {}, 1, 1], got {xs}",
            self.in_features
        );
        let mut y = Tensor::zeros(Shape::new(xs.n, self.out_features, 1, 1));
        // y [n, out] = x [n, in] @ W^T   (W stored [out, in])
        sgemm_a_bt(xs.n, self.in_features, self.out_features, 1.0, x.data(), self.weight.value.data(), 0.0, y.data_mut());
        for n in 0..xs.n {
            for o in 0..self.out_features {
                y.data_mut()[n * self.out_features + o] += self.bias.value.data()[o];
            }
        }
        if mode == CacheMode::Full {
            self.cache_x.put_tensor(x.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("Linear::backward without Full forward");
        let n = x.shape().n;
        // dW [out, in] = dy^T [out, n] @ x [n, in]
        let mut dw = Tensor::zeros(self.weight.value.shape());
        sgemm_at_b(self.out_features, n, self.in_features, 1.0, dy.data(), x.data(), 0.0, dw.data_mut());
        self.weight.accumulate(&dw);
        // db = column sums of dy.
        let mut db = Tensor::zeros(Shape::vector(self.out_features));
        for i in 0..n {
            for o in 0..self.out_features {
                db.data_mut()[o] += dy.data()[i * self.out_features + o];
            }
        }
        self.bias.accumulate(&db);
        // dx [n, in] = dy [n, out] @ W [out, in]
        let mut dx = Tensor::zeros(x.shape());
        revbifpn_tensor::sgemm(n, self.out_features, self.in_features, 1.0, dy.data(), self.weight.value.data(), 0.0, dx.data_mut());
        dx
    }

    fn out_shape(&self, x: Shape) -> Shape {
        Shape::new(x.n, self.out_features, 1, 1)
    }

    fn macs(&self, x: Shape) -> u64 {
        (x.n * self.in_features * self.out_features) as u64
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn clear_cache(&mut self) {
        self.cache_x.clear();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        if mode == CacheMode::Full {
            x.bytes() as u64
        } else {
            0
        }
    }

    fn name(&self) -> &str {
        "linear"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Linear { weight: self.weight.value.clone(), bias: self.bias.value.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use crate::module::param_count;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_params_macs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(8, 3, &mut rng);
        assert_eq!(l.out_shape(Shape::new(5, 8, 1, 1)), Shape::new(5, 3, 1, 1));
        assert_eq!(param_count(&mut l), 8 * 3 + 3);
        assert_eq!(l.macs(Shape::new(5, 8, 1, 1)), 5 * 8 * 3);
    }

    #[test]
    fn known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(2, 1, &mut rng);
        l.weight.value = Tensor::from_vec(Shape::new(1, 2, 1, 1), vec![2.0, -1.0]).unwrap();
        l.bias.value = Tensor::from_vec(Shape::vector(1), vec![0.5]).unwrap();
        let x = Tensor::from_vec(Shape::new(1, 2, 1, 1), vec![3.0, 4.0]).unwrap();
        let y = l.forward(&x, CacheMode::None);
        assert_eq!(y.data(), &[2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn gradients_pass_finite_diff() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(6, 4, &mut rng);
        let x = Tensor::randn(Shape::new(3, 6, 1, 1), 1.0, &mut rng);
        check_layer(&mut l, &x, 2e-2);
    }
}
