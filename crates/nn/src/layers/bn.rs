//! BatchNorm2d with the statistics-caching behaviour reversible
//! recomputation requires.
//!
//! During a reversible forward pass (`CacheMode::Stats`) the layer caches its
//! *batch statistics* — O(c) floats. When the backward pass later re-runs the
//! block in `CacheMode::Full` on the reconstructed input, the frozen
//! statistics are reused (and the running statistics are **not** updated a
//! second time), so recomputation reproduces the original forward pass
//! exactly and the resulting gradients equal conventional training's
//! bit-for-bit (up to f32 addition rounding in the couplings).

use crate::freeze::{FreezeError, FrozenLayer};
use crate::meter::Cached;
use crate::mode::CacheMode;
use crate::module::Layer;
use crate::param::Param;
use revbifpn_tensor::{Shape, Tensor};

/// Per-channel batch normalization over `(n, h, w)`.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    c: usize,
    /// Batch statistics frozen by a `Stats`-mode pass, reused by the next
    /// `Full`-mode pass (the reversible recomputation).
    frozen: Cached<(Tensor, Tensor)>,
    /// Backward cache: (xhat, inv_std).
    saved: Cached<(Tensor, Tensor)>,
}

impl BatchNorm2d {
    /// Creates a BatchNorm with `gamma = 1, beta = 0` (paper defaults:
    /// momentum 0.9, epsilon 1e-3).
    pub fn new(c: usize) -> Self {
        Self {
            gamma: Param::ones(Shape::vector(c), false, "bn.gamma"),
            beta: Param::zeros(Shape::vector(c), false, "bn.beta"),
            running_mean: Tensor::zeros(Shape::vector(c)),
            running_var: Tensor::ones(Shape::vector(c)),
            momentum: 0.9,
            eps: 1e-3,
            c,
            frozen: Cached::empty(),
            saved: Cached::empty(),
        }
    }

    /// Zero-initializes `gamma`, used for the normalization layer before a
    /// residual add ("to promote stability", Kingma & Dhariwal 2018).
    pub fn zero_init(mut self) -> Self {
        self.gamma.value.fill_zero();
        self
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Read access to the running mean (tests).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Read access to the running variance (tests).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    fn batch_stats(&self, x: &Tensor) -> (Tensor, Tensor) {
        let xs = x.shape();
        let m = (xs.n * xs.hw()) as f32;
        let mut mean = Tensor::zeros(Shape::vector(self.c));
        let mut var = Tensor::zeros(Shape::vector(self.c));
        let hw = xs.hw();
        for c in 0..self.c {
            let mut s = 0.0f64;
            for n in 0..xs.n {
                let base = (n * self.c + c) * hw;
                s += x.data()[base..base + hw].iter().map(|&v| v as f64).sum::<f64>();
            }
            mean.data_mut()[c] = (s / m as f64) as f32;
        }
        for c in 0..self.c {
            let mu = mean.data()[c] as f64;
            let mut s = 0.0f64;
            for n in 0..xs.n {
                let base = (n * self.c + c) * hw;
                s += x.data()[base..base + hw].iter().map(|&v| (v as f64 - mu) * (v as f64 - mu)).sum::<f64>();
            }
            var.data_mut()[c] = (s / m as f64) as f32;
        }
        (mean, var)
    }

    fn normalize(&self, x: &Tensor, mean: &Tensor, var: &Tensor) -> (Tensor, Tensor) {
        // Returns (y, xhat) where y = gamma * xhat + beta.
        let xs = x.shape();
        let hw = xs.hw();
        let mut xhat = x.clone();
        let mut inv_std = Tensor::zeros(Shape::vector(self.c));
        for c in 0..self.c {
            inv_std.data_mut()[c] = 1.0 / (var.data()[c] + self.eps).sqrt();
        }
        for n in 0..xs.n {
            for c in 0..self.c {
                let mu = mean.data()[c];
                let is = inv_std.data()[c];
                let base = (n * self.c + c) * hw;
                for v in &mut xhat.data_mut()[base..base + hw] {
                    *v = (*v - mu) * is;
                }
            }
        }
        let mut y = xhat.clone();
        y.mul_channel(&self.gamma.value);
        y.add_channel_bias(&self.beta.value);
        (y, xhat)
    }

    fn update_running(&mut self, mean: &Tensor, var: &Tensor) {
        let mom = self.momentum;
        for c in 0..self.c {
            self.running_mean.data_mut()[c] = mom * self.running_mean.data()[c] + (1.0 - mom) * mean.data()[c];
            self.running_var.data_mut()[c] = mom * self.running_var.data()[c] + (1.0 - mom) * var.data()[c];
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        assert_eq!(x.shape().c, self.c, "BatchNorm channel mismatch");
        match mode {
            CacheMode::None => {
                let (y, _) = self.normalize(x, &self.running_mean.clone(), &self.running_var.clone());
                y
            }
            CacheMode::Stats => {
                let (mean, var) = self.batch_stats(x);
                self.update_running(&mean, &var);
                let (y, _) = self.normalize(x, &mean, &var);
                let bytes = mean.bytes() + var.bytes();
                self.frozen.put((mean, var), bytes);
                y
            }
            CacheMode::Full => {
                // Reuse frozen stats if the reversible engine recorded them;
                // in that case this is a recomputation, so do not update the
                // running statistics again.
                let (mean, var) = match self.frozen.take() {
                    Some((m, v)) => (m, v),
                    None => {
                        let (m, v) = self.batch_stats(x);
                        self.update_running(&m, &v);
                        (m, v)
                    }
                };
                let (y, xhat) = self.normalize(x, &mean, &var);
                let mut inv_std = Tensor::zeros(Shape::vector(self.c));
                for c in 0..self.c {
                    inv_std.data_mut()[c] = 1.0 / (var.data()[c] + self.eps).sqrt();
                }
                let bytes = xhat.bytes() + inv_std.bytes();
                self.saved.put((xhat, inv_std), bytes);
                y
            }
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (xhat, inv_std) = self.saved.take().expect("BatchNorm2d::backward without Full forward");
        let xs = dy.shape();
        let hw = xs.hw();
        let m = (xs.n * hw) as f32;

        // Per-channel reductions.
        let mut sum_dy = vec![0.0f64; self.c];
        let mut sum_dy_xhat = vec![0.0f64; self.c];
        for n in 0..xs.n {
            for c in 0..self.c {
                let base = (n * self.c + c) * hw;
                for i in 0..hw {
                    let d = dy.data()[base + i] as f64;
                    sum_dy[c] += d;
                    sum_dy_xhat[c] += d * xhat.data()[base + i] as f64;
                }
            }
        }
        // Parameter gradients.
        let mut dgamma = Tensor::zeros(Shape::vector(self.c));
        let mut dbeta = Tensor::zeros(Shape::vector(self.c));
        for c in 0..self.c {
            dgamma.data_mut()[c] = sum_dy_xhat[c] as f32;
            dbeta.data_mut()[c] = sum_dy[c] as f32;
        }
        self.gamma.accumulate(&dgamma);
        self.beta.accumulate(&dbeta);

        // Input gradient:
        // dx = gamma * inv_std / m * (m*dy - sum(dy) - xhat * sum(dy*xhat))
        let mut dx = Tensor::zeros(xs);
        for n in 0..xs.n {
            for c in 0..self.c {
                let g = self.gamma.value.data()[c];
                let is = inv_std.data()[c];
                let k = g * is / m;
                let s1 = sum_dy[c] as f32;
                let s2 = sum_dy_xhat[c] as f32;
                let base = (n * self.c + c) * hw;
                for i in 0..hw {
                    let d = dy.data()[base + i];
                    let xh = xhat.data()[base + i];
                    dx.data_mut()[base + i] = k * (m * d - s1 - xh * s2);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn clear_cache(&mut self) {
        self.frozen.clear();
        self.saved.clear();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        match mode {
            CacheMode::None => 0,
            CacheMode::Stats => 2 * Shape::vector(self.c).bytes() as u64,
            CacheMode::Full => (x.bytes() + Shape::vector(self.c).bytes()) as u64,
        }
    }

    fn name(&self) -> &str {
        "batchnorm2d"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        // Eval-mode BN is the per-channel affine
        //   y = gamma * (x - mean) / sqrt(var + eps) + beta
        //     = scale * x + bias
        // with scale = gamma / sqrt(running_var + eps) and
        // bias = beta - running_mean * scale.
        let mut scale = Tensor::zeros(Shape::vector(self.c));
        let mut bias = Tensor::zeros(Shape::vector(self.c));
        for c in 0..self.c {
            let s = self.gamma.value.data()[c] / (self.running_var.data()[c] + self.eps).sqrt();
            scale.data_mut()[c] = s;
            bias.data_mut()[c] = self.beta.value.data()[c] - self.running_mean.data()[c] * s;
        }
        Ok(FrozenLayer::Affine { scale, bias })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_training_mode;
    use crate::meter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_batch_to_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(Shape::new(4, 3, 8, 8), 3.0, &mut rng);
        let y = bn.forward(&x, CacheMode::Full);
        // Per-channel moments of y should be ~ (0, 1).
        let ys = y.shape();
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..ys.n {
                for h in 0..ys.h {
                    for w in 0..ys.w {
                        vals.push(y.at(n, c, h, w) as f64);
                    }
                }
            }
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            let v = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / vals.len() as f64;
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
        bn.clear_cache();
    }

    #[test]
    fn gradients_pass_finite_diff() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(2);
        // Give gamma/beta non-trivial values so the test is not degenerate.
        bn.gamma.value = Tensor::from_vec(Shape::vector(2), vec![1.3, 0.7]).unwrap();
        bn.beta.value = Tensor::from_vec(Shape::vector(2), vec![0.2, -0.4]).unwrap();
        let x = Tensor::randn(Shape::new(3, 2, 4, 4), 1.0, &mut rng);
        check_layer_training_mode(&mut bn, &x, 3e-2);
    }

    #[test]
    fn frozen_stats_reused_on_recompute() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(Shape::new(2, 2, 4, 4), 1.0, &mut rng);

        let y_stats = bn.forward(&x, CacheMode::Stats);
        let rm_after_stats = bn.running_mean().clone();
        // Recompute in Full mode: output identical, running stats untouched.
        let y_full = bn.forward(&x, CacheMode::Full);
        assert!(y_stats.max_abs_diff(&y_full) < 1e-7);
        assert_eq!(bn.running_mean(), &rm_after_stats);
        bn.clear_cache();
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(Shape::new(2, 2, 4, 4), 1.0, &mut rng);
        // Without training, running stats are (0, 1): eval output == gamma*x+beta == x.
        let y = bn.forward(&x, CacheMode::None);
        // eps makes it slightly different from x; check close.
        assert!(y.max_abs_diff(&x) < 2e-3);
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::randn(Shape::new(8, 1, 8, 8), 1.0, &mut rng).map(|v| v * 2.0 + 5.0);
        for _ in 0..60 {
            let _ = bn.forward(&x, CacheMode::Stats);
            bn.clear_cache();
        }
        assert!((bn.running_mean().data()[0] - 5.0).abs() < 0.1);
        assert!((bn.running_var().data()[0] - 4.0).abs() < 0.3);
    }

    #[test]
    fn zero_init_outputs_beta() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut bn = BatchNorm2d::new(2).zero_init();
        let x = Tensor::randn(Shape::new(2, 2, 3, 3), 1.0, &mut rng);
        let y = bn.forward(&x, CacheMode::Full);
        assert!(y.abs_max() < 1e-6);
        bn.clear_cache();
    }

    #[test]
    fn meter_accounting_stats_vs_full() {
        let mut rng = StdRng::seed_from_u64(6);
        meter::reset();
        let mut bn = BatchNorm2d::new(4);
        let x = Tensor::randn(Shape::new(2, 4, 8, 8), 1.0, &mut rng);
        let _ = bn.forward(&x, CacheMode::Stats);
        assert_eq!(meter::current() as u64, bn.cache_bytes(x.shape(), CacheMode::Stats));
        bn.clear_cache();
        let _ = bn.forward(&x, CacheMode::Full);
        assert_eq!(meter::current() as u64, bn.cache_bytes(x.shape(), CacheMode::Full));
        bn.clear_cache();
        assert_eq!(meter::current(), 0);
    }
}
