//! BatchNorm2d with the statistics-caching behaviour reversible
//! recomputation requires.
//!
//! During a reversible forward pass (`CacheMode::Stats`) the layer caches its
//! *batch statistics* — O(c) floats. When the backward pass later re-runs the
//! block in `CacheMode::Full` on the reconstructed input, the frozen
//! statistics are reused (and the running statistics are **not** updated a
//! second time), so recomputation reproduces the original forward pass
//! exactly and the resulting gradients equal conventional training's
//! bit-for-bit (up to f32 addition rounding in the couplings).

use crate::freeze::{FreezeError, FrozenLayer};
use crate::meter::Cached;
use crate::mode::CacheMode;
use crate::module::Layer;
use crate::param::Param;
use revbifpn_tensor::{par, Shape, Tensor};

/// Per-sample channel moments recorded by a decoupled-mode training forward
/// pass (see [`BatchNorm2d::set_decoupled`]).
///
/// `sum[n * c + ci]` / `sqsum[n * c + ci]` hold sample `n`'s f64 sum and
/// sum of squares of channel `ci` over the `hw` spatial positions. Each
/// entry depends only on its own sample, so a micro-batch shard records
/// bitwise the same moments as the full batch would for those samples; the
/// sharded trainer concatenates shard moments in sample order and reduces
/// them with the pairwise sample tree into global batch statistics.
#[derive(Debug, Clone)]
pub struct BnMoments {
    /// Number of samples in the recording pass.
    pub samples: usize,
    /// Spatial extent (`h * w`) each sum ranges over.
    pub hw: usize,
    /// Per-sample per-channel sums, sample-major.
    pub sum: Vec<f64>,
    /// Per-sample per-channel sums of squares, sample-major.
    pub sqsum: Vec<f64>,
}

/// Per-channel batch normalization over `(n, h, w)`.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    c: usize,
    /// Batch statistics frozen by a `Stats`-mode pass, reused by the next
    /// `Full`-mode pass (the reversible recomputation).
    frozen: Cached<(Tensor, Tensor)>,
    /// Backward cache: (xhat, inv_std).
    saved: Cached<(Tensor, Tensor)>,
    /// Decoupled-statistics training mode (sharded data parallelism):
    /// normalize with the pre-step running statistics instead of batch
    /// statistics, record per-sample moments for the trainer to merge, and
    /// leave the running statistics untouched until the trainer applies the
    /// merged batch statistics after the step.
    decoupled: bool,
    /// Moments recorded by the last decoupled-mode training forward.
    pending: Option<BnMoments>,
}

impl BatchNorm2d {
    /// Creates a BatchNorm with `gamma = 1, beta = 0` (paper defaults:
    /// momentum 0.9, epsilon 1e-3).
    pub fn new(c: usize) -> Self {
        Self {
            gamma: Param::ones(Shape::vector(c), false, "bn.gamma"),
            beta: Param::zeros(Shape::vector(c), false, "bn.beta"),
            running_mean: Tensor::zeros(Shape::vector(c)),
            running_var: Tensor::ones(Shape::vector(c)),
            momentum: 0.9,
            eps: 1e-3,
            c,
            frozen: Cached::empty(),
            saved: Cached::empty(),
            decoupled: false,
            pending: None,
        }
    }

    /// Switches decoupled-statistics mode on or off (clearing any recorded
    /// moments). In decoupled mode a training forward normalizes with the
    /// *running* statistics — so each sample's activations are independent
    /// of which other samples share its micro-batch — records per-sample
    /// moments, and defers the running-statistics update to
    /// [`Self::apply_global_stats`].
    pub fn set_decoupled(&mut self, on: bool) {
        self.decoupled = on;
        self.pending = None;
    }

    /// `true` when decoupled-statistics mode is active.
    pub fn decoupled(&self) -> bool {
        self.decoupled
    }

    /// Takes the per-sample moments recorded by the last decoupled-mode
    /// training forward, if any.
    pub fn take_moments(&mut self) -> Option<BnMoments> {
        self.pending.take()
    }

    /// Applies externally merged batch statistics to the running statistics
    /// (momentum update). The sharded trainer calls this once per step on
    /// the primary replica after tree-merging per-sample moments from all
    /// shards, reproducing what a coupled `Stats` pass over the full batch
    /// would have contributed.
    pub fn apply_global_stats(&mut self, mean: &Tensor, var: &Tensor) {
        assert_eq!(mean.shape(), Shape::vector(self.c), "mean shape");
        assert_eq!(var.shape(), Shape::vector(self.c), "var shape");
        self.update_running(mean, var);
    }

    fn record_moments(&mut self, x: &Tensor) {
        let xs = x.shape();
        let hw = xs.hw();
        let mut sum = vec![0.0f64; xs.n * self.c];
        let mut sqsum = vec![0.0f64; xs.n * self.c];
        for n in 0..xs.n {
            for c in 0..self.c {
                let base = (n * self.c + c) * hw;
                let (mut s, mut q) = (0.0f64, 0.0f64);
                for &v in &x.data()[base..base + hw] {
                    let v = v as f64;
                    s += v;
                    q += v * v;
                }
                sum[n * self.c + c] = s;
                sqsum[n * self.c + c] = q;
            }
        }
        // Overwrite, never accumulate: if a step is skipped and retried
        // (non-finite tripwire), only the latest pass's moments survive.
        self.pending = Some(BnMoments { samples: xs.n, hw, sum, sqsum });
    }

    /// Zero-initializes `gamma`, used for the normalization layer before a
    /// residual add ("to promote stability", Kingma & Dhariwal 2018).
    pub fn zero_init(mut self) -> Self {
        self.gamma.value.fill_zero();
        self
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Read access to the running mean (tests).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Read access to the running variance (tests).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    fn batch_stats(&self, x: &Tensor) -> (Tensor, Tensor) {
        let xs = x.shape();
        let m = (xs.n * xs.hw()) as f32;
        let mut mean = Tensor::zeros(Shape::vector(self.c));
        let mut var = Tensor::zeros(Shape::vector(self.c));
        let hw = xs.hw();
        for c in 0..self.c {
            let mut s = 0.0f64;
            for n in 0..xs.n {
                let base = (n * self.c + c) * hw;
                s += x.data()[base..base + hw].iter().map(|&v| v as f64).sum::<f64>();
            }
            mean.data_mut()[c] = (s / m as f64) as f32;
        }
        for c in 0..self.c {
            let mu = mean.data()[c] as f64;
            let mut s = 0.0f64;
            for n in 0..xs.n {
                let base = (n * self.c + c) * hw;
                s += x.data()[base..base + hw].iter().map(|&v| (v as f64 - mu) * (v as f64 - mu)).sum::<f64>();
            }
            var.data_mut()[c] = (s / m as f64) as f32;
        }
        (mean, var)
    }

    fn normalize(&self, x: &Tensor, mean: &Tensor, var: &Tensor) -> (Tensor, Tensor) {
        // Returns (y, xhat) where y = gamma * xhat + beta.
        let xs = x.shape();
        let hw = xs.hw();
        let mut xhat = x.clone();
        let mut inv_std = Tensor::zeros(Shape::vector(self.c));
        for c in 0..self.c {
            inv_std.data_mut()[c] = 1.0 / (var.data()[c] + self.eps).sqrt();
        }
        for n in 0..xs.n {
            for c in 0..self.c {
                let mu = mean.data()[c];
                let is = inv_std.data()[c];
                let base = (n * self.c + c) * hw;
                for v in &mut xhat.data_mut()[base..base + hw] {
                    *v = (*v - mu) * is;
                }
            }
        }
        let mut y = xhat.clone();
        y.mul_channel(&self.gamma.value);
        y.add_channel_bias(&self.beta.value);
        (y, xhat)
    }

    fn update_running(&mut self, mean: &Tensor, var: &Tensor) {
        let mom = self.momentum;
        for c in 0..self.c {
            self.running_mean.data_mut()[c] = mom * self.running_mean.data()[c] + (1.0 - mom) * mean.data()[c];
            self.running_var.data_mut()[c] = mom * self.running_var.data()[c] + (1.0 - mom) * var.data()[c];
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        assert_eq!(x.shape().c, self.c, "BatchNorm channel mismatch");
        if self.decoupled && mode != CacheMode::None {
            return match mode {
                CacheMode::Stats => {
                    self.record_moments(x);
                    let (y, _) = self.normalize(x, &self.running_mean, &self.running_var);
                    // Freeze a copy of the (pre-step) running stats so the
                    // Full-mode recomputation knows not to re-record moments
                    // and the cache accounting matches the coupled mode.
                    let frozen = (self.running_mean.clone(), self.running_var.clone());
                    let bytes = frozen.0.bytes() + frozen.1.bytes();
                    self.frozen.put(frozen, bytes);
                    y
                }
                _ => {
                    let (mean, var) = match self.frozen.take() {
                        // Reversible recomputation: the Stats pass already
                        // recorded this batch's moments.
                        Some(mv) => mv,
                        None => {
                            self.record_moments(x);
                            (self.running_mean.clone(), self.running_var.clone())
                        }
                    };
                    let (y, xhat) = self.normalize(x, &mean, &var);
                    let mut inv_std = Tensor::zeros(Shape::vector(self.c));
                    for c in 0..self.c {
                        inv_std.data_mut()[c] = 1.0 / (var.data()[c] + self.eps).sqrt();
                    }
                    let bytes = xhat.bytes() + inv_std.bytes();
                    self.saved.put((xhat, inv_std), bytes);
                    y
                }
            };
        }
        match mode {
            CacheMode::None => {
                let (y, _) = self.normalize(x, &self.running_mean.clone(), &self.running_var.clone());
                y
            }
            CacheMode::Stats => {
                let (mean, var) = self.batch_stats(x);
                self.update_running(&mean, &var);
                let (y, _) = self.normalize(x, &mean, &var);
                let bytes = mean.bytes() + var.bytes();
                self.frozen.put((mean, var), bytes);
                y
            }
            CacheMode::Full => {
                // Reuse frozen stats if the reversible engine recorded them;
                // in that case this is a recomputation, so do not update the
                // running statistics again.
                let (mean, var) = match self.frozen.take() {
                    Some((m, v)) => (m, v),
                    None => {
                        let (m, v) = self.batch_stats(x);
                        self.update_running(&m, &v);
                        (m, v)
                    }
                };
                let (y, xhat) = self.normalize(x, &mean, &var);
                let mut inv_std = Tensor::zeros(Shape::vector(self.c));
                for c in 0..self.c {
                    inv_std.data_mut()[c] = 1.0 / (var.data()[c] + self.eps).sqrt();
                }
                let bytes = xhat.bytes() + inv_std.bytes();
                self.saved.put((xhat, inv_std), bytes);
                y
            }
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (xhat, inv_std) = self.saved.take().expect("BatchNorm2d::backward without Full forward");
        if self.decoupled {
            let xs = dy.shape();
            let hw = xs.hw();
            let c = self.c;
            // dgamma/dbeta: per-sample channel partials (f64 inner sums over
            // hw, cast to f32 per sample) merged with the pairwise sample
            // tree, so shard-local trees compose into the global batch tree
            // bit for bit (each partial depends only on its own sample).
            let mut partial = vec![0.0f32; 2 * c];
            let dyd = dy.data();
            let xhd = xhat.data();
            par::tree_reduce_with_slabs(xs.n, 2 * c, &mut partial, |n, slab| {
                for ci in 0..c {
                    let base = (n * c + ci) * hw;
                    let (mut sg, mut sb) = (0.0f64, 0.0f64);
                    for i in 0..hw {
                        let d = dyd[base + i] as f64;
                        sg += d * xhd[base + i] as f64;
                        sb += d;
                    }
                    slab[ci] = sg as f32;
                    slab[c + ci] = sb as f32;
                }
            });
            let mut dgamma = Tensor::zeros(Shape::vector(c));
            let mut dbeta = Tensor::zeros(Shape::vector(c));
            dgamma.data_mut().copy_from_slice(&partial[..c]);
            dbeta.data_mut().copy_from_slice(&partial[c..]);
            self.gamma.accumulate(&dgamma);
            self.beta.accumulate(&dbeta);
            // The normalization statistics are pre-step running statistics —
            // constants w.r.t. this batch — so dx is just the per-channel
            // affine transpose: dx = gamma * inv_std * dy.
            let mut dx = dy.clone();
            for n in 0..xs.n {
                for ci in 0..c {
                    let k = self.gamma.value.data()[ci] * inv_std.data()[ci];
                    let base = (n * c + ci) * hw;
                    for v in &mut dx.data_mut()[base..base + hw] {
                        *v *= k;
                    }
                }
            }
            return dx;
        }
        let xs = dy.shape();
        let hw = xs.hw();
        let m = (xs.n * hw) as f32;

        // Per-channel reductions.
        let mut sum_dy = vec![0.0f64; self.c];
        let mut sum_dy_xhat = vec![0.0f64; self.c];
        for n in 0..xs.n {
            for c in 0..self.c {
                let base = (n * self.c + c) * hw;
                for i in 0..hw {
                    let d = dy.data()[base + i] as f64;
                    sum_dy[c] += d;
                    sum_dy_xhat[c] += d * xhat.data()[base + i] as f64;
                }
            }
        }
        // Parameter gradients.
        let mut dgamma = Tensor::zeros(Shape::vector(self.c));
        let mut dbeta = Tensor::zeros(Shape::vector(self.c));
        for c in 0..self.c {
            dgamma.data_mut()[c] = sum_dy_xhat[c] as f32;
            dbeta.data_mut()[c] = sum_dy[c] as f32;
        }
        self.gamma.accumulate(&dgamma);
        self.beta.accumulate(&dbeta);

        // Input gradient:
        // dx = gamma * inv_std / m * (m*dy - sum(dy) - xhat * sum(dy*xhat))
        let mut dx = Tensor::zeros(xs);
        for n in 0..xs.n {
            for c in 0..self.c {
                let g = self.gamma.value.data()[c];
                let is = inv_std.data()[c];
                let k = g * is / m;
                let s1 = sum_dy[c] as f32;
                let s2 = sum_dy_xhat[c] as f32;
                let base = (n * self.c + c) * hw;
                for i in 0..hw {
                    let d = dy.data()[base + i];
                    let xh = xhat.data()[base + i];
                    dx.data_mut()[base + i] = k * (m * d - s1 - xh * s2);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn visit_bn(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        f(self);
    }

    fn clear_cache(&mut self) {
        self.frozen.clear();
        self.saved.clear();
        self.pending = None;
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        match mode {
            CacheMode::None => 0,
            CacheMode::Stats => 2 * Shape::vector(self.c).bytes() as u64,
            CacheMode::Full => (x.bytes() + Shape::vector(self.c).bytes()) as u64,
        }
    }

    fn name(&self) -> &str {
        "batchnorm2d"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        // Eval-mode BN is the per-channel affine
        //   y = gamma * (x - mean) / sqrt(var + eps) + beta
        //     = scale * x + bias
        // with scale = gamma / sqrt(running_var + eps) and
        // bias = beta - running_mean * scale.
        let mut scale = Tensor::zeros(Shape::vector(self.c));
        let mut bias = Tensor::zeros(Shape::vector(self.c));
        for c in 0..self.c {
            let s = self.gamma.value.data()[c] / (self.running_var.data()[c] + self.eps).sqrt();
            scale.data_mut()[c] = s;
            bias.data_mut()[c] = self.beta.value.data()[c] - self.running_mean.data()[c] * s;
        }
        Ok(FrozenLayer::Affine { scale, bias })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_training_mode;
    use crate::meter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_batch_to_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(Shape::new(4, 3, 8, 8), 3.0, &mut rng);
        let y = bn.forward(&x, CacheMode::Full);
        // Per-channel moments of y should be ~ (0, 1).
        let ys = y.shape();
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..ys.n {
                for h in 0..ys.h {
                    for w in 0..ys.w {
                        vals.push(y.at(n, c, h, w) as f64);
                    }
                }
            }
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            let v = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / vals.len() as f64;
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
        bn.clear_cache();
    }

    #[test]
    fn gradients_pass_finite_diff() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(2);
        // Give gamma/beta non-trivial values so the test is not degenerate.
        bn.gamma.value = Tensor::from_vec(Shape::vector(2), vec![1.3, 0.7]).unwrap();
        bn.beta.value = Tensor::from_vec(Shape::vector(2), vec![0.2, -0.4]).unwrap();
        let x = Tensor::randn(Shape::new(3, 2, 4, 4), 1.0, &mut rng);
        check_layer_training_mode(&mut bn, &x, 3e-2);
    }

    #[test]
    fn frozen_stats_reused_on_recompute() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(Shape::new(2, 2, 4, 4), 1.0, &mut rng);

        let y_stats = bn.forward(&x, CacheMode::Stats);
        let rm_after_stats = bn.running_mean().clone();
        // Recompute in Full mode: output identical, running stats untouched.
        let y_full = bn.forward(&x, CacheMode::Full);
        assert!(y_stats.max_abs_diff(&y_full) < 1e-7);
        assert_eq!(bn.running_mean(), &rm_after_stats);
        bn.clear_cache();
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(Shape::new(2, 2, 4, 4), 1.0, &mut rng);
        // Without training, running stats are (0, 1): eval output == gamma*x+beta == x.
        let y = bn.forward(&x, CacheMode::None);
        // eps makes it slightly different from x; check close.
        assert!(y.max_abs_diff(&x) < 2e-3);
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::randn(Shape::new(8, 1, 8, 8), 1.0, &mut rng).map(|v| v * 2.0 + 5.0);
        for _ in 0..60 {
            let _ = bn.forward(&x, CacheMode::Stats);
            bn.clear_cache();
        }
        assert!((bn.running_mean().data()[0] - 5.0).abs() < 0.1);
        assert!((bn.running_var().data()[0] - 4.0).abs() < 0.3);
    }

    #[test]
    fn zero_init_outputs_beta() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut bn = BatchNorm2d::new(2).zero_init();
        let x = Tensor::randn(Shape::new(2, 2, 3, 3), 1.0, &mut rng);
        let y = bn.forward(&x, CacheMode::Full);
        assert!(y.abs_max() < 1e-6);
        bn.clear_cache();
    }

    #[test]
    fn decoupled_gradients_pass_finite_diff() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut bn = BatchNorm2d::new(2);
        bn.set_decoupled(true);
        bn.gamma.value = Tensor::from_vec(Shape::vector(2), vec![1.3, 0.7]).unwrap();
        bn.beta.value = Tensor::from_vec(Shape::vector(2), vec![0.2, -0.4]).unwrap();
        // Non-trivial running stats so the normalization is not the identity.
        bn.running_mean = Tensor::from_vec(Shape::vector(2), vec![0.3, -0.2]).unwrap();
        bn.running_var = Tensor::from_vec(Shape::vector(2), vec![1.4, 0.6]).unwrap();
        let x = Tensor::randn(Shape::new(3, 2, 4, 4), 1.0, &mut rng);
        check_layer_training_mode(&mut bn, &x, 3e-2);
    }

    #[test]
    fn decoupled_stats_pass_defers_running_update_and_records_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut bn = BatchNorm2d::new(3);
        bn.set_decoupled(true);
        let x = Tensor::randn(Shape::new(4, 3, 5, 5), 2.0, &mut rng).map(|v| v + 1.0);
        let rm0 = bn.running_mean().clone();
        let rv0 = bn.running_var().clone();
        let y_stats = bn.forward(&x, CacheMode::Stats);
        // Running statistics untouched by the forward pass.
        assert_eq!(bn.running_mean(), &rm0);
        assert_eq!(bn.running_var(), &rv0);
        // Full recompute reproduces the Stats output bitwise (both normalize
        // with the same running statistics) and does not re-record moments.
        let y_full = bn.forward(&x, CacheMode::Full);
        for (a, b) in y_stats.data().iter().zip(y_full.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let m = bn.take_moments().expect("moments recorded");
        assert!(bn.take_moments().is_none(), "moments recorded exactly once");
        assert_eq!((m.samples, m.hw), (4, 25));
        // Merged moments reproduce the coupled batch statistics.
        let (mean_ref, var_ref) = bn.batch_stats(&x);
        let cnt = (m.samples * m.hw) as f64;
        for c in 0..3 {
            let s1: f64 = (0..m.samples).map(|n| m.sum[n * 3 + c]).sum();
            let s2: f64 = (0..m.samples).map(|n| m.sqsum[n * 3 + c]).sum();
            let mean = s1 / cnt;
            let var = (s2 / cnt - mean * mean).max(0.0);
            assert!((mean - mean_ref.data()[c] as f64).abs() < 1e-5, "mean c={c}");
            assert!((var - var_ref.data()[c] as f64).abs() < 1e-4, "var c={c}");
        }
        // The deferred update is applied explicitly.
        bn.apply_global_stats(&mean_ref, &var_ref);
        assert!((bn.running_mean().data()[0] - (0.9 * rm0.data()[0] + 0.1 * mean_ref.data()[0])).abs() < 1e-6);
        bn.clear_cache();
    }

    #[test]
    fn decoupled_param_grads_are_shard_invariant() {
        let mut rng = StdRng::seed_from_u64(9);
        let (n, c, h) = (8usize, 3usize, 4usize);
        let mut bn = BatchNorm2d::new(c);
        bn.set_decoupled(true);
        bn.gamma.value = Tensor::uniform(Shape::vector(c), 0.5, 1.5, &mut rng);
        bn.running_mean = Tensor::uniform(Shape::vector(c), -0.5, 0.5, &mut rng);
        bn.running_var = Tensor::uniform(Shape::vector(c), 0.5, 1.5, &mut rng);
        let x = Tensor::randn(Shape::new(n, c, h, h), 1.0, &mut rng);
        let dy = Tensor::randn(Shape::new(n, c, h, h), 1.0, &mut rng);
        let _ = bn.forward(&x, CacheMode::Full);
        let _ = bn.take_moments();
        let _ = bn.backward(&dy);
        let dg_full = bn.gamma.grad.clone();
        let db_full = bn.beta.grad.clone();
        let plane = c * h * h;
        for shards in [2usize, 4] {
            let m = n / shards;
            let mut dgs: Vec<Vec<f32>> = Vec::new();
            let mut dbs: Vec<Vec<f32>> = Vec::new();
            for s in 0..shards {
                bn.gamma.zero_grad();
                bn.beta.zero_grad();
                let xs = Tensor::from_vec(
                    Shape::new(m, c, h, h),
                    x.data()[s * m * plane..(s + 1) * m * plane].to_vec(),
                )
                .unwrap();
                let dys = Tensor::from_vec(
                    Shape::new(m, c, h, h),
                    dy.data()[s * m * plane..(s + 1) * m * plane].to_vec(),
                )
                .unwrap();
                let _ = bn.forward(&xs, CacheMode::Full);
                let _ = bn.take_moments();
                let _ = bn.backward(&dys);
                dgs.push(bn.gamma.grad.data().to_vec());
                dbs.push(bn.beta.grad.data().to_vec());
            }
            par::tree_reduce_serial(shards, |d, s| {
                let (head, tail) = dgs.split_at_mut(s);
                for (a, b) in head[d].iter_mut().zip(&tail[0]) {
                    *a += *b;
                }
                let (head, tail) = dbs.split_at_mut(s);
                for (a, b) in head[d].iter_mut().zip(&tail[0]) {
                    *a += *b;
                }
            });
            for (i, (a, b)) in dgs[0].iter().zip(dg_full.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "dgamma shards={shards} idx {i}");
            }
            for (i, (a, b)) in dbs[0].iter().zip(db_full.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "dbeta shards={shards} idx {i}");
            }
        }
        bn.clear_cache();
    }

    #[test]
    fn meter_accounting_stats_vs_full() {
        let mut rng = StdRng::seed_from_u64(6);
        meter::reset();
        let mut bn = BatchNorm2d::new(4);
        let x = Tensor::randn(Shape::new(2, 4, 8, 8), 1.0, &mut rng);
        let _ = bn.forward(&x, CacheMode::Stats);
        assert_eq!(meter::current() as u64, bn.cache_bytes(x.shape(), CacheMode::Stats));
        bn.clear_cache();
        let _ = bn.forward(&x, CacheMode::Full);
        assert_eq!(meter::current() as u64, bn.cache_bytes(x.shape(), CacheMode::Full));
        bn.clear_cache();
        assert_eq!(meter::current(), 0);
    }
}
