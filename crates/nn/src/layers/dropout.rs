//! Stochastic regularizers with seed-replay, plus the residual wrapper.
//!
//! Reversible recomputation must reproduce the forward pass exactly, so
//! random masks are never stored: only their 8-byte seeds are. A
//! `Stats`-mode forward freezes the seed; the recomputing `Full`-mode
//! forward replays it.

use crate::freeze::{FreezeError, FrozenLayer};
use crate::meter::Cached;
use crate::mode::CacheMode;
use crate::module::Layer;
use crate::param::Param;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_tensor::{Shape, Tensor};

fn element_mask(seed: u64, shape: Shape, keep: f32) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Tensor::zeros(shape);
    for v in m.data_mut() {
        *v = if rng.random::<f32>() < keep { 1.0 / keep } else { 0.0 };
    }
    m
}

fn sample_mask(seed: u64, n: usize, keep: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| if rng.random::<f32>() < keep { 1.0 / keep } else { 0.0 }).collect()
}

/// Element-wise (inverted) dropout.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    next_seed: u64,
    frozen_seed: Cached<u64>,
    saved: Cached<(u64, Shape)>,
}

impl Dropout {
    /// Creates dropout with drop probability `p` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Self { p, next_seed: seed, frozen_seed: Cached::empty(), saved: Cached::empty() }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    fn fresh_seed(&mut self) -> u64 {
        self.next_seed = self.next_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.next_seed
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        if self.p == 0.0 || mode == CacheMode::None {
            return x.clone();
        }
        let seed = match self.frozen_seed.take() {
            Some(s) => s,
            None => self.fresh_seed(),
        };
        let keep = 1.0 - self.p;
        let mask = element_mask(seed, x.shape(), keep);
        let y = x * &mask;
        match mode {
            CacheMode::Stats => self.frozen_seed.put(seed, 8),
            CacheMode::Full => self.saved.put((seed, x.shape()), 8 + std::mem::size_of::<Shape>()),
            CacheMode::None => unreachable!(),
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        if self.p == 0.0 {
            return dy.clone();
        }
        let (seed, shape) = self.saved.take().expect("Dropout::backward without Full forward");
        let mask = element_mask(seed, shape, 1.0 - self.p);
        dy * &mask
    }

    fn clear_cache(&mut self) {
        self.frozen_seed.clear();
        self.saved.clear();
    }

    fn cache_bytes(&self, _x: Shape, mode: CacheMode) -> u64 {
        if self.p == 0.0 {
            return 0;
        }
        match mode {
            CacheMode::None => 0,
            CacheMode::Stats => 8,
            CacheMode::Full => (8 + std::mem::size_of::<Shape>()) as u64,
        }
    }

    fn name(&self) -> &str {
        "dropout"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Identity)
    }
}

/// Stochastic depth (Huang et al. 2016): drops the whole residual branch per
/// sample, rescaling survivors by `1 / keep`.
#[derive(Debug)]
pub struct DropPath {
    p: f32,
    next_seed: u64,
    frozen_seed: Cached<u64>,
    saved: Cached<(u64, Shape)>,
}

impl DropPath {
    /// Creates stochastic depth with drop probability `p` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop-path probability must be in [0, 1)");
        Self { p, next_seed: seed, frozen_seed: Cached::empty(), saved: Cached::empty() }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    fn fresh_seed(&mut self) -> u64 {
        self.next_seed = self.next_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.next_seed
    }

    fn apply(x: &Tensor, seed: u64, keep: f32) -> Tensor {
        let xs = x.shape();
        let mask = sample_mask(seed, xs.n, keep);
        let mut y = x.clone();
        let chw = xs.chw();
        for (n, &m) in mask.iter().enumerate().take(xs.n) {
            for v in &mut y.data_mut()[n * chw..(n + 1) * chw] {
                *v *= m;
            }
        }
        y
    }
}

impl Layer for DropPath {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        if self.p == 0.0 || mode == CacheMode::None {
            return x.clone();
        }
        let seed = match self.frozen_seed.take() {
            Some(s) => s,
            None => self.fresh_seed(),
        };
        let y = Self::apply(x, seed, 1.0 - self.p);
        match mode {
            CacheMode::Stats => self.frozen_seed.put(seed, 8),
            CacheMode::Full => self.saved.put((seed, x.shape()), 8 + std::mem::size_of::<Shape>()),
            CacheMode::None => unreachable!(),
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        if self.p == 0.0 {
            return dy.clone();
        }
        let (seed, _shape) = self.saved.take().expect("DropPath::backward without Full forward");
        Self::apply(dy, seed, 1.0 - self.p)
    }

    fn clear_cache(&mut self) {
        self.frozen_seed.clear();
        self.saved.clear();
    }

    fn cache_bytes(&self, _x: Shape, mode: CacheMode) -> u64 {
        if self.p == 0.0 {
            return 0;
        }
        match mode {
            CacheMode::None => 0,
            CacheMode::Stats => 8,
            CacheMode::Full => (8 + std::mem::size_of::<Shape>()) as u64,
        }
    }

    fn name(&self) -> &str {
        "drop_path"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Identity)
    }
}

/// Residual wrapper: `y = x + drop_path(branch(x))`.
///
/// The residual add itself needs no cache (its gradient is the identity on
/// both addends), so the memory cost is exactly the branch's.
#[derive(Debug)]
pub struct Residual {
    branch: Box<dyn Layer>,
    drop_path: DropPath,
}

impl Residual {
    /// Wraps `branch` with an identity skip connection.
    pub fn new(branch: Box<dyn Layer>, drop_path_p: f32, seed: u64) -> Self {
        Self { branch, drop_path: DropPath::new(drop_path_p, seed) }
    }

    /// Immutable access to the wrapped branch.
    pub fn branch(&self) -> &dyn Layer {
        self.branch.as_ref()
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        let b = self.branch.forward(x, mode);
        assert_eq!(b.shape(), x.shape(), "residual branch must preserve shape");
        let b = self.drop_path.forward(&b, mode);
        &b + x
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let db = self.drop_path.backward(dy);
        let dx_branch = self.branch.backward(&db);
        &dx_branch + dy
    }

    fn out_shape(&self, x: Shape) -> Shape {
        x
    }

    fn macs(&self, x: Shape) -> u64 {
        self.branch.macs(x)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.branch.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.branch.visit_buffers(f);
    }

    fn visit_bn(&mut self, f: &mut dyn FnMut(&mut crate::layers::BatchNorm2d)) {
        self.branch.visit_bn(f);
    }

    fn clear_cache(&mut self) {
        self.branch.clear_cache();
        self.drop_path.clear_cache();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        self.branch.cache_bytes(x, mode) + self.drop_path.cache_bytes(x, mode)
    }

    fn name(&self) -> &str {
        "residual"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        // Eval-mode drop-path is the identity, so only the branch remains.
        Ok(FrozenLayer::Residual(Box::new(self.branch.freeze()?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Identity;

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(Shape::new(2, 3, 4, 4));
        assert_eq!(d.forward(&x, CacheMode::None), x);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones(Shape::new(4, 8, 16, 16));
        let mut total = 0.0;
        for _ in 0..10 {
            let y = d.forward(&x, CacheMode::Full);
            d.clear_cache();
            total += y.mean();
        }
        assert!((total / 10.0 - 1.0).abs() < 0.05, "mean {}", total / 10.0);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(Shape::new(1, 1, 4, 4));
        let y = d.forward(&x, CacheMode::Full);
        let dy = Tensor::ones(y.shape());
        let dx = d.backward(&dy);
        // Gradient mask must match the forward mask exactly.
        assert_eq!(dx, y);
    }

    #[test]
    fn dropout_stats_then_full_replays_seed() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::ones(Shape::new(1, 2, 8, 8));
        let y1 = d.forward(&x, CacheMode::Stats);
        let y2 = d.forward(&x, CacheMode::Full);
        assert_eq!(y1, y2);
        d.clear_cache();
    }

    #[test]
    fn drop_path_zeroes_whole_samples() {
        let mut d = DropPath::new(0.5, 5);
        let x = Tensor::ones(Shape::new(16, 2, 2, 2));
        let y = d.forward(&x, CacheMode::Full);
        d.clear_cache();
        let chw = 8;
        for n in 0..16 {
            let slice = &y.data()[n * chw..(n + 1) * chw];
            let first = slice[0];
            assert!(slice.iter().all(|&v| v == first), "sample {n} not uniform");
            assert!(first == 0.0 || (first - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn residual_identity_branch_doubles() {
        let mut r = Residual::new(Box::new(Identity), 0.0, 0);
        let x = Tensor::full(Shape::new(1, 1, 2, 2), 3.0);
        let y = r.forward(&x, CacheMode::Full);
        assert!(y.data().iter().all(|&v| v == 6.0));
        let dx = r.backward(&Tensor::ones(y.shape()));
        assert!(dx.data().iter().all(|&v| v == 2.0));
    }
}
