//! Element-wise activations: ReLU, hard-swish (the paper's non-linearity),
//! hard-sigmoid, and sigmoid.

use crate::freeze::{ActKind, FreezeError, FrozenLayer};
use crate::meter::Cached;
use crate::mode::CacheMode;
use crate::module::Layer;
use revbifpn_tensor::{Shape, Tensor};

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    cache_x: Cached<Tensor>,
}

impl Relu {
    /// Creates a ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        if mode == CacheMode::Full {
            self.cache_x.put_tensor(x.clone());
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("Relu::backward without Full forward");
        dy.zip(&x, |g, v| if v > 0.0 { g } else { 0.0 })
    }

    fn clear_cache(&mut self) {
        self.cache_x.clear();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        if mode == CacheMode::Full {
            x.bytes() as u64
        } else {
            0
        }
    }

    fn name(&self) -> &str {
        "relu"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Act(ActKind::Relu))
    }
}

#[inline]
fn hswish(v: f32) -> f32 {
    v * (v + 3.0).clamp(0.0, 6.0) / 6.0
}

#[inline]
fn hswish_grad(v: f32) -> f32 {
    if v <= -3.0 {
        0.0
    } else if v >= 3.0 {
        1.0
    } else {
        (2.0 * v + 3.0) / 6.0
    }
}

/// Hard-swish non-linearity (Howard et al. 2019), used throughout RevBiFPN.
#[derive(Debug, Default)]
pub struct HardSwish {
    cache_x: Cached<Tensor>,
}

impl HardSwish {
    /// Creates a hard-swish activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for HardSwish {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        if mode == CacheMode::Full {
            self.cache_x.put_tensor(x.clone());
        }
        x.map(hswish)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("HardSwish::backward without Full forward");
        dy.zip(&x, |g, v| g * hswish_grad(v))
    }

    fn clear_cache(&mut self) {
        self.cache_x.clear();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        if mode == CacheMode::Full {
            x.bytes() as u64
        } else {
            0
        }
    }

    fn name(&self) -> &str {
        "hardswish"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Act(ActKind::HardSwish))
    }
}

#[inline]
fn hsigmoid(v: f32) -> f32 {
    (v + 3.0).clamp(0.0, 6.0) / 6.0
}

#[inline]
fn hsigmoid_grad(v: f32) -> f32 {
    if (-3.0..3.0).contains(&v) {
        1.0 / 6.0
    } else {
        0.0
    }
}

/// Hard-sigmoid gate (squeeze-excite gating in MobileNetV3 style).
#[derive(Debug, Default)]
pub struct HardSigmoid {
    cache_x: Cached<Tensor>,
}

impl HardSigmoid {
    /// Creates a hard-sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for HardSigmoid {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        if mode == CacheMode::Full {
            self.cache_x.put_tensor(x.clone());
        }
        x.map(hsigmoid)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("HardSigmoid::backward without Full forward");
        dy.zip(&x, |g, v| g * hsigmoid_grad(v))
    }

    fn clear_cache(&mut self) {
        self.cache_x.clear();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        if mode == CacheMode::Full {
            x.bytes() as u64
        } else {
            0
        }
    }

    fn name(&self) -> &str {
        "hardsigmoid"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Act(ActKind::HardSigmoid))
    }
}

/// Logistic sigmoid (caches its *output*, which determines the gradient).
#[derive(Debug, Default)]
pub struct Sigmoid {
    cache_y: Cached<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        if mode == CacheMode::Full {
            self.cache_y.put_tensor(y.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let y = self.cache_y.take().expect("Sigmoid::backward without Full forward");
        dy.zip(&y, |g, s| g * s * (1.0 - s))
    }

    fn clear_cache(&mut self) {
        self.cache_y.clear();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        if mode == CacheMode::Full {
            x.bytes() as u64
        } else {
            0
        }
    }

    fn name(&self) -> &str {
        "sigmoid"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Act(ActKind::Sigmoid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn smooth_input(seed: u64) -> Tensor {
        // Keep values away from the hard kinks (+-3, 0) so finite
        // differences are valid.
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::uniform(Shape::new(2, 3, 4, 4), 0.3, 2.5, &mut rng)
    }

    #[test]
    fn relu_known_values() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 3), vec![-1.0, 0.0, 2.0]).unwrap();
        let y = r.forward(&x, CacheMode::None);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn hswish_known_values() {
        let mut h = HardSwish::new();
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 4), vec![-4.0, -1.5, 0.0, 4.0]).unwrap();
        let y = h.forward(&x, CacheMode::None);
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - (-1.5 * 1.5 / 6.0)).abs() < 1e-6);
        assert_eq!(y.data()[2], 0.0);
        assert_eq!(y.data()[3], 4.0);
    }

    #[test]
    fn hsigmoid_known_values() {
        let mut h = HardSigmoid::new();
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 3), vec![-5.0, 0.0, 5.0]).unwrap();
        let y = h.forward(&x, CacheMode::None);
        assert_eq!(y.data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn sigmoid_center() {
        let mut s = Sigmoid::new();
        let x = Tensor::zeros(Shape::new(1, 1, 1, 1));
        let y = s.forward(&x, CacheMode::None);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_relu() {
        check_layer(&mut Relu::new(), &smooth_input(0), 1e-2);
    }

    #[test]
    fn gradients_hswish() {
        check_layer(&mut HardSwish::new(), &smooth_input(1), 1e-2);
    }

    #[test]
    fn gradients_hsigmoid() {
        check_layer(&mut HardSigmoid::new(), &smooth_input(2), 1e-2);
    }

    #[test]
    fn gradients_sigmoid() {
        check_layer(&mut Sigmoid::new(), &smooth_input(3), 1e-2);
    }
}
