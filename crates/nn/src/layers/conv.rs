//! Convolution layer wrapping the raw kernels with parameters and caching.

use crate::freeze::{FreezeError, FrozenLayer, FusedConv};
use crate::meter::Cached;
use crate::mode::CacheMode;
use crate::module::Layer;
use crate::param::Param;
use crate::init::kaiming_conv;
use rand::Rng;
use revbifpn_tensor::{conv2d, conv2d_backward, ConvSpec, Shape, Tensor};

/// A 2-D convolution layer (pointwise/depthwise/general dispatch happens in
/// the kernel; see [`ConvSpec`]).
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    spec: ConvSpec,
    c_out: usize,
    need_dx: bool,
    cache_x: Cached<Tensor>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// `bias` is typically false when a BatchNorm follows.
    pub fn new<R: Rng + ?Sized>(c_in: usize, c_out: usize, spec: ConvSpec, bias: bool, rng: &mut R) -> Self {
        assert_eq!(c_in % spec.groups, 0, "c_in must divide groups");
        assert_eq!(c_out % spec.groups, 0, "c_out must divide groups");
        let wshape = Shape::new(c_out, c_in / spec.groups, spec.kh, spec.kw);
        let weight = Param::new(kaiming_conv(wshape, rng), true, "conv.weight");
        let bias = bias.then(|| Param::zeros(Shape::vector(c_out), false, "conv.bias"));
        Self { weight, bias, spec, c_out, need_dx: true, cache_x: Cached::empty() }
    }

    /// Depthwise convolution constructor.
    pub fn depthwise<R: Rng + ?Sized>(c: usize, k: usize, stride: usize, rng: &mut R) -> Self {
        Self::new(c, c, ConvSpec::depthwise(k, stride, c), false, rng)
    }

    /// Pointwise (1x1) convolution constructor.
    pub fn pointwise<R: Rng + ?Sized>(c_in: usize, c_out: usize, bias: bool, rng: &mut R) -> Self {
        Self::new(c_in, c_out, ConvSpec::pointwise(), bias, rng)
    }

    /// Marks this layer as the first in the network: skip computing `dx`.
    pub fn first_layer(mut self) -> Self {
        self.need_dx = false;
        self
    }

    /// The convolution geometry.
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter (tests, custom init).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// This convolution's frozen (fusable, uncompiled) form.
    pub fn fused(&self) -> FusedConv {
        FusedConv::new(self.weight.value.clone(), self.bias.as_ref().map(|b| &b.value), self.spec)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        let y = conv2d(x, &self.weight.value, self.bias.as_ref().map(|b| &b.value), &self.spec);
        if mode == CacheMode::Full {
            self.cache_x.put_tensor(x.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("Conv2d::backward without Full forward");
        let grads = conv2d_backward(&x, &self.weight.value, dy, &self.spec, self.need_dx);
        self.weight.accumulate(&grads.dw);
        if let Some(b) = &mut self.bias {
            b.accumulate(&grads.db);
        }
        grads.dx.unwrap_or_else(|| Tensor::zeros(x.shape()))
    }

    fn out_shape(&self, x: Shape) -> Shape {
        self.spec.out_shape(x, self.c_out)
    }

    fn macs(&self, x: Shape) -> u64 {
        self.spec.macs(x, self.c_out)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn clear_cache(&mut self) {
        self.cache_x.clear();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        match mode {
            CacheMode::Full => x.bytes() as u64,
            _ => 0,
        }
    }

    fn name(&self) -> &str {
        "conv2d"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Conv(Box::new(self.fused())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use crate::meter;
    use crate::module::param_count;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_macs() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(3, 8, ConvSpec::kxk(3, 2), true, &mut rng);
        let x = Shape::new(2, 3, 8, 8);
        assert_eq!(conv.out_shape(x), Shape::new(2, 8, 4, 4));
        assert_eq!(conv.macs(x), 2 * 4 * 4 * 8 * 3 * 9);
        let mut conv = conv;
        assert_eq!(param_count(&mut conv), 8 * 3 * 9 + 8);
    }

    #[test]
    fn gradients_pass_finite_diff() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(3, 4, ConvSpec::kxk(3, 1), true, &mut rng);
        let x = Tensor::randn(Shape::new(2, 3, 5, 5), 1.0, &mut rng);
        check_layer(&mut conv, &x, 2e-2);
    }

    #[test]
    fn cache_accounting_matches_analytic() {
        meter::reset();
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::pointwise(4, 8, false, &mut rng);
        let x = Tensor::randn(Shape::new(2, 4, 6, 6), 1.0, &mut rng);
        let _ = conv.forward(&x, CacheMode::Full);
        assert_eq!(meter::current() as u64, conv.cache_bytes(x.shape(), CacheMode::Full));
        let _ = conv.backward(&Tensor::zeros(conv.out_shape(x.shape())));
        assert_eq!(meter::current(), 0);
    }

    #[test]
    fn stats_mode_caches_nothing() {
        meter::reset();
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::pointwise(4, 8, false, &mut rng);
        let x = Tensor::randn(Shape::new(1, 4, 4, 4), 1.0, &mut rng);
        let _ = conv.forward(&x, CacheMode::Stats);
        assert_eq!(meter::current(), 0);
    }

    #[test]
    fn first_layer_returns_zero_dx() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(3, 4, ConvSpec::kxk(3, 1), false, &mut rng).first_layer();
        let x = Tensor::randn(Shape::new(1, 3, 4, 4), 1.0, &mut rng);
        let y = conv.forward(&x, CacheMode::Full);
        let dx = conv.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.sum(), 0.0);
        // Weight grads must still be produced.
        assert!(conv.weight().grad.abs_max() > 0.0);
    }

    #[test]
    #[should_panic(expected = "without Full forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::pointwise(2, 2, false, &mut rng);
        let _ = conv.backward(&Tensor::zeros(Shape::new(1, 2, 1, 1)));
    }
}
