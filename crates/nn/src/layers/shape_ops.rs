//! Parameter-free shape-changing layers: global average pooling, bilinear /
//! nearest upsampling, and the invertible SpaceToDepth rearrangement.

use crate::freeze::{FreezeError, FrozenLayer};
use crate::meter::Cached;
use crate::mode::CacheMode;
use crate::module::Layer;
use revbifpn_tensor::{
    depth_to_space, global_avg_pool, global_avg_pool_backward, resize_backward, space_to_depth,
    space_to_depth_shape, upsample, ResizeMode, Shape, Tensor,
};

/// Global average pooling to `[n, c, 1, 1]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    in_shape: Cached<Shape>,
}

impl GlobalAvgPool {
    /// Creates the layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        if mode == CacheMode::Full {
            self.in_shape.put(x.shape(), std::mem::size_of::<Shape>());
        }
        global_avg_pool(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let s = self.in_shape.take().expect("GlobalAvgPool::backward without Full forward");
        global_avg_pool_backward(dy, s)
    }

    fn out_shape(&self, x: Shape) -> Shape {
        Shape::new(x.n, x.c, 1, 1)
    }

    fn clear_cache(&mut self) {
        self.in_shape.clear();
    }

    fn cache_bytes(&self, _x: Shape, mode: CacheMode) -> u64 {
        if mode == CacheMode::Full {
            std::mem::size_of::<Shape>() as u64
        } else {
            0
        }
    }

    fn name(&self) -> &str {
        "gap"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::GlobalAvgPool)
    }
}

/// Upsampling by an integer factor (bilinear for "lu", nearest for "su").
#[derive(Debug)]
pub struct Upsample {
    factor: usize,
    mode: ResizeMode,
    in_shape: Cached<Shape>,
}

impl Upsample {
    /// Creates an upsampler.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(factor: usize, mode: ResizeMode) -> Self {
        assert!(factor > 0, "upsample factor must be positive");
        Self { factor, mode, in_shape: Cached::empty() }
    }

    /// The scale factor.
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl Layer for Upsample {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        if mode == CacheMode::Full {
            self.in_shape.put(x.shape(), std::mem::size_of::<Shape>());
        }
        upsample(x, self.factor, self.mode)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let s = self.in_shape.take().expect("Upsample::backward without Full forward");
        resize_backward(dy, s, self.mode)
    }

    fn out_shape(&self, x: Shape) -> Shape {
        x.with_hw(x.h * self.factor, x.w * self.factor)
    }

    fn clear_cache(&mut self) {
        self.in_shape.clear();
    }

    fn cache_bytes(&self, _x: Shape, mode: CacheMode) -> u64 {
        if mode == CacheMode::Full {
            std::mem::size_of::<Shape>() as u64
        } else {
            0
        }
    }

    fn name(&self) -> &str {
        "upsample"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::Upsample { factor: self.factor, mode: self.mode })
    }
}

/// SpaceToDepth rearrangement layer (the RevBiFPN stem body). Invertible and
/// orthonormal, hence its backward is [`depth_to_space`] with no cache at all.
#[derive(Debug)]
pub struct SpaceToDepth {
    block: usize,
}

impl SpaceToDepth {
    /// Creates the layer with block size `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    pub fn new(block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        Self { block }
    }

    /// Block size.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Exact inverse of the forward pass.
    pub fn inverse(&self, y: &Tensor) -> Tensor {
        depth_to_space(y, self.block)
    }
}

impl Layer for SpaceToDepth {
    fn forward(&mut self, x: &Tensor, _mode: CacheMode) -> Tensor {
        space_to_depth(x, self.block)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        depth_to_space(dy, self.block)
    }

    fn out_shape(&self, x: Shape) -> Shape {
        space_to_depth_shape(x, self.block)
    }

    fn name(&self) -> &str {
        "space_to_depth"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        Ok(FrozenLayer::SpaceToDepth { block: self.block })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gap_gradcheck() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(2, 3, 4, 4), 1.0, &mut rng);
        check_layer(&mut GlobalAvgPool::new(), &x, 1e-2);
    }

    #[test]
    fn upsample_bilinear_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(Shape::new(1, 2, 3, 3), 1.0, &mut rng);
        check_layer(&mut Upsample::new(2, ResizeMode::Bilinear), &x, 1e-2);
    }

    #[test]
    fn upsample_nearest_gradcheck() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(Shape::new(1, 2, 3, 3), 1.0, &mut rng);
        check_layer(&mut Upsample::new(2, ResizeMode::Nearest), &x, 1e-2);
    }

    #[test]
    fn s2d_gradcheck_and_inverse() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(Shape::new(1, 3, 4, 4), 1.0, &mut rng);
        let mut s2d = SpaceToDepth::new(2);
        check_layer(&mut s2d, &x, 1e-2);
        let y = s2d.forward(&x, CacheMode::None);
        assert_eq!(s2d.inverse(&y), x);
    }

    #[test]
    fn out_shapes() {
        assert_eq!(GlobalAvgPool::new().out_shape(Shape::new(2, 5, 7, 7)), Shape::new(2, 5, 1, 1));
        assert_eq!(
            Upsample::new(4, ResizeMode::Bilinear).out_shape(Shape::new(1, 2, 3, 3)),
            Shape::new(1, 2, 12, 12)
        );
        assert_eq!(SpaceToDepth::new(4).out_shape(Shape::new(1, 3, 8, 8)), Shape::new(1, 48, 2, 2));
    }
}
