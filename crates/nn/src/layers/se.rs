//! Squeeze-and-Excitation channel gating (Tan & Le 2019 variant with
//! hard-sigmoid gate). RevBiFPN applies SE on the high-resolution streams
//! (Ridnik et al. 2021; ablated in Table 5 of the paper).

use crate::freeze::{FreezeError, FrozenLayer};
use crate::layers::act::{HardSigmoid, Relu};
use crate::layers::conv::Conv2d;
use crate::meter::Cached;
use crate::mode::CacheMode;
use crate::module::Layer;
use crate::param::Param;
use rand::Rng;
use revbifpn_tensor::{global_avg_pool, global_avg_pool_backward, EpilogueAct, Shape, Tensor};

/// `y = x * gate(x)` where `gate = hsigmoid(W2 relu(W1 gap(x)))`.
#[derive(Debug)]
pub struct SqueezeExcite {
    reduce: Conv2d,
    expand: Conv2d,
    relu: Relu,
    hsig: HardSigmoid,
    c: usize,
    cache: Cached<(Tensor, Tensor)>,
}

impl SqueezeExcite {
    /// Creates an SE block on `c` channels with reduction ratio `ratio`
    /// (reduced width `max(4, c * ratio)`).
    ///
    /// # Panics
    ///
    /// Panics if `ratio <= 0`.
    pub fn new<R: Rng + ?Sized>(c: usize, ratio: f32, rng: &mut R) -> Self {
        assert!(ratio > 0.0, "SE ratio must be positive");
        let c_r = ((c as f32 * ratio).round() as usize).max(4).min(c);
        Self::with_reduced_channels(c, c_r, rng)
    }

    /// Creates an SE block with an explicit bottleneck width (EfficientNet
    /// computes the reduction from the MBConv *input* channels, not the
    /// expanded width).
    pub fn with_reduced_channels<R: Rng + ?Sized>(c: usize, c_r: usize, rng: &mut R) -> Self {
        let c_r = c_r.clamp(1, c);
        Self {
            reduce: Conv2d::pointwise(c, c_r, true, rng),
            expand: Conv2d::pointwise(c_r, c, true, rng),
            relu: Relu::new(),
            hsig: HardSigmoid::new(),
            c,
            cache: Cached::empty(),
        }
    }

    /// Reduced (bottleneck) channel count.
    pub fn reduced_channels(&self) -> usize {
        self.reduce.out_shape(Shape::new(1, self.c, 1, 1)).c
    }

    fn gate(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        let s = global_avg_pool(x);
        let r = self.reduce.forward(&s, mode);
        let r = self.relu.forward(&r, mode);
        let e = self.expand.forward(&r, mode);
        self.hsig.forward(&e, mode)
    }
}

impl Layer for SqueezeExcite {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        assert_eq!(x.shape().c, self.c, "SqueezeExcite channel mismatch");
        let g = self.gate(x, mode);
        let xs = x.shape();
        let mut y = x.clone();
        let hw = xs.hw();
        for n in 0..xs.n {
            for c in 0..self.c {
                let gv = g.data()[n * self.c + c];
                let base = (n * self.c + c) * hw;
                for v in &mut y.data_mut()[base..base + hw] {
                    *v *= gv;
                }
            }
        }
        if mode == CacheMode::Full {
            let bytes = x.bytes() + g.bytes();
            self.cache.put((x.clone(), g), bytes);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (x, g) = self.cache.take().expect("SqueezeExcite::backward without Full forward");
        let xs = x.shape();
        let hw = xs.hw();
        // Direct path: dx = dy * g (broadcast over hw).
        let mut dx = dy.clone();
        let mut dg = Tensor::zeros(Shape::new(xs.n, self.c, 1, 1));
        for n in 0..xs.n {
            for c in 0..self.c {
                let gv = g.data()[n * self.c + c];
                let base = (n * self.c + c) * hw;
                let mut acc = 0.0f32;
                for i in 0..hw {
                    acc += dy.data()[base + i] * x.data()[base + i];
                    dx.data_mut()[base + i] *= gv;
                }
                dg.data_mut()[n * self.c + c] = acc;
            }
        }
        // Gate path backward through hsig -> expand -> relu -> reduce -> gap.
        let de = self.hsig.backward(&dg);
        let dr = self.expand.backward(&de);
        let dr = self.relu.backward(&dr);
        let ds = self.reduce.backward(&dr);
        let dx_gate = global_avg_pool_backward(&ds, xs);
        dx.add_assign(&dx_gate);
        dx
    }

    fn macs(&self, x: Shape) -> u64 {
        let sv = Shape::new(x.n, self.c, 1, 1);
        let c_r = self.reduced_channels();
        self.reduce.macs(sv) + self.expand.macs(Shape::new(x.n, c_r, 1, 1)) + x.numel() as u64
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.reduce.visit_params(f);
        self.expand.visit_params(f);
    }

    fn clear_cache(&mut self) {
        self.reduce.clear_cache();
        self.expand.clear_cache();
        self.relu.clear_cache();
        self.hsig.clear_cache();
        self.cache.clear();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        if mode != CacheMode::Full {
            return 0;
        }
        let sv = Shape::new(x.n, self.c, 1, 1);
        let c_r = self.reduced_channels();
        let rv = Shape::new(x.n, c_r, 1, 1);
        // (x, gate) cache + sublayer caches on the tiny vectors.
        (x.bytes() + sv.bytes()) as u64
            + self.reduce.cache_bytes(sv, mode)
            + self.relu.cache_bytes(rv, mode)
            + self.expand.cache_bytes(rv, mode)
            + self.hsig.cache_bytes(sv, mode)
    }

    fn name(&self) -> &str {
        "squeeze_excite"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        let mut reduce = self.reduce.fused();
        let mut expand = self.expand.fused();
        reduce.try_set_act(EpilogueAct::Relu);
        expand.try_set_act(EpilogueAct::HardSigmoid);
        Ok(FrozenLayer::SqueezeExcite { reduce: Box::new(reduce), expand: Box::new(expand) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use crate::meter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gate_is_bounded_and_shape_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut se = SqueezeExcite::new(8, 0.25, &mut rng);
        let x = Tensor::randn(Shape::new(2, 8, 4, 4), 1.0, &mut rng);
        let y = se.forward(&x, CacheMode::None);
        assert_eq!(y.shape(), x.shape());
        // |y| <= |x| since gate in [0,1].
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!(a.abs() <= b.abs() + 1e-6);
        }
    }

    #[test]
    fn gradients_pass_finite_diff() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut se = SqueezeExcite::new(6, 0.5, &mut rng);
        let x = Tensor::randn(Shape::new(2, 6, 3, 3), 1.0, &mut rng);
        check_layer(&mut se, &x, 3e-2);
    }

    #[test]
    fn meter_matches_analytic() {
        let mut rng = StdRng::seed_from_u64(2);
        meter::reset();
        let mut se = SqueezeExcite::new(8, 0.25, &mut rng);
        let x = Tensor::randn(Shape::new(2, 8, 5, 5), 1.0, &mut rng);
        let _ = se.forward(&x, CacheMode::Full);
        assert_eq!(meter::current() as u64, se.cache_bytes(x.shape(), CacheMode::Full));
        se.clear_cache();
        assert_eq!(meter::current(), 0);
    }

    #[test]
    fn reduced_channels_floor() {
        let mut rng = StdRng::seed_from_u64(3);
        let se = SqueezeExcite::new(8, 0.25, &mut rng);
        assert_eq!(se.reduced_channels(), 4); // max(4, 8*0.25)
    }
}
