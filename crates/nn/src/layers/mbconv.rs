//! The MBConv inverted-bottleneck block (Howard et al. 2017; Sandler et al.
//! 2018) with squeeze-excite and hard-swish, exactly as RevBiFPN uses it:
//! for the reversible residual blocks' F/G transforms and for the RevSilo's
//! up-/down-sampling fusion transforms.
//!
//! Sampling geometry follows the paper (Section 3):
//! * downsample by `2^k`: depthwise stride `2^k`, kernel `2^(k+1) ± 1`;
//! * upsample by `2^k`: depthwise stride 1 (kernel 3 or 5) followed by
//!   bilinear upsampling.

use crate::freeze::{FreezeError, FrozenLayer};
use crate::layers::act::HardSwish;
use crate::layers::bn::BatchNorm2d;
use crate::layers::conv::Conv2d;
use crate::layers::dropout::{DropPath, Residual};
use crate::layers::se::SqueezeExcite;
use crate::layers::shape_ops::Upsample;
use crate::mode::CacheMode;
use crate::module::{Layer, Sequential};
use crate::param::Param;
use rand::Rng;
use revbifpn_tensor::{ConvSpec, ResizeMode, Shape, Tensor};

/// Configuration of one MBConv block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MBConvCfg {
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Expansion ratio of the inverted bottleneck (1 disables expansion).
    pub expansion: f32,
    /// Depthwise kernel size.
    pub kernel: usize,
    /// Depthwise stride (downsampling factor).
    pub stride: usize,
    /// Bilinear/nearest upsampling factor applied after the depthwise stage
    /// (1 = none). Mutually exclusive with `stride > 1` in practice.
    pub upsample: usize,
    /// Interpolation mode when `upsample > 1`.
    pub up_mode: ResizeMode,
    /// Squeeze-excite reduction ratio (0 disables SE).
    pub se_ratio: f32,
    /// Stochastic-depth drop probability (only used when residual).
    pub drop_path: f32,
    /// Suppresses the block's own skip connection even when shapes allow it.
    /// Used for the F/G transforms of reversible couplings, where the
    /// coupling itself provides the residual add.
    pub plain: bool,
    /// Forces zero-initialization of the projection BatchNorm. Implied when
    /// the block is residual; set explicitly for coupling transforms so the
    /// coupling starts as the identity.
    pub zero_init_project: bool,
}

impl MBConvCfg {
    /// A same-shape block: `c` -> `c`, stride 1, kernel `k`.
    pub fn same(c: usize, k: usize, expansion: f32) -> Self {
        Self {
            c_in: c,
            c_out: c,
            expansion,
            kernel: k,
            stride: 1,
            upsample: 1,
            up_mode: ResizeMode::Bilinear,
            se_ratio: 0.0,
            drop_path: 0.0,
            plain: false,
            zero_init_project: false,
        }
    }

    /// Downsampling block by factor `2^k_log2` using the paper's
    /// stride/kernel rule (`kernel = 2^(k_log2+1) + 1`).
    pub fn down(c_in: usize, c_out: usize, k_log2: u32, expansion: f32) -> Self {
        let stride = 1usize << k_log2;
        let kernel = (2usize << k_log2) + 1;
        Self { c_in, c_out, kernel, stride, ..Self::same(c_in, 3, expansion) }
            .with_c_out(c_out)
    }

    /// Upsampling block by factor `2^k_log2`: stride-1 depthwise (kernel 3)
    /// followed by bilinear upsampling ("lu" in the Table 3 ablation).
    pub fn up(c_in: usize, c_out: usize, k_log2: u32, expansion: f32) -> Self {
        Self { c_in, upsample: 1usize << k_log2, ..Self::same(c_in, 3, expansion) }.with_c_out(c_out)
    }

    /// Sets output channels.
    pub fn with_c_out(mut self, c_out: usize) -> Self {
        self.c_out = c_out;
        self
    }

    /// Enables squeeze-excite at `ratio`.
    pub fn with_se(mut self, ratio: f32) -> Self {
        self.se_ratio = ratio;
        self
    }

    /// Sets stochastic-depth probability.
    pub fn with_drop_path(mut self, p: f32) -> Self {
        self.drop_path = p;
        self
    }

    /// Sets the interpolation mode for upsampling blocks.
    pub fn with_up_mode(mut self, mode: ResizeMode) -> Self {
        self.up_mode = mode;
        self
    }

    /// Suppresses the block's own skip connection (see [`MBConvCfg::plain`]).
    pub fn plain(mut self) -> Self {
        self.plain = true;
        self
    }

    /// Forces zero-init of the projection BatchNorm (see
    /// [`MBConvCfg::zero_init_project`]).
    pub fn with_zero_init(mut self) -> Self {
        self.zero_init_project = true;
        self
    }

    /// Expanded (bottleneck-interior) channel count.
    pub fn c_mid(&self) -> usize {
        ((self.c_in as f32 * self.expansion).round() as usize).max(1)
    }

    /// `true` when the block keeps shape and therefore gets a skip
    /// connection.
    pub fn is_residual(&self) -> bool {
        !self.plain && self.c_in == self.c_out && self.stride == 1 && self.upsample == 1
    }
}

/// An MBConv block (see [`MBConvCfg`]).
#[derive(Debug)]
pub struct MBConv {
    cfg: MBConvCfg,
    inner: Box<dyn Layer>,
}

impl MBConv {
    /// Builds the block from its configuration.
    ///
    /// The final BatchNorm is zero-initialized when the block is residual
    /// (paper Section 3, citing Kingma & Dhariwal 2018).
    pub fn new<R: Rng + ?Sized>(cfg: MBConvCfg, rng: &mut R) -> Self {
        let c_mid = cfg.c_mid();
        let mut seq = Sequential::new();
        if (cfg.expansion - 1.0).abs() > 1e-6 || cfg.c_in != c_mid {
            seq.add(Box::new(Conv2d::pointwise(cfg.c_in, c_mid, false, rng)));
            seq.add(Box::new(BatchNorm2d::new(c_mid)));
            seq.add(Box::new(HardSwish::new()));
        }
        seq.add(Box::new(Conv2d::new(
            c_mid,
            c_mid,
            ConvSpec::depthwise(cfg.kernel, cfg.stride, c_mid),
            false,
            rng,
        )));
        seq.add(Box::new(BatchNorm2d::new(c_mid)));
        seq.add(Box::new(HardSwish::new()));
        if cfg.se_ratio > 0.0 {
            // EfficientNet convention: the SE bottleneck width is computed
            // from the block's input channels, not the expanded width.
            let c_r = ((cfg.c_in as f32 * cfg.se_ratio).round() as usize).max(4);
            seq.add(Box::new(SqueezeExcite::with_reduced_channels(c_mid, c_r, rng)));
        }
        seq.add(Box::new(Conv2d::pointwise(c_mid, cfg.c_out, false, rng)));
        let project_bn = if cfg.is_residual() || cfg.zero_init_project {
            BatchNorm2d::new(cfg.c_out).zero_init()
        } else {
            BatchNorm2d::new(cfg.c_out)
        };
        seq.add(Box::new(project_bn));
        // Paper, Section 3: the MBConv block "is then followed by bilinear
        // upsampling" — the interpolation comes last, so every convolution
        // runs at the cheap source resolution.
        if cfg.upsample > 1 {
            seq.add(Box::new(Upsample::new(cfg.upsample, cfg.up_mode)));
        }

        let inner: Box<dyn Layer> = if cfg.is_residual() {
            let seed: u64 = rand::RngExt::random(rng);
            Box::new(Residual::new(Box::new(seq), cfg.drop_path, seed))
        } else {
            // Plain blocks used inside reversible couplings apply stochastic
            // depth to their own output: the coupling's additive skip makes
            // this equivalent to dropping the residual branch.
            if cfg.plain && cfg.drop_path > 0.0 {
                let seed: u64 = rand::RngExt::random(rng);
                seq.add(Box::new(DropPath::new(cfg.drop_path, seed)));
            }
            Box::new(seq)
        };
        Self { cfg, inner }
    }

    /// The block's configuration.
    pub fn cfg(&self) -> MBConvCfg {
        self.cfg
    }
}

impl Layer for MBConv {
    fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        assert_eq!(x.shape().c, self.cfg.c_in, "MBConv input channel mismatch");
        self.inner.forward(x, mode)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.inner.backward(dy)
    }

    fn out_shape(&self, x: Shape) -> Shape {
        self.inner.out_shape(x)
    }

    fn macs(&self, x: Shape) -> u64 {
        self.inner.macs(x)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.inner.visit_buffers(f);
    }

    fn visit_bn(&mut self, f: &mut dyn FnMut(&mut crate::layers::BatchNorm2d)) {
        self.inner.visit_bn(f);
    }

    fn clear_cache(&mut self) {
        self.inner.clear_cache();
    }

    fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        self.inner.cache_bytes(x, mode)
    }

    fn name(&self) -> &str {
        "mbconv"
    }

    fn freeze(&self) -> Result<FrozenLayer, FreezeError> {
        self.inner.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_training_mode;
    use crate::meter;
    use crate::module::param_count;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn same_block_shape_and_residual() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MBConvCfg::same(8, 3, 2.0).with_se(0.25);
        assert!(cfg.is_residual());
        assert_eq!(cfg.c_mid(), 16);
        let mut b = MBConv::new(cfg, &mut rng);
        let x = Tensor::randn(Shape::new(2, 8, 6, 6), 1.0, &mut rng);
        let y = b.forward(&x, CacheMode::Full);
        assert_eq!(y.shape(), x.shape());
        // Zero-init BN on the projection: residual block is initially identity.
        assert!(y.max_abs_diff(&x) < 1e-5);
        b.clear_cache();
    }

    #[test]
    fn down_block_halves_resolution() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MBConvCfg::down(8, 12, 1, 2.0);
        assert_eq!(cfg.stride, 2);
        assert_eq!(cfg.kernel, 5);
        assert!(!cfg.is_residual());
        let b = MBConv::new(cfg, &mut rng);
        assert_eq!(b.out_shape(Shape::new(1, 8, 8, 8)), Shape::new(1, 12, 4, 4));
    }

    #[test]
    fn up_block_doubles_resolution() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MBConvCfg::up(8, 6, 1, 2.0);
        let b = MBConv::new(cfg, &mut rng);
        assert_eq!(b.out_shape(Shape::new(1, 8, 4, 4)), Shape::new(1, 6, 8, 8));
    }

    #[test]
    fn down4_uses_kernel9() {
        let cfg = MBConvCfg::down(4, 4, 2, 1.0);
        assert_eq!(cfg.stride, 4);
        assert_eq!(cfg.kernel, 9);
    }

    #[test]
    fn gradients_pass_finite_diff() {
        let mut rng = StdRng::seed_from_u64(3);
        // Non-residual down block exercises expand+dw+project.
        let cfg = MBConvCfg::down(4, 6, 1, 1.5).with_se(0.5);
        let mut b = MBConv::new(cfg, &mut rng);
        let x = Tensor::randn(Shape::new(2, 4, 6, 6), 1.0, &mut rng);
        check_layer_training_mode(&mut b, &x, 5e-2);
    }

    #[test]
    fn residual_gradients_pass_finite_diff() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = MBConvCfg::same(6, 3, 2.0);
        let mut b = MBConv::new(cfg, &mut rng);
        // Make the zero-init BN non-degenerate for the check.
        b.visit_params(&mut |p| {
            if p.name == "bn.gamma" && p.value.abs_max() == 0.0 {
                p.value.map_inplace(|_| 0.5);
            }
        });
        let x = Tensor::randn(Shape::new(2, 6, 5, 5), 1.0, &mut rng);
        // Composite block: hard-swish kinks inflate finite-difference error,
        // so the tolerance is looser than in the per-layer checks.
        check_layer_training_mode(&mut b, &x, 1.2e-1);
    }

    #[test]
    fn cache_accounting_matches_meter() {
        let mut rng = StdRng::seed_from_u64(5);
        meter::reset();
        let cfg = MBConvCfg::same(8, 3, 2.0).with_se(0.25);
        let mut b = MBConv::new(cfg, &mut rng);
        let x = Tensor::randn(Shape::new(2, 8, 8, 8), 1.0, &mut rng);
        let _ = b.forward(&x, CacheMode::Full);
        assert_eq!(meter::current() as u64, b.cache_bytes(x.shape(), CacheMode::Full));
        b.clear_cache();
        let _ = b.forward(&x, CacheMode::Stats);
        assert_eq!(meter::current() as u64, b.cache_bytes(x.shape(), CacheMode::Stats));
        b.clear_cache();
        assert_eq!(meter::current(), 0);
    }

    #[test]
    fn param_count_is_positive_and_stable() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut b = MBConv::new(MBConvCfg::same(8, 3, 4.0), &mut rng);
        let n = param_count(&mut b);
        // expand 8*32 + bn 64 + dw 32*9 + bn 64 + project 32*8 + bn 16
        assert_eq!(n, 8 * 32 + 64 + 32 * 9 + 64 + 32 * 8 + 16);
    }
}
