//! Weight checkpointing: save/load every parameter reachable through a
//! `visit_params`-style visitor to a simple, versioned binary format.
//!
//! The format is deliberately minimal (magic, version, per-parameter name +
//! element count + little-endian f32 payload) and the loader validates
//! names and shapes in visit order, so a checkpoint can only be restored
//! into the architecture that produced it.

use crate::param::Param;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"RBFNCKP1";

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Saves all visited parameters to `path`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_params<P: AsRef<Path>>(
    path: P,
    visit: impl FnOnce(&mut dyn FnMut(&mut Param)),
) -> io::Result<()> {
    // First pass into memory: visitors are FnOnce, so collect everything.
    let mut blobs: Vec<(String, Vec<f32>)> = Vec::new();
    visit(&mut |p: &mut Param| {
        blobs.push((p.name.to_string(), p.value.data().to_vec()));
    });
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u64(&mut w, blobs.len() as u64)?;
    for (name, data) in &blobs {
        write_u64(&mut w, name.len() as u64)?;
        w.write_all(name.as_bytes())?;
        write_u64(&mut w, data.len() as u64)?;
        for v in data {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Loads parameters from `path` into the visited parameters, in order.
///
/// # Errors
///
/// Fails with `InvalidData` on magic/count/name/shape mismatches, so a
/// checkpoint cannot silently load into a different architecture.
pub fn load_params<P: AsRef<Path>>(
    path: P,
    visit: impl FnOnce(&mut dyn FnMut(&mut Param)),
) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a RevBiFPN checkpoint"));
    }
    let count = read_u64(&mut r)? as usize;
    // Read everything up front (visitor is FnOnce and infallible).
    let mut blobs: Vec<(String, Vec<f32>)> = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u64(&mut r)? as usize;
        if name_len > 4096 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "parameter name too long"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 parameter name"))?;
        let numel = read_u64(&mut r)? as usize;
        let mut data = vec![0f32; numel];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        blobs.push((name, data));
    }
    let mut idx = 0usize;
    let mut error: Option<String> = None;
    visit(&mut |p: &mut Param| {
        if error.is_some() {
            return;
        }
        match blobs.get(idx) {
            None => error = Some(format!("checkpoint has {count} parameters, model has more")),
            Some((name, data)) => {
                if name != p.name {
                    error = Some(format!("parameter {idx}: checkpoint '{name}' vs model '{}'", p.name));
                } else if data.len() != p.numel() {
                    error = Some(format!(
                        "parameter {idx} ('{name}'): checkpoint {} elements vs model {}",
                        data.len(),
                        p.numel()
                    ));
                } else {
                    p.value.data_mut().copy_from_slice(data);
                }
            }
        }
        idx += 1;
    });
    if let Some(e) = error {
        return Err(io::Error::new(io::ErrorKind::InvalidData, e));
    }
    if idx != count {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint has {count} parameters, model visited {idx}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use revbifpn_tensor::{Shape, Tensor};

    fn params() -> Vec<Param> {
        vec![
            Param::new(Tensor::full(Shape::vector(4), 1.5), true, "conv.weight"),
            Param::new(Tensor::full(Shape::vector(2), -0.5), false, "bn.gamma"),
        ]
    }

    #[test]
    fn roundtrip_restores_values() {
        let dir = std::env::temp_dir().join("revbifpn_ckpt_test_rt");
        let mut ps = params();
        save_params(&dir, |f| ps.iter_mut().for_each(f)).unwrap();
        let mut qs = params();
        qs[0].value.fill_zero();
        qs[1].value.fill_zero();
        load_params(&dir, |f| qs.iter_mut().for_each(f)).unwrap();
        assert_eq!(qs[0].value.data(), ps[0].value.data());
        assert_eq!(qs[1].value.data(), ps[1].value.data());
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn name_mismatch_is_rejected() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_name");
        let mut ps = params();
        save_params(&path, |f| ps.iter_mut().for_each(f)).unwrap();
        let mut other = vec![Param::new(Tensor::zeros(Shape::vector(4)), true, "linear.weight")];
        let err = load_params(&path, |f| other.iter_mut().for_each(f)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_shape");
        let mut ps = params();
        save_params(&path, |f| ps.iter_mut().for_each(f)).unwrap();
        let mut other = vec![
            Param::new(Tensor::zeros(Shape::vector(3)), true, "conv.weight"),
            Param::new(Tensor::zeros(Shape::vector(2)), false, "bn.gamma"),
        ];
        assert!(load_params(&path, |f| other.iter_mut().for_each(f)).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_model_is_rejected() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_trunc");
        let mut ps = params();
        save_params(&path, |f| ps.iter_mut().for_each(f)).unwrap();
        let mut fewer = vec![Param::new(Tensor::zeros(Shape::vector(4)), true, "conv.weight")];
        assert!(load_params(&path, |f| fewer.iter_mut().for_each(f)).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_magic");
        std::fs::write(&path, b"NOTACKPT").unwrap();
        let mut ps = params();
        assert!(load_params(&path, |f| ps.iter_mut().for_each(f)).is_err());
        let _ = std::fs::remove_file(path);
    }
}
