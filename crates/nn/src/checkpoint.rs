//! Crash-safe checkpointing: save/load named f32 blobs (and every parameter
//! reachable through a `visit_params`-style visitor) to a versioned,
//! integrity-checked binary format.
//!
//! # Format v2 (`RBFNCKP2`)
//!
//! ```text
//! magic    8 bytes  b"RBFNCKP2"
//! version  4 bytes  u32 LE, currently 2
//! count    8 bytes  u64 LE, number of blobs
//! blob * count:
//!   name_len  8 bytes  u64 LE
//!   name      name_len bytes, UTF-8
//!   numel     8 bytes  u64 LE
//!   payload   numel * 4 bytes, f32 LE
//!   crc       4 bytes  u32 LE, CRC32 (IEEE) over name ‖ numel LE ‖ payload
//! ```
//!
//! Robustness properties:
//!
//! - **Atomic writes**: data is written to `<path>.tmp`, flushed and fsynced,
//!   then renamed over `path` (with a best-effort directory fsync), so a
//!   crash mid-write can never leave a half-written file at `path`.
//! - **Per-blob CRC32** over the name, element count, and payload: any
//!   single-byte corruption is rejected at load time.
//! - **Bounds-checked parsing** from an in-memory buffer: corrupt length
//!   fields are rejected before any allocation is sized from them, and
//!   trailing garbage after the last blob is an error.
//! - The *entire* file is parsed and CRC-verified before any model mutation,
//!   so a corrupt checkpoint never partially overwrites a model; only an
//!   architecture mismatch (different name/shape in visit order) can error
//!   out mid-load.
//!
//! The v1 magic (`RBFNCKP1`, no CRCs) is explicitly rejected.

use crate::param::Param;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"RBFNCKP2";
const VERSION: u32 = 2;
const MAX_NAME_LEN: usize = 4096;

/// One-shot CRC32 of `data` (the artifact container shares the checkpoint
/// polynomial so there is exactly one CRC implementation in the tree).
pub(crate) fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xffff_ffff, data)
}

/// Slice-by-8 CRC32 tables: `CRC_TABLES[0]` is the classic byte-at-a-time
/// table; `CRC_TABLES[k][b]` is the CRC of byte `b` followed by `k` zero
/// bytes, so eight bytes fold in one step. Built at compile time.
static CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = (crc >> 1) ^ if crc & 1 != 0 { 0xedb8_8320 } else { 0 };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`, seeded by
/// `seed` so multi-slice digests can be chained. Slice-by-8: artifact opens
/// CRC the whole structure stream on the serving cold path, so this runs at
/// memory speed rather than byte-at-a-time.
fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes(c[..4].try_into().unwrap());
        let hi = u32::from_le_bytes(c[4..].try_into().unwrap());
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xff) as usize];
    }
    crc
}

fn blob_crc(name: &str, data: &[f32]) -> u32 {
    let mut crc = crc32_update(0xffff_ffff, name.as_bytes());
    crc = crc32_update(crc, &(data.len() as u64).to_le_bytes());
    for v in data {
        crc = crc32_update(crc, &v.to_le_bytes());
    }
    !crc
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Saves named f32 blobs to `path` atomically (tmp + fsync + rename).
///
/// Any stale `<path>.tmp` left by an earlier crash is overwritten.
///
/// The write goes through [`crate::artifact::write_atomic`]: tmp + fsync of
/// both the file and its parent directory + rename, transient errors
/// retried under the bounded `io.retries` budget. A directory-fsync
/// failure is propagated — the rename may not survive power loss, so the
/// caller must not record the step as checkpointed.
///
/// # Errors
///
/// Propagates I/O errors; unless the failure happened after the rename,
/// the destination `path` is left untouched.
pub fn save_blobs<P: AsRef<Path>>(path: P, blobs: &[(String, Vec<f32>)]) -> io::Result<()> {
    let path = path.as_ref();
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(blobs.len() as u64).to_le_bytes());
    for (name, data) in blobs {
        buf.extend_from_slice(&(name.len() as u64).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
        for v in data {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&blob_crc(name, data).to_le_bytes());
    }
    crate::artifact::write_atomic(path, &buf)
}

/// The temporary sibling used by [`save_blobs`] for atomic writes.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Loads all named f32 blobs from `path`, verifying structure and per-blob
/// CRCs before returning anything.
///
/// # Errors
///
/// Fails with `InvalidData` on a bad magic/version, any out-of-bounds length
/// field, CRC mismatch, non-UTF-8 name, or trailing bytes after the last
/// blob; propagates underlying I/O errors.
pub fn load_blobs<P: AsRef<Path>>(path: P) -> io::Result<Vec<(String, Vec<f32>)>> {
    let buf = fs::read(path)?;
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> io::Result<&[u8]> {
        let end = pos.checked_add(n).filter(|&e| e <= buf.len()).ok_or_else(|| {
            bad(format!("checkpoint truncated: need {} bytes at offset {}", n, *pos))
        })?;
        let s = &buf[*pos..end];
        *pos = end;
        Ok(s)
    };
    if take(&mut pos, 8)? != MAGIC {
        return Err(bad("not a RevBiFPN v2 checkpoint"));
    }
    let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
    if version != VERSION {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    let count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    let mut blobs: Vec<(String, Vec<f32>)> = Vec::new();
    for i in 0..count {
        let name_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        if name_len > MAX_NAME_LEN {
            return Err(bad(format!("blob {i}: name length {name_len} too long")));
        }
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| bad(format!("blob {i}: non-utf8 name")))?;
        let numel = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        // Bounds-check before allocating: a corrupt numel must not drive a
        // huge allocation.
        let payload_bytes =
            numel.checked_mul(4).filter(|&b| pos + b <= buf.len()).ok_or_else(|| {
                bad(format!("blob {i} ('{name}'): payload of {numel} elements exceeds file size"))
            })?;
        let payload = take(&mut pos, payload_bytes)?;
        let data: Vec<f32> =
            payload.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        let crc = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if crc != blob_crc(&name, &data) {
            return Err(bad(format!("blob {i} ('{name}'): CRC mismatch, checkpoint corrupt")));
        }
        blobs.push((name, data));
    }
    if pos != buf.len() {
        return Err(bad(format!("{} trailing bytes after last blob", buf.len() - pos)));
    }
    Ok(blobs)
}

/// Saves all visited parameters to `path` (atomically, format v2).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_params<P: AsRef<Path>>(
    path: P,
    visit: impl FnOnce(&mut dyn FnMut(&mut Param)),
) -> io::Result<()> {
    // First pass into memory: visitors are FnOnce, so collect everything.
    let mut blobs: Vec<(String, Vec<f32>)> = Vec::new();
    visit(&mut |p: &mut Param| {
        blobs.push((p.name.to_string(), p.value.data().to_vec()));
    });
    save_blobs(path, &blobs)
}

/// Loads parameters from `path` into the visited parameters, in order.
///
/// The whole file is parsed and CRC-verified before any parameter is
/// touched, so a *corrupt* checkpoint never mutates the model. A checkpoint
/// from a different architecture (name/shape mismatch) errors out mid-visit
/// and may leave earlier parameters already loaded; treat the model as
/// undefined after such an error.
///
/// # Errors
///
/// Fails with `InvalidData` on magic/CRC/count/name/shape mismatches, so a
/// corrupt checkpoint or one from a different architecture can never load.
pub fn load_params<P: AsRef<Path>>(
    path: P,
    visit: impl FnOnce(&mut dyn FnMut(&mut Param)),
) -> io::Result<()> {
    let blobs = load_blobs(path)?;
    let count = blobs.len();
    let mut idx = 0usize;
    let mut error: Option<String> = None;
    visit(&mut |p: &mut Param| {
        if error.is_some() {
            return;
        }
        match blobs.get(idx) {
            None => error = Some(format!("checkpoint has {count} parameters, model has more")),
            Some((name, data)) => {
                if name != p.name {
                    error =
                        Some(format!("parameter {idx}: checkpoint '{name}' vs model '{}'", p.name));
                } else if data.len() != p.numel() {
                    error = Some(format!(
                        "parameter {idx} ('{name}'): checkpoint {} elements vs model {}",
                        data.len(),
                        p.numel()
                    ));
                } else {
                    p.value.data_mut().copy_from_slice(data);
                }
            }
        }
        idx += 1;
    });
    if let Some(e) = error {
        return Err(bad(e));
    }
    if idx != count {
        return Err(bad(format!("checkpoint has {count} parameters, model visited {idx}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use revbifpn_tensor::{Shape, Tensor};

    fn params() -> Vec<Param> {
        vec![
            Param::new(Tensor::full(Shape::vector(4), 1.5), true, "conv.weight"),
            Param::new(Tensor::full(Shape::vector(2), -0.5), false, "bn.gamma"),
        ]
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // CRC32("123456789") = 0xCBF43926 (IEEE check value).
        assert_eq!(!crc32_update(0xffff_ffff, b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn roundtrip_restores_values() {
        let dir = std::env::temp_dir().join("revbifpn_ckpt_test_rt");
        let mut ps = params();
        save_params(&dir, |f| ps.iter_mut().for_each(f)).unwrap();
        let mut qs = params();
        qs[0].value.fill_zero();
        qs[1].value.fill_zero();
        load_params(&dir, |f| qs.iter_mut().for_each(f)).unwrap();
        assert_eq!(qs[0].value.data(), ps[0].value.data());
        assert_eq!(qs[1].value.data(), ps[1].value.data());
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn blob_roundtrip_preserves_everything() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_blobs");
        let blobs = vec![
            ("meta".to_string(), vec![2.0, 17.0]),
            ("empty".to_string(), vec![]),
            ("w".to_string(), vec![-0.25; 9]),
        ];
        save_blobs(&path, &blobs).unwrap();
        assert!(!tmp_path(&path).exists(), "tmp file must not survive a successful save");
        assert_eq!(load_blobs(&path).unwrap(), blobs);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn name_mismatch_is_rejected() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_name");
        let mut ps = params();
        save_params(&path, |f| ps.iter_mut().for_each(f)).unwrap();
        let mut other = vec![Param::new(Tensor::zeros(Shape::vector(4)), true, "linear.weight")];
        let err = load_params(&path, |f| other.iter_mut().for_each(f)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_shape");
        let mut ps = params();
        save_params(&path, |f| ps.iter_mut().for_each(f)).unwrap();
        let mut other = vec![
            Param::new(Tensor::zeros(Shape::vector(3)), true, "conv.weight"),
            Param::new(Tensor::zeros(Shape::vector(2)), false, "bn.gamma"),
        ];
        assert!(load_params(&path, |f| other.iter_mut().for_each(f)).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corrupt_load_leaves_model_untouched() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_atomic_load");
        let mut ps = params();
        save_params(&path, |f| ps.iter_mut().for_each(f)).unwrap();
        // Corrupt a payload byte: CRC validation happens before any model
        // mutation, so the target params must stay exactly as they were.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[50] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut other = params();
        other[0].value.fill_zero();
        assert!(load_params(&path, |f| other.iter_mut().for_each(f)).is_err());
        assert_eq!(other[0].value.data(), &[0.0; 4]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_model_is_rejected() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_trunc");
        let mut ps = params();
        save_params(&path, |f| ps.iter_mut().for_each(f)).unwrap();
        let mut fewer = vec![Param::new(Tensor::zeros(Shape::vector(4)), true, "conv.weight")];
        assert!(load_params(&path, |f| fewer.iter_mut().for_each(f)).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_magic");
        std::fs::write(&path, b"NOTACKPT").unwrap();
        let mut ps = params();
        assert!(load_params(&path, |f| ps.iter_mut().for_each(f)).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn v1_magic_is_rejected() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_v1");
        // A minimal v1 file: old magic + zero params.
        let mut v1 = b"RBFNCKP1".to_vec();
        v1.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, v1).unwrap();
        assert!(load_blobs(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn single_byte_corruption_is_rejected() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_flip");
        let mut ps = params();
        save_params(&path, |f| ps.iter_mut().for_each(f)).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one byte inside the first payload (after magic+version+count+
        // name_len+name("conv.weight")+numel = 8+4+8+8+11+8 = 47).
        let mut dirty = clean.clone();
        dirty[48] ^= 0x10;
        std::fs::write(&path, &dirty).unwrap();
        assert!(load_blobs(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corrupt_numel_does_not_allocate() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_numel");
        let mut ps = params();
        save_params(&path, |f| ps.iter_mut().for_each(f)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Overwrite the first blob's numel (offset 39) with u64::MAX: the
        // loader must reject it via bounds checking, not try to allocate.
        bytes[39..47].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_blobs(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stale_tmp_is_replaced_by_next_save() {
        let path = std::env::temp_dir().join("revbifpn_ckpt_test_stale_tmp");
        std::fs::write(tmp_path(&path), b"garbage from a crashed writer").unwrap();
        let blobs = vec![("x".to_string(), vec![1.0, 2.0])];
        save_blobs(&path, &blobs).unwrap();
        assert!(!tmp_path(&path).exists());
        assert_eq!(load_blobs(&path).unwrap(), blobs);
        let _ = std::fs::remove_file(path);
    }
}
