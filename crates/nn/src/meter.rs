//! Byte-exact accounting of activations cached for the backward pass.
//!
//! Every layer that retains state between forward and backward registers the
//! retained bytes here (via [`Cached`]). The meter therefore measures exactly
//! the quantity the RevBiFPN paper's memory figures are about: how many
//! activation bytes must be *resident simultaneously* to run backprop.
//!
//! The meter is thread-local, so parallel tests do not interfere.
//!
//! Alongside activation accounting, this module re-exports the kernel
//! scratch-arena counters from `revbifpn_tensor` (see [`scratch_stats`]) so
//! training loops can assert that steady-state conv/GEMM calls perform zero
//! heap allocations, and [`report`] bundles both views into one snapshot.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub use revbifpn_tensor::scratch::{
    reset_stats as reset_scratch_stats, stats as scratch_stats, ScratchStats,
};

thread_local! {
    // Signed so that an *isolated* task (see [`isolated`]) may release a
    // cache entry that was registered on a different thread: inside an
    // isolation scope the local counter is a delta, and deltas go negative.
    // Outside isolation the counter never drops below zero (debug-asserted).
    static CURRENT: Cell<i64> = const { Cell::new(0) };
    static PEAK: Cell<i64> = const { Cell::new(0) };
    static PACKED: Cell<usize> = const { Cell::new(0) };
    static QUANT_PACKED: Cell<usize> = const { Cell::new(0) };
    static EVENTS: RefCell<BTreeMap<&'static str, u64>> = const { RefCell::new(BTreeMap::new()) };
    /// Nesting depth of [`isolated`] scopes on this thread.
    static ISOLATION: Cell<u32> = const { Cell::new(0) };
}

/// Resets both the current and peak counters to zero.
///
/// Named event counters are *not* cleared: training loops call [`reset`]
/// every step to re-arm the peak tracker, while events (drift warnings,
/// skipped steps, ...) are run-level statistics. Use [`reset_events`] for
/// those.
pub fn reset() {
    CURRENT.with(|c| c.set(0));
    PEAK.with(|p| p.set(0));
}

/// Increments the named event counter by one.
///
/// Events are thread-local run-level counters (e.g. `"rev.drift_warn"`,
/// `"train.nonfinite_step"`) that survive the per-step byte-meter [`reset`].
pub fn count(name: &'static str) {
    count_n(name, 1);
}

/// Increments the named event counter by `n`.
pub fn count_n(name: &'static str, n: u64) {
    EVENTS.with(|e| *e.borrow_mut().entry(name).or_insert(0) += n);
}

/// Current value of the named event counter (0 if never incremented).
pub fn event_count(name: &str) -> u64 {
    EVENTS.with(|e| e.borrow().get(name).copied().unwrap_or(0))
}

/// Snapshot of all named event counters, sorted by name.
pub fn events() -> Vec<(&'static str, u64)> {
    EVENTS.with(|e| e.borrow().iter().map(|(&k, &v)| (k, v)).collect())
}

/// Clears all named event counters.
pub fn reset_events() {
    EVENTS.with(|e| e.borrow_mut().clear());
}

/// Registers `bytes` of newly cached activation state.
pub fn add(bytes: usize) {
    CURRENT.with(|c| {
        let v = c.get() + bytes as i64;
        c.set(v);
        PEAK.with(|p| {
            if v > p.get() {
                p.set(v);
            }
        });
    });
}

/// Releases `bytes` of cached activation state.
///
/// # Panics
///
/// Debug builds panic on under-release (a layer freeing more than it
/// registered), which would indicate an accounting bug. Inside an
/// [`isolated`] scope the check is waived: a task may legitimately release
/// state registered on the dispatching thread, which shows up locally as a
/// negative delta that [`absorb`] later reconciles.
pub fn sub(bytes: usize) {
    CURRENT.with(|c| {
        debug_assert!(
            ISOLATION.with(|d| d.get()) > 0 || c.get() >= bytes as i64,
            "memory meter under-release: {} < {}",
            c.get(),
            bytes
        );
        c.set(c.get() - bytes as i64);
    });
}

/// Bytes currently registered as cached.
pub fn current() -> usize {
    CURRENT.with(|c| c.get().max(0) as usize)
}

/// Registers `bytes` of persistently packed inference weights (frozen-model
/// GEMM panels). Tracked separately from the per-step activation counters:
/// packed weights live for the lifetime of a frozen model and must survive
/// the per-step [`reset`].
pub fn add_packed(bytes: usize) {
    PACKED.with(|p| p.set(p.get() + bytes));
}

/// Releases `bytes` of packed inference weights (frozen model dropped).
pub fn sub_packed(bytes: usize) {
    PACKED.with(|p| p.set(p.get().saturating_sub(bytes)));
}

/// Bytes of packed inference weights currently resident on this thread.
pub fn packed_current() -> usize {
    PACKED.with(|p| p.get())
}

/// Registers `bytes` of quantized (int8) packed inference weights. Same
/// drop-released gauge discipline as [`add_packed`], tracked separately so
/// f32-vs-int8 residency can be compared (e.g. in serve health snapshots).
pub fn add_quant_packed(bytes: usize) {
    QUANT_PACKED.with(|p| p.set(p.get() + bytes));
}

/// Releases `bytes` of quantized packed inference weights.
pub fn sub_quant_packed(bytes: usize) {
    QUANT_PACKED.with(|p| p.set(p.get().saturating_sub(bytes)));
}

/// Bytes of quantized packed inference weights currently resident on this
/// thread.
pub fn quant_packed_current() -> usize {
    QUANT_PACKED.with(|p| p.get())
}

/// High-water mark since the last [`reset`].
pub fn peak() -> usize {
    PEAK.with(|p| p.get().max(0) as usize)
}

/// Byte/event deltas produced by one [`isolated`] task, ready to be
/// [`absorb`]ed into the dispatching thread's meter.
#[derive(Clone, Debug, Default)]
pub struct TaskMeter {
    /// Net change in cached activation bytes (may be negative when the task
    /// released caches registered by the dispatcher).
    pub cached_delta: i64,
    /// The task's own cached-bytes high-water mark, relative to the bytes
    /// resident when the task started. Never negative.
    pub peak_above_start: i64,
    /// Per-name event-counter increments recorded during the task.
    pub events: Vec<(&'static str, u64)>,
}

/// Runs `f` with this thread's meter state fenced off: on return the
/// thread's counters are exactly as they were before the call, and the
/// task's net effect is returned as a [`TaskMeter`] delta.
///
/// This is the bridge between the thread-local meter and task parallelism:
/// a worker executing a borrowed task must not leak meter state into
/// whatever job the pool hands it next, and the dispatching thread — which
/// owns the model being worked on — wants the task's accounting as if it
/// had run locally. Wrap the task body in `isolated`, send the `TaskMeter`
/// back, and [`absorb`] it on the dispatcher in task order: the resulting
/// `current()` trace is byte-identical to running the tasks sequentially
/// on the dispatcher, for any thread count.
pub fn isolated<R>(f: impl FnOnce() -> R) -> (R, TaskMeter) {
    struct Guard {
        current: i64,
        peak: i64,
        packed: usize,
        quant_packed: usize,
        events: BTreeMap<&'static str, u64>,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            ISOLATION.with(|d| d.set(d.get() - 1));
            CURRENT.with(|c| c.set(self.current));
            PEAK.with(|p| p.set(self.peak));
            PACKED.with(|p| p.set(self.packed));
            QUANT_PACKED.with(|p| p.set(self.quant_packed));
            EVENTS.with(|e| *e.borrow_mut() = std::mem::take(&mut self.events));
        }
    }
    let guard = Guard {
        current: CURRENT.with(|c| c.get()),
        peak: PEAK.with(|p| p.get()),
        packed: PACKED.with(|p| p.get()),
        quant_packed: QUANT_PACKED.with(|p| p.get()),
        events: EVENTS.with(|e| e.borrow().clone()),
    };
    ISOLATION.with(|d| d.set(d.get() + 1));
    // Track the task's own excursion: re-arm the peak tracker at the
    // current level so PEAK − start measures this task alone.
    PEAK.with(|p| p.set(guard.current));
    EVENTS.with(|e| e.borrow_mut().clear());
    let r = f();
    let cached_delta = CURRENT.with(|c| c.get()) - guard.current;
    let peak_above_start = (PEAK.with(|p| p.get()) - guard.current).max(0);
    let events: Vec<(&'static str, u64)> =
        EVENTS.with(|e| e.borrow().iter().map(|(&k, &v)| (k, v)).collect());
    drop(guard);
    (r, TaskMeter { cached_delta, peak_above_start, events })
}

/// Applies one [`isolated`] task's deltas to this thread's meter.
///
/// Absorbing in task order reproduces the byte trace of a sequential run:
/// the peak is advanced as if the task's excursion happened at the absorb
/// point, on top of whatever is currently resident. (Physical concurrent
/// residency can exceed this serial-equivalent model by up to the number
/// of simultaneously active tasks; the meter deliberately reports the
/// schedule-independent quantity so tests stay exact.)
pub fn absorb(m: &TaskMeter) {
    CURRENT.with(|c| {
        let candidate = c.get() + m.peak_above_start;
        PEAK.with(|p| {
            if candidate > p.get() {
                p.set(candidate);
            }
        });
        let v = c.get() + m.cached_delta;
        debug_assert!(
            ISOLATION.with(|d| d.get()) > 0 || v >= 0,
            "memory meter under-release on absorb: {} + {} < 0",
            c.get(),
            m.cached_delta
        );
        c.set(v);
    });
    for &(name, n) in &m.events {
        count_n(name, n);
    }
}

/// Training-step phases timed by [`time_phase`]. The wall-clock spent in
/// each phase accumulates into process-wide counters (sharded steps run
/// phases on pool workers, so thread-local storage would lose them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Batch forward pass (loss included).
    Forward,
    /// Reversible re-forward used to reconstruct activations in backward.
    Reconstruct,
    /// Gradient (transpose) computation.
    Backward,
    /// Cross-shard / cross-sample gradient tree reduction.
    Reduce,
    /// Optimizer update (SGD step, EMA, clipping).
    Optimizer,
    /// Pipeline bubble: a stage worker (or the pipeline driver) blocked
    /// waiting for a message. Aggregate blocked thread-time, the direct
    /// measure of fill/drain bubbles in stage-pipelined training.
    Stall,
}

const PHASE_COUNT: usize = 6;
static PHASE_NANOS: [AtomicU64; PHASE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Wall-clock nanoseconds accumulated per phase since the last
/// [`reset_phase_timers`]. Copyable snapshot; subtract two snapshots to
/// time a region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Time in [`Phase::Forward`].
    pub forward_nanos: u64,
    /// Time in [`Phase::Reconstruct`].
    pub reconstruct_nanos: u64,
    /// Time in [`Phase::Backward`].
    pub backward_nanos: u64,
    /// Time in [`Phase::Reduce`].
    pub reduce_nanos: u64,
    /// Time in [`Phase::Optimizer`].
    pub optimizer_nanos: u64,
    /// Time in [`Phase::Stall`] (pipeline bubbles).
    pub stall_nanos: u64,
}

impl PhaseTimes {
    /// Element-wise `self - earlier` (saturating), for timing a region
    /// between two snapshots.
    pub fn since(&self, earlier: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            forward_nanos: self.forward_nanos.saturating_sub(earlier.forward_nanos),
            reconstruct_nanos: self.reconstruct_nanos.saturating_sub(earlier.reconstruct_nanos),
            backward_nanos: self.backward_nanos.saturating_sub(earlier.backward_nanos),
            reduce_nanos: self.reduce_nanos.saturating_sub(earlier.reduce_nanos),
            optimizer_nanos: self.optimizer_nanos.saturating_sub(earlier.optimizer_nanos),
            stall_nanos: self.stall_nanos.saturating_sub(earlier.stall_nanos),
        }
    }

    /// Sum of all phase counters, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.forward_nanos
            + self.reconstruct_nanos
            + self.backward_nanos
            + self.reduce_nanos
            + self.optimizer_nanos
            + self.stall_nanos
    }
}

/// Adds `nanos` to a phase counter directly (for callers that time with
/// their own clock).
pub fn phase_add_nanos(phase: Phase, nanos: u64) {
    PHASE_NANOS[phase as usize].fetch_add(nanos, Ordering::Relaxed);
}

/// Runs `f`, charging its wall-clock time to `phase`.
///
/// Phase counters are process-global and additive: concurrent tasks in the
/// same phase each charge their own wall time, so a counter reads as
/// *aggregate thread-time* in that phase, not elapsed time.
pub fn time_phase<R>(phase: Phase, f: impl FnOnce() -> R) -> R {
    let t0 = Instant::now();
    let r = f();
    phase_add_nanos(phase, t0.elapsed().as_nanos() as u64);
    r
}

/// Nanoseconds accumulated in one phase since the last
/// [`reset_phase_timers`].
pub fn phase_nanos(phase: Phase) -> u64 {
    PHASE_NANOS[phase as usize].load(Ordering::Relaxed)
}

/// Snapshot of all phase counters.
pub fn phase_times() -> PhaseTimes {
    PhaseTimes {
        forward_nanos: phase_nanos(Phase::Forward),
        reconstruct_nanos: phase_nanos(Phase::Reconstruct),
        backward_nanos: phase_nanos(Phase::Backward),
        reduce_nanos: phase_nanos(Phase::Reduce),
        optimizer_nanos: phase_nanos(Phase::Optimizer),
        stall_nanos: phase_nanos(Phase::Stall),
    }
}

/// Zeroes all phase counters (process-wide).
pub fn reset_phase_timers() {
    for c in &PHASE_NANOS {
        c.store(0, Ordering::Relaxed);
    }
}

/// One snapshot of both memory views: cached activations (this module) and
/// the kernel scratch arena (`revbifpn_tensor::scratch`).
#[derive(Clone, Copy, Debug)]
pub struct MemoryReport {
    /// Bytes of activation state currently cached for backward.
    pub cached_current: usize,
    /// High-water mark of cached activation bytes since the last [`reset`].
    pub cached_peak: usize,
    /// Bytes of persistently packed frozen-model weight panels resident on
    /// this thread (survives the per-step [`reset`]).
    pub packed_weight_bytes: usize,
    /// Bytes of quantized (int8) packed weight panels resident on this
    /// thread — the int8 counterpart of `packed_weight_bytes`.
    pub quant_packed_weight_bytes: usize,
    /// Kernel scratch-arena counters (borrows, heap growths, peak/resident
    /// bytes). `heap_growths` staying flat across steps means conv/GEMM calls
    /// are allocation-free at steady state.
    pub scratch: ScratchStats,
}

/// Captures a [`MemoryReport`] for the current thread.
pub fn report() -> MemoryReport {
    MemoryReport {
        cached_current: current(),
        cached_peak: peak(),
        packed_weight_bytes: packed_current(),
        quant_packed_weight_bytes: quant_packed_current(),
        scratch: scratch_stats(),
    }
}

/// A slot for backward-pass state whose size is tracked by the meter.
///
/// Layers store their cached inputs/masks/statistics in `Cached` slots; the
/// meter's `current()` then reports the total cached activation footprint,
/// and `peak()` its high-water mark (which is what bounds accelerator
/// memory).
#[derive(Debug)]
pub struct Cached<T> {
    value: Option<T>,
    bytes: usize,
}

impl<T> Cached<T> {
    /// An empty slot.
    pub const fn empty() -> Self {
        Self { value: None, bytes: 0 }
    }

    /// Stores `value`, registering `bytes` with the meter (replacing and
    /// unregistering any previous occupant).
    pub fn put(&mut self, value: T, bytes: usize) {
        self.clear();
        add(bytes);
        self.value = Some(value);
        self.bytes = bytes;
    }

    /// Removes and returns the value, releasing its bytes.
    pub fn take(&mut self) -> Option<T> {
        if self.value.is_some() {
            sub(self.bytes);
            self.bytes = 0;
        }
        self.value.take()
    }

    /// Immutable access without releasing.
    pub fn get(&self) -> Option<&T> {
        self.value.as_ref()
    }

    /// `true` if the slot holds a value.
    pub fn is_some(&self) -> bool {
        self.value.is_some()
    }

    /// Registered size of the current occupant (0 when empty).
    pub fn bytes(&self) -> usize {
        if self.value.is_some() {
            self.bytes
        } else {
            0
        }
    }

    /// Drops the occupant, releasing its bytes.
    pub fn clear(&mut self) {
        if self.value.take().is_some() {
            sub(self.bytes);
        }
        self.bytes = 0;
    }
}

impl<T> Default for Cached<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T> Drop for Cached<T> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl Cached<revbifpn_tensor::Tensor> {
    /// Stores a tensor, registering its buffer size automatically.
    pub fn put_tensor(&mut self, t: revbifpn_tensor::Tensor) {
        let b = t.bytes();
        self.put(t, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revbifpn_tensor::{Shape, Tensor};

    #[test]
    fn add_sub_peak() {
        reset();
        add(100);
        add(50);
        assert_eq!(current(), 150);
        sub(100);
        assert_eq!(current(), 50);
        assert_eq!(peak(), 150);
        reset();
        assert_eq!(current(), 0);
        assert_eq!(peak(), 0);
    }

    #[test]
    fn cached_tracks_tensor_bytes() {
        reset();
        let mut slot = Cached::empty();
        slot.put_tensor(Tensor::zeros(Shape::new(1, 1, 2, 2)));
        assert_eq!(current(), 16);
        assert_eq!(slot.bytes(), 16);
        let t = slot.take().unwrap();
        assert_eq!(t.shape(), Shape::new(1, 1, 2, 2));
        assert_eq!(current(), 0);
        assert!(!slot.is_some());
    }

    #[test]
    fn put_replaces_previous_occupant() {
        reset();
        let mut slot = Cached::empty();
        slot.put(vec![0u8; 10], 10);
        slot.put(vec![0u8; 30], 30);
        assert_eq!(current(), 30);
        slot.clear();
        assert_eq!(current(), 0);
    }

    #[test]
    fn event_counters_survive_byte_reset() {
        reset_events();
        count("test.alpha");
        count_n("test.alpha", 2);
        count("test.beta");
        reset(); // must not clear events
        assert_eq!(event_count("test.alpha"), 3);
        assert_eq!(event_count("test.beta"), 1);
        assert_eq!(event_count("test.never"), 0);
        let all = events();
        assert!(all.contains(&("test.alpha", 3)));
        reset_events();
        assert_eq!(event_count("test.alpha"), 0);
        assert!(events().is_empty());
    }

    #[test]
    fn isolated_reverts_thread_state_and_reports_delta() {
        reset();
        add(100);
        let ((), m) = isolated(|| {
            add(70);
            sub(20);
            count("test.iso");
        });
        // Thread state reverted: the task's ops are invisible locally.
        assert_eq!(current(), 100);
        assert_eq!(event_count("test.iso"), 0);
        assert_eq!(m.cached_delta, 50);
        assert_eq!(m.peak_above_start, 70);
        assert_eq!(m.events, vec![("test.iso", 1)]);
        absorb(&m);
        assert_eq!(current(), 150);
        assert_eq!(peak(), 170, "peak = current at absorb + task excursion");
        assert_eq!(event_count("test.iso"), 1);
        sub(150);
        reset_events();
    }

    #[test]
    fn isolated_task_may_release_foreign_bytes() {
        reset();
        add(40);
        let ((), m) = isolated(|| {
            // Releases state registered outside the scope: local delta goes
            // negative without tripping the under-release assert.
            sub(30);
        });
        assert_eq!(m.cached_delta, -30);
        assert_eq!(m.peak_above_start, 0);
        absorb(&m);
        assert_eq!(current(), 10);
        sub(10);
    }

    #[test]
    fn absorb_in_order_matches_sequential_trace() {
        reset();
        let deltas: Vec<TaskMeter> = (0..4)
            .map(|i| isolated(|| {
                add(100 * (i + 1));
                sub(50 * (i + 1));
            }))
            .map(|(_, m)| m)
            .collect();
        for m in &deltas {
            absorb(m);
        }
        // Sequential run: current climbs 50, 100, 150, 200 → 500 total;
        // peak reached inside task 4: 50+100+150 resident + 400 excursion.
        assert_eq!(current(), 500);
        assert_eq!(peak(), 700);
        sub(500);
    }

    #[test]
    fn phase_timers_accumulate() {
        let before = phase_times();
        let v = time_phase(Phase::Reduce, || {
            std::hint::black_box(42u64)
        });
        assert_eq!(v, 42);
        phase_add_nanos(Phase::Forward, 1000);
        let delta = phase_times().since(&before);
        assert!(delta.forward_nanos >= 1000);
        assert!(delta.total_nanos() >= delta.forward_nanos);
    }

    #[test]
    fn drop_releases_bytes() {
        reset();
        {
            let mut slot = Cached::empty();
            slot.put(42u32, 4);
            assert_eq!(current(), 4);
        }
        assert_eq!(current(), 0);
    }
}
