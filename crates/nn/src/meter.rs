//! Byte-exact accounting of activations cached for the backward pass.
//!
//! Every layer that retains state between forward and backward registers the
//! retained bytes here (via [`Cached`]). The meter therefore measures exactly
//! the quantity the RevBiFPN paper's memory figures are about: how many
//! activation bytes must be *resident simultaneously* to run backprop.
//!
//! The meter is thread-local, so parallel tests do not interfere.
//!
//! Alongside activation accounting, this module re-exports the kernel
//! scratch-arena counters from `revbifpn_tensor` (see [`scratch_stats`]) so
//! training loops can assert that steady-state conv/GEMM calls perform zero
//! heap allocations, and [`report`] bundles both views into one snapshot.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

pub use revbifpn_tensor::scratch::{
    reset_stats as reset_scratch_stats, stats as scratch_stats, ScratchStats,
};

thread_local! {
    static CURRENT: Cell<usize> = const { Cell::new(0) };
    static PEAK: Cell<usize> = const { Cell::new(0) };
    static PACKED: Cell<usize> = const { Cell::new(0) };
    static EVENTS: RefCell<BTreeMap<&'static str, u64>> = const { RefCell::new(BTreeMap::new()) };
}

/// Resets both the current and peak counters to zero.
///
/// Named event counters are *not* cleared: training loops call [`reset`]
/// every step to re-arm the peak tracker, while events (drift warnings,
/// skipped steps, ...) are run-level statistics. Use [`reset_events`] for
/// those.
pub fn reset() {
    CURRENT.with(|c| c.set(0));
    PEAK.with(|p| p.set(0));
}

/// Increments the named event counter by one.
///
/// Events are thread-local run-level counters (e.g. `"rev.drift_warn"`,
/// `"train.nonfinite_step"`) that survive the per-step byte-meter [`reset`].
pub fn count(name: &'static str) {
    count_n(name, 1);
}

/// Increments the named event counter by `n`.
pub fn count_n(name: &'static str, n: u64) {
    EVENTS.with(|e| *e.borrow_mut().entry(name).or_insert(0) += n);
}

/// Current value of the named event counter (0 if never incremented).
pub fn event_count(name: &str) -> u64 {
    EVENTS.with(|e| e.borrow().get(name).copied().unwrap_or(0))
}

/// Snapshot of all named event counters, sorted by name.
pub fn events() -> Vec<(&'static str, u64)> {
    EVENTS.with(|e| e.borrow().iter().map(|(&k, &v)| (k, v)).collect())
}

/// Clears all named event counters.
pub fn reset_events() {
    EVENTS.with(|e| e.borrow_mut().clear());
}

/// Registers `bytes` of newly cached activation state.
pub fn add(bytes: usize) {
    CURRENT.with(|c| {
        let v = c.get() + bytes;
        c.set(v);
        PEAK.with(|p| {
            if v > p.get() {
                p.set(v);
            }
        });
    });
}

/// Releases `bytes` of cached activation state.
///
/// # Panics
///
/// Debug builds panic on under-release (a layer freeing more than it
/// registered), which would indicate an accounting bug.
pub fn sub(bytes: usize) {
    CURRENT.with(|c| {
        debug_assert!(c.get() >= bytes, "memory meter under-release: {} < {}", c.get(), bytes);
        c.set(c.get().saturating_sub(bytes));
    });
}

/// Bytes currently registered as cached.
pub fn current() -> usize {
    CURRENT.with(|c| c.get())
}

/// Registers `bytes` of persistently packed inference weights (frozen-model
/// GEMM panels). Tracked separately from the per-step activation counters:
/// packed weights live for the lifetime of a frozen model and must survive
/// the per-step [`reset`].
pub fn add_packed(bytes: usize) {
    PACKED.with(|p| p.set(p.get() + bytes));
}

/// Releases `bytes` of packed inference weights (frozen model dropped).
pub fn sub_packed(bytes: usize) {
    PACKED.with(|p| p.set(p.get().saturating_sub(bytes)));
}

/// Bytes of packed inference weights currently resident on this thread.
pub fn packed_current() -> usize {
    PACKED.with(|p| p.get())
}

/// High-water mark since the last [`reset`].
pub fn peak() -> usize {
    PEAK.with(|p| p.get())
}

/// One snapshot of both memory views: cached activations (this module) and
/// the kernel scratch arena (`revbifpn_tensor::scratch`).
#[derive(Clone, Copy, Debug)]
pub struct MemoryReport {
    /// Bytes of activation state currently cached for backward.
    pub cached_current: usize,
    /// High-water mark of cached activation bytes since the last [`reset`].
    pub cached_peak: usize,
    /// Bytes of persistently packed frozen-model weight panels resident on
    /// this thread (survives the per-step [`reset`]).
    pub packed_weight_bytes: usize,
    /// Kernel scratch-arena counters (borrows, heap growths, peak/resident
    /// bytes). `heap_growths` staying flat across steps means conv/GEMM calls
    /// are allocation-free at steady state.
    pub scratch: ScratchStats,
}

/// Captures a [`MemoryReport`] for the current thread.
pub fn report() -> MemoryReport {
    MemoryReport {
        cached_current: current(),
        cached_peak: peak(),
        packed_weight_bytes: packed_current(),
        scratch: scratch_stats(),
    }
}

/// A slot for backward-pass state whose size is tracked by the meter.
///
/// Layers store their cached inputs/masks/statistics in `Cached` slots; the
/// meter's `current()` then reports the total cached activation footprint,
/// and `peak()` its high-water mark (which is what bounds accelerator
/// memory).
#[derive(Debug)]
pub struct Cached<T> {
    value: Option<T>,
    bytes: usize,
}

impl<T> Cached<T> {
    /// An empty slot.
    pub const fn empty() -> Self {
        Self { value: None, bytes: 0 }
    }

    /// Stores `value`, registering `bytes` with the meter (replacing and
    /// unregistering any previous occupant).
    pub fn put(&mut self, value: T, bytes: usize) {
        self.clear();
        add(bytes);
        self.value = Some(value);
        self.bytes = bytes;
    }

    /// Removes and returns the value, releasing its bytes.
    pub fn take(&mut self) -> Option<T> {
        if self.value.is_some() {
            sub(self.bytes);
            self.bytes = 0;
        }
        self.value.take()
    }

    /// Immutable access without releasing.
    pub fn get(&self) -> Option<&T> {
        self.value.as_ref()
    }

    /// `true` if the slot holds a value.
    pub fn is_some(&self) -> bool {
        self.value.is_some()
    }

    /// Registered size of the current occupant (0 when empty).
    pub fn bytes(&self) -> usize {
        if self.value.is_some() {
            self.bytes
        } else {
            0
        }
    }

    /// Drops the occupant, releasing its bytes.
    pub fn clear(&mut self) {
        if self.value.take().is_some() {
            sub(self.bytes);
        }
        self.bytes = 0;
    }
}

impl<T> Default for Cached<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T> Drop for Cached<T> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl Cached<revbifpn_tensor::Tensor> {
    /// Stores a tensor, registering its buffer size automatically.
    pub fn put_tensor(&mut self, t: revbifpn_tensor::Tensor) {
        let b = t.bytes();
        self.put(t, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revbifpn_tensor::{Shape, Tensor};

    #[test]
    fn add_sub_peak() {
        reset();
        add(100);
        add(50);
        assert_eq!(current(), 150);
        sub(100);
        assert_eq!(current(), 50);
        assert_eq!(peak(), 150);
        reset();
        assert_eq!(current(), 0);
        assert_eq!(peak(), 0);
    }

    #[test]
    fn cached_tracks_tensor_bytes() {
        reset();
        let mut slot = Cached::empty();
        slot.put_tensor(Tensor::zeros(Shape::new(1, 1, 2, 2)));
        assert_eq!(current(), 16);
        assert_eq!(slot.bytes(), 16);
        let t = slot.take().unwrap();
        assert_eq!(t.shape(), Shape::new(1, 1, 2, 2));
        assert_eq!(current(), 0);
        assert!(!slot.is_some());
    }

    #[test]
    fn put_replaces_previous_occupant() {
        reset();
        let mut slot = Cached::empty();
        slot.put(vec![0u8; 10], 10);
        slot.put(vec![0u8; 30], 30);
        assert_eq!(current(), 30);
        slot.clear();
        assert_eq!(current(), 0);
    }

    #[test]
    fn event_counters_survive_byte_reset() {
        reset_events();
        count("test.alpha");
        count_n("test.alpha", 2);
        count("test.beta");
        reset(); // must not clear events
        assert_eq!(event_count("test.alpha"), 3);
        assert_eq!(event_count("test.beta"), 1);
        assert_eq!(event_count("test.never"), 0);
        let all = events();
        assert!(all.contains(&("test.alpha", 3)));
        reset_events();
        assert_eq!(event_count("test.alpha"), 0);
        assert!(events().is_empty());
    }

    #[test]
    fn drop_releases_bytes() {
        reset();
        {
            let mut slot = Cached::empty();
            slot.put(42u32, 4);
            assert_eq!(current(), 4);
        }
        assert_eq!(current(), 0);
    }
}
