//! Losses: softmax cross-entropy with soft targets (supports label
//! smoothing, mixup and CutMix targets), binary cross-entropy on logits, and
//! smooth-L1 regression (detection heads).

use revbifpn_tensor::{Shape, Tensor};

/// Numerically stable per-row softmax of `[n, k, 1, 1]` logits.
pub fn softmax(logits: &Tensor) -> Tensor {
    let s = logits.shape();
    assert_eq!((s.h, s.w), (1, 1), "softmax expects [n, k, 1, 1]");
    let mut out = logits.clone();
    for n in 0..s.n {
        let row = &mut out.data_mut()[n * s.c..(n + 1) * s.c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut z = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            z += *v;
        }
        for v in row.iter_mut() {
            *v /= z;
        }
    }
    out
}

/// Softmax cross-entropy against soft targets.
///
/// Returns `(mean_loss, dlogits)` where `dlogits = (softmax - target) / n`.
///
/// # Panics
///
/// Panics if shapes differ or are not `[n, k, 1, 1]`. Also panics if the
/// computed loss is non-finite, reporting which input (logits or targets)
/// carried non-finite values, so a poisoned batch is diagnosed at the loss
/// instead of propagating NaN silently through the backward pass.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &Tensor) -> (f64, Tensor) {
    let s = logits.shape();
    assert_eq!(s, targets.shape(), "logits/targets shape mismatch");
    let p = softmax(logits);
    let mut loss = 0.0f64;
    for n in 0..s.n {
        for k in 0..s.c {
            let t = targets.data()[n * s.c + k] as f64;
            if t != 0.0 {
                let q = (p.data()[n * s.c + k] as f64).max(1e-12);
                loss -= t * q.ln();
            }
        }
    }
    loss /= s.n as f64;
    // NaN probabilities are clamped away by `q.max(1e-12)` above (f64::max
    // ignores NaN), so check the softmax output as well as the loss.
    if !loss.is_finite() || !p.is_finite() {
        logits.assert_finite("softmax_cross_entropy: non-finite loss; logits");
        targets.assert_finite("softmax_cross_entropy: non-finite loss; targets");
        panic!("softmax_cross_entropy: non-finite loss {loss} with finite inputs");
    }
    let mut d = &p - targets;
    d.scale(1.0 / s.n as f32);
    (loss, d)
}

/// Per-sample softmax cross-entropy for the sharded training step.
///
/// Returns `(losses, dlogits)` where `losses[i]` is sample `i`'s (unscaled)
/// cross-entropy in f64 — summed over classes in ascending order, exactly
/// the inner term sequence of [`softmax_cross_entropy`] — and `dlogits` is
/// `(softmax - target) / batch_total` per element.
///
/// Contract with the sharded trainer: per-sample losses and per-element
/// gradients depend only on that sample's row, never on the batch extent,
/// so a shard computes identical values whether it holds 4 samples or 16.
/// The trainer merges shard loss vectors in sample order and reduces them
/// with the pairwise tree, then divides by `batch_total`, making the step
/// loss bitwise invariant to the shard count. `batch_total` is the *global*
/// batch size (not this shard's), so gradient scaling also matches.
///
/// # Panics
///
/// Panics on shape mismatch or non-finite loss, with the same input
/// attribution as [`softmax_cross_entropy`]. Callers on the tripwire path
/// scan logits for finiteness before calling.
pub fn softmax_cross_entropy_per_sample(
    logits: &Tensor,
    targets: &Tensor,
    batch_total: usize,
) -> (Vec<f64>, Tensor) {
    let s = logits.shape();
    assert_eq!(s, targets.shape(), "logits/targets shape mismatch");
    assert!(batch_total > 0, "batch_total must be positive");
    let p = softmax(logits);
    let mut losses = Vec::with_capacity(s.n);
    for n in 0..s.n {
        let mut loss = 0.0f64;
        for k in 0..s.c {
            let t = targets.data()[n * s.c + k] as f64;
            if t != 0.0 {
                let q = (p.data()[n * s.c + k] as f64).max(1e-12);
                loss -= t * q.ln();
            }
        }
        losses.push(loss);
    }
    if losses.iter().any(|l| !l.is_finite()) || !p.is_finite() {
        logits.assert_finite("softmax_cross_entropy_per_sample: non-finite loss; logits");
        targets.assert_finite("softmax_cross_entropy_per_sample: non-finite loss; targets");
        panic!("softmax_cross_entropy_per_sample: non-finite loss with finite inputs");
    }
    let mut d = &p - targets;
    d.scale(1.0 / batch_total as f32);
    (losses, d)
}

/// One-hot targets `[n, k, 1, 1]` from class labels.
///
/// # Panics
///
/// Panics if a label is out of range.
pub fn one_hot(labels: &[usize], k: usize) -> Tensor {
    let mut t = Tensor::zeros(Shape::new(labels.len(), k, 1, 1));
    for (n, &l) in labels.iter().enumerate() {
        assert!(l < k, "label {l} out of range for {k} classes");
        t.data_mut()[n * k + l] = 1.0;
    }
    t
}

/// Applies label smoothing with coefficient `eps` to soft targets.
pub fn label_smooth(targets: &Tensor, eps: f32) -> Tensor {
    let k = targets.shape().c as f32;
    targets.map(|t| t * (1.0 - eps) + eps / k)
}

/// Top-1 predictions from logits.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let s = logits.shape();
    (0..s.n)
        .map(|n| {
            let row = &logits.data()[n * s.c..(n + 1) * s.c];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Binary cross-entropy on logits with per-element targets and weights.
///
/// Returns `(sum_loss / normalizer, dlogits)`.
///
/// # Panics
///
/// Panics if shapes differ or `normalizer <= 0`.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor, normalizer: f64) -> (f64, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    assert!(normalizer > 0.0, "normalizer must be positive");
    let mut loss = 0.0f64;
    let mut d = Tensor::zeros(logits.shape());
    for i in 0..logits.data().len() {
        let z = logits.data()[i] as f64;
        let t = targets.data()[i] as f64;
        // log(1 + exp(-|z|)) stable form.
        let l = z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        loss += l;
        let sig = 1.0 / (1.0 + (-z).exp());
        d.data_mut()[i] = ((sig - t) / normalizer) as f32;
    }
    (loss / normalizer, d)
}

/// Focal loss on logits (Lin et al. 2017): BCE modulated by `(1-p_t)^gamma`
/// with positive-class weight `alpha` — the standard remedy for the extreme
/// foreground/background imbalance of dense detection heads.
///
/// Returns `(sum_loss / normalizer, dlogits)`.
///
/// # Panics
///
/// Panics if shapes differ or `normalizer <= 0`.
pub fn focal_loss_with_logits(
    logits: &Tensor,
    targets: &Tensor,
    alpha: f64,
    gamma: f64,
    normalizer: f64,
) -> (f64, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "focal loss shape mismatch");
    assert!(normalizer > 0.0, "normalizer must be positive");
    let mut loss = 0.0f64;
    let mut d = Tensor::zeros(logits.shape());
    for i in 0..logits.data().len() {
        let z = logits.data()[i] as f64;
        let t = targets.data()[i] as f64;
        let p = 1.0 / (1.0 + (-z).exp());
        // p_t and alpha_t for the binary target.
        let (pt, at) = if t > 0.5 { (p, alpha) } else { (1.0 - p, 1.0 - alpha) };
        let pt = pt.clamp(1e-8, 1.0 - 1e-8);
        let mod_ = (1.0 - pt).powf(gamma);
        loss += -at * mod_ * pt.ln();
        // dL/dz with dp/dz = p(1-p); for t=1: dpt/dz = p(1-p); for t=0: -p(1-p).
        let dpt_dz = if t > 0.5 { p * (1.0 - p) } else { -(p * (1.0 - p)) };
        // dL/dpt = -at [ -gamma (1-pt)^(g-1) ln pt + (1-pt)^g / pt ]
        let dl_dpt = -at * (-(gamma) * (1.0 - pt).powf(gamma - 1.0) * pt.ln() + mod_ / pt);
        d.data_mut()[i] = ((dl_dpt * dpt_dz) / normalizer) as f32;
    }
    (loss / normalizer, d)
}

/// Smooth-L1 (Huber) regression loss with `beta = 1`, masked by `weights`.
///
/// Returns `(sum_loss / normalizer, dpred)`.
///
/// # Panics
///
/// Panics on shape mismatch or non-positive normalizer.
pub fn smooth_l1(pred: &Tensor, target: &Tensor, weights: &Tensor, normalizer: f64) -> (f64, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "smooth_l1 shape mismatch");
    assert_eq!(pred.shape(), weights.shape(), "smooth_l1 weights mismatch");
    assert!(normalizer > 0.0, "normalizer must be positive");
    let mut loss = 0.0f64;
    let mut d = Tensor::zeros(pred.shape());
    for i in 0..pred.data().len() {
        let w = weights.data()[i] as f64;
        if w == 0.0 {
            continue;
        }
        let diff = (pred.data()[i] - target.data()[i]) as f64;
        let (l, g) = if diff.abs() < 1.0 { (0.5 * diff * diff, diff) } else { (diff.abs() - 0.5, diff.signum()) };
        loss += w * l;
        d.data_mut()[i] = (w * g / normalizer) as f32;
    }
    (loss / normalizer, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_sample_ce_is_shard_invariant_and_matches_full_batch_gradient() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let (n, k) = (8usize, 5usize);
        let logits = Tensor::randn(Shape::new(n, k, 1, 1), 2.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| (i * 3 + 1) % k).collect();
        let targets = one_hot(&labels, k);
        let (losses_full, d_full) = softmax_cross_entropy_per_sample(&logits, &targets, n);
        assert_eq!(losses_full.len(), n);
        // dlogits with batch_total == n must be bitwise identical to the
        // legacy full-batch function's (p - t) / n.
        let (_, d_legacy) = softmax_cross_entropy(&logits, &targets);
        for (a, b) in d_full.data().iter().zip(d_legacy.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Splitting the batch into shards must reproduce the same per-sample
        // losses and gradient rows bit for bit: every value depends only on
        // its own sample's row plus the global batch_total.
        for shards in [2usize, 4] {
            let m = n / shards;
            for s in 0..shards {
                let ls = Tensor::from_vec(
                    Shape::new(m, k, 1, 1),
                    logits.data()[s * m * k..(s + 1) * m * k].to_vec(),
                )
                .unwrap();
                let ts = Tensor::from_vec(
                    Shape::new(m, k, 1, 1),
                    targets.data()[s * m * k..(s + 1) * m * k].to_vec(),
                )
                .unwrap();
                let (losses_s, d_s) = softmax_cross_entropy_per_sample(&ls, &ts, n);
                for i in 0..m {
                    assert_eq!(losses_s[i].to_bits(), losses_full[s * m + i].to_bits());
                }
                for (i, (a, b)) in d_s.data().iter().zip(&d_full.data()[s * m * k..]).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "shards={shards} s={s} idx={i}");
                }
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor::from_vec(Shape::new(2, 3, 1, 1), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let p = softmax(&l);
        for n in 0..2 {
            let s: f32 = p.data()[n * 3..(n + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn ce_perfect_prediction_is_low() {
        let l = Tensor::from_vec(Shape::new(1, 2, 1, 1), vec![10.0, -10.0]).unwrap();
        let t = one_hot(&[0], 2);
        let (loss, _) = softmax_cross_entropy(&l, &t);
        assert!(loss < 1e-3);
    }

    #[test]
    fn ce_gradient_matches_finite_diff() {
        let mut l = Tensor::from_vec(Shape::new(2, 3, 1, 1), vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]).unwrap();
        let t = label_smooth(&one_hot(&[2, 0], 3), 0.1);
        let (_, d) = softmax_cross_entropy(&l, &t);
        let eps = 1e-3f32;
        for i in 0..6 {
            let orig = l.data()[i];
            l.data_mut()[i] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&l, &t);
            l.data_mut()[i] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&l, &t);
            l.data_mut()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((num - d.data()[i]).abs() < 1e-3, "coord {i}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite loss; logits")]
    fn ce_reports_nonfinite_logits() {
        let mut l = Tensor::from_vec(Shape::new(1, 2, 1, 1), vec![0.0, 0.0]).unwrap();
        l.data_mut()[0] = f32::NAN;
        let t = one_hot(&[0], 2);
        let _ = softmax_cross_entropy(&l, &t);
    }

    #[test]
    #[should_panic(expected = "non-finite loss; targets")]
    fn ce_reports_nonfinite_targets() {
        let l = Tensor::from_vec(Shape::new(1, 2, 1, 1), vec![0.0, 0.0]).unwrap();
        let mut t = one_hot(&[0], 2);
        t.data_mut()[0] = f32::INFINITY;
        let _ = softmax_cross_entropy(&l, &t);
    }

    #[test]
    fn label_smoothing_distributes_mass() {
        let t = label_smooth(&one_hot(&[1], 4), 0.2);
        assert!((t.data()[1] - (0.8 + 0.05)).abs() < 1e-6);
        assert!((t.data()[0] - 0.05).abs() < 1e-6);
        assert!((t.sum() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let l = Tensor::from_vec(Shape::new(2, 3, 1, 1), vec![0.1, 0.9, 0.3, 2.0, -1.0, 0.0]).unwrap();
        assert_eq!(argmax_rows(&l), vec![1, 0]);
    }

    #[test]
    fn bce_gradient_matches_finite_diff() {
        let mut l = Tensor::from_vec(Shape::new(1, 4, 1, 1), vec![0.3, -0.8, 1.2, 0.0]).unwrap();
        let t = Tensor::from_vec(Shape::new(1, 4, 1, 1), vec![1.0, 0.0, 0.5, 1.0]).unwrap();
        let (_, d) = bce_with_logits(&l, &t, 4.0);
        let eps = 1e-3f32;
        for i in 0..4 {
            let orig = l.data()[i];
            l.data_mut()[i] = orig + eps;
            let (lp, _) = bce_with_logits(&l, &t, 4.0);
            l.data_mut()[i] = orig - eps;
            let (lm, _) = bce_with_logits(&l, &t, 4.0);
            l.data_mut()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((num - d.data()[i]).abs() < 1e-4, "coord {i}");
        }
    }

    #[test]
    fn focal_gradient_matches_finite_diff() {
        let mut l = Tensor::from_vec(Shape::new(1, 4, 1, 1), vec![0.3, -0.8, 1.2, -2.0]).unwrap();
        let t = Tensor::from_vec(Shape::new(1, 4, 1, 1), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let (_, d) = focal_loss_with_logits(&l, &t, 0.25, 2.0, 2.0);
        let eps = 1e-3f32;
        for i in 0..4 {
            let orig = l.data()[i];
            l.data_mut()[i] = orig + eps;
            let (lp, _) = focal_loss_with_logits(&l, &t, 0.25, 2.0, 2.0);
            l.data_mut()[i] = orig - eps;
            let (lm, _) = focal_loss_with_logits(&l, &t, 0.25, 2.0, 2.0);
            l.data_mut()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((num - d.data()[i]).abs() < 1e-4, "coord {i}: {num} vs {}", d.data()[i]);
        }
    }

    #[test]
    fn focal_downweights_easy_negatives() {
        // A confidently-correct negative contributes far less than under BCE.
        let l = Tensor::from_vec(Shape::new(1, 1, 1, 1), vec![-4.0]).unwrap();
        let t = Tensor::zeros(l.shape());
        let (fl, _) = focal_loss_with_logits(&l, &t, 0.25, 2.0, 1.0);
        let (bce, _) = bce_with_logits(&l, &t, 1.0);
        assert!(fl < bce * 0.01, "focal {fl} vs bce {bce}");
    }

    #[test]
    fn smooth_l1_quadratic_and_linear_regions() {
        let p = Tensor::from_vec(Shape::new(1, 2, 1, 1), vec![0.5, 3.0]).unwrap();
        let t = Tensor::zeros(p.shape());
        let w = Tensor::ones(p.shape());
        let (loss, d) = smooth_l1(&p, &t, &w, 1.0);
        assert!((loss - (0.125 + 2.5)).abs() < 1e-6);
        assert!((d.data()[0] - 0.5).abs() < 1e-6);
        assert!((d.data()[1] - 1.0).abs() < 1e-6);
    }
}
