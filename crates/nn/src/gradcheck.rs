//! Central finite-difference gradient checking for [`Layer`] implementations.
//!
//! Used pervasively in tests: correctness of every hand-derived backward pass
//! is the foundation the reversible-equals-conventional-training claim rests
//! on.

use crate::mode::CacheMode;
use crate::module::{zero_grads, Layer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_tensor::Tensor;

/// Applies `delta` to scalar `coord` of parameter number `index` (in
/// `visit_params` order).
fn nudge_param(layer: &mut dyn Layer, index: usize, coord: usize, delta: f32) {
    let mut i = 0;
    layer.visit_params(&mut |p| {
        if i == index {
            p.value.data_mut()[coord] += delta;
        }
        i += 1;
    });
}

fn loss_of(layer: &mut dyn Layer, x: &Tensor, m: &Tensor) -> f64 {
    let y = layer.forward(x, CacheMode::None);
    (&y * m).sum()
}

/// Checks the layer's analytic gradients against central finite differences.
///
/// The probe loss is `sum(forward(x) * m)` for a fixed random mask `m`.
/// A handful of coordinates of every parameter and of the input are checked
/// with step `1e-2` and the given relative tolerance.
///
/// # Panics
///
/// Panics (assert) when a gradient disagrees.
pub fn check_layer(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let y = layer.forward(x, CacheMode::Full);
    let m = Tensor::uniform(y.shape(), -1.0, 1.0, &mut rng);
    zero_grads(layer);
    let dx = layer.backward(&m);
    assert!(dx.is_finite(), "analytic dx contains non-finite values");

    // Snapshot analytic parameter gradients.
    let mut param_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p| param_grads.push(p.grad.data().to_vec()));

    let eps = 1e-2f32;
    for (pi, grads) in param_grads.iter().enumerate() {
        let ncoords = grads.len();
        let probes = [0, ncoords / 2, ncoords.saturating_sub(1)];
        for &ci in probes.iter().take(ncoords.min(3)) {
            nudge_param(layer, pi, ci, eps);
            let lp = loss_of(layer, x, &m);
            nudge_param(layer, pi, ci, -2.0 * eps);
            let lm = loss_of(layer, x, &m);
            nudge_param(layer, pi, ci, eps);
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = grads[ci];
            assert!(
                (num - ana).abs() <= tol * (1.0 + ana.abs().max(num.abs())),
                "param {pi} coord {ci}: numeric {num} vs analytic {ana}"
            );
        }
    }

    // Input gradient at a few coordinates.
    let nin = x.shape().numel();
    let mut xp = x.clone();
    for &ci in [0, nin / 3, (2 * nin) / 3, nin - 1].iter() {
        let orig = xp.data()[ci];
        xp.data_mut()[ci] = orig + eps;
        let lp = loss_of(layer, &xp, &m);
        xp.data_mut()[ci] = orig - eps;
        let lm = loss_of(layer, &xp, &m);
        xp.data_mut()[ci] = orig;
        let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
        let ana = dx.data()[ci];
        assert!(
            (num - ana).abs() <= tol * (1.0 + ana.abs().max(num.abs())),
            "input coord {ci}: numeric {num} vs analytic {ana}"
        );
    }
    layer.clear_cache();
}

/// Variant of [`check_layer`] for layers whose eval-mode forward differs from
/// training mode (BatchNorm, Dropout): finite differences are evaluated in
/// `Full` mode (with caches cleared after each probe).
///
/// # Panics
///
/// Panics (assert) when a gradient disagrees.
pub fn check_layer_training_mode(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let y = layer.forward(x, CacheMode::Full);
    let m = Tensor::uniform(y.shape(), -1.0, 1.0, &mut rng);
    zero_grads(layer);
    let dx = layer.backward(&m);

    let mut param_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p| param_grads.push(p.grad.data().to_vec()));

    let loss_train = |layer: &mut dyn Layer, x: &Tensor| {
        let y = layer.forward(x, CacheMode::Full);
        layer.clear_cache();
        (&y * &m).sum()
    };

    let eps = 1e-2f32;
    for (pi, grads) in param_grads.iter().enumerate() {
        let ncoords = grads.len();
        let probes = [0, ncoords / 2, ncoords.saturating_sub(1)];
        for &ci in probes.iter().take(ncoords.min(3)) {
            nudge_param(layer, pi, ci, eps);
            let lp = loss_train(layer, x);
            nudge_param(layer, pi, ci, -2.0 * eps);
            let lm = loss_train(layer, x);
            nudge_param(layer, pi, ci, eps);
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = grads[ci];
            assert!(
                (num - ana).abs() <= tol * (1.0 + ana.abs().max(num.abs())),
                "param {pi} coord {ci}: numeric {num} vs analytic {ana}"
            );
        }
    }

    let nin = x.shape().numel();
    let mut xp = x.clone();
    for &ci in [0, nin / 2, nin - 1].iter() {
        let orig = xp.data()[ci];
        xp.data_mut()[ci] = orig + eps;
        let lp = loss_train(layer, &xp);
        xp.data_mut()[ci] = orig - eps;
        let lm = loss_train(layer, &xp);
        xp.data_mut()[ci] = orig;
        let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
        let ana = dx.data()[ci];
        assert!(
            (num - ana).abs() <= tol * (1.0 + ana.abs().max(num.abs())),
            "input coord {ci}: numeric {num} vs analytic {ana}"
        );
    }
    layer.clear_cache();
}
