//! Weight initialization (He/Kaiming, as used by the paper).

use rand::{Rng, RngExt};
use revbifpn_tensor::{Shape, Tensor};

/// Kaiming-normal initialization for a conv weight `[c_out, c_in/g, kh, kw]`:
/// `std = sqrt(2 / fan_in)` with `fan_in = c_in/g * kh * kw`.
pub fn kaiming_conv<R: Rng + ?Sized>(shape: Shape, rng: &mut R) -> Tensor {
    let fan_in = (shape.c * shape.h * shape.w).max(1);
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(shape, std, rng)
}

/// Kaiming-uniform initialization for a dense weight `[out, in, 1, 1]`:
/// `bound = sqrt(6 / fan_in)`.
pub fn kaiming_linear<R: Rng + ?Sized>(out_features: usize, in_features: usize, rng: &mut R) -> Tensor {
    let bound = (6.0 / in_features.max(1) as f32).sqrt();
    Tensor::uniform(Shape::new(out_features, in_features, 1, 1), -bound, bound, rng)
}

/// Deterministic seed derivation so that sub-modules constructed in sequence
/// get decorrelated but reproducible streams.
pub fn derive_seed<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    rng.random()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_conv_std_matches() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = kaiming_conv(Shape::new(64, 32, 3, 3), &mut rng);
        let n = w.data().len() as f64;
        let var = w.sq_sum() / n;
        let expect = 2.0 / (32.0 * 9.0);
        assert!((var - expect).abs() < expect * 0.2, "var {var} vs {expect}");
    }

    #[test]
    fn kaiming_linear_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = kaiming_linear(10, 24, &mut rng);
        let bound = (6.0f32 / 24.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= bound + 1e-6));
    }
}
