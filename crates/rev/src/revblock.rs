//! The reversible residual block of Gomez et al. (2017), "The Reversible
//! Residual Network: Backpropagation Without Storing Activations".
//!
//! The input is split along channels into `(x1, x2)`; the block computes
//!
//! ```text
//! y1 = x1 + F(x2)
//! y2 = x2 + G(y1)
//! ```
//!
//! and is inverted by `x2 = y2 - G(y1)`, `x1 = y1 - F(x2)`. During the
//! reversible backward pass the inputs are reconstructed from the outputs
//! and `F`/`G` are re-run with full caching *transiently*, so no hidden
//! activation survives the forward pass. RevBiFPN uses these blocks for all
//! same-resolution transformations (paper Section 3), with MBConv bodies.

use revbifpn_nn::{meter, CacheMode, Layer, Param};
use revbifpn_tensor::{Shape, Tensor};

/// A reversible residual block with additive coupling.
#[derive(Debug)]
pub struct RevBlock {
    f: Box<dyn Layer>,
    g: Box<dyn Layer>,
    c_split: usize,
    channels: usize,
}

impl RevBlock {
    /// Creates a block over `channels` channels, split at `channels / 2`.
    ///
    /// `f` must map `channels - c_split -> c_split` channels and `g` the
    /// reverse, both preserving spatial dims (checked at the first forward).
    ///
    /// # Panics
    ///
    /// Panics if `channels < 2`.
    pub fn new(channels: usize, f: Box<dyn Layer>, g: Box<dyn Layer>) -> Self {
        assert!(channels >= 2, "RevBlock needs at least 2 channels to split");
        Self { f, g, c_split: channels / 2, channels }
    }

    /// Total channel count the block operates on.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Inference-only frozen form: `F` and `G` are frozen via
    /// [`Layer::freeze`] (BN folded, activations fused). The result is
    /// *uncompiled*; see [`crate::FrozenRevBlock`].
    pub fn freeze(&self) -> Result<crate::FrozenRevBlock, revbifpn_nn::FreezeError> {
        Ok(crate::FrozenRevBlock {
            f: self.f.freeze()?,
            g: self.g.freeze()?,
            c_split: self.c_split,
        })
    }

    /// Forward pass in the given cache mode.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count disagrees with the constructor.
    pub fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        assert_eq!(x.shape().c, self.channels, "RevBlock channel mismatch");
        let (x1, x2) = x.split_channels(self.c_split);
        let f_out = self.f.forward(&x2, mode);
        let y1 = &x1 + &f_out;
        let g_out = self.g.forward(&y1, mode);
        let y2 = &x2 + &g_out;
        Tensor::concat_channels(&[&y1, &y2])
    }

    /// Exact inverse of the forward pass (evaluation semantics: BatchNorms
    /// inside `F`/`G` use running statistics, matching a `CacheMode::None`
    /// forward).
    pub fn inverse(&mut self, y: &Tensor) -> Tensor {
        let (y1, y2) = y.split_channels(self.c_split);
        let g_out = self.g.forward(&y1, CacheMode::None);
        let x2 = &y2 - &g_out;
        let f_out = self.f.forward(&x2, CacheMode::None);
        let x1 = &y1 - &f_out;
        Tensor::concat_channels(&[&x1, &x2])
    }

    /// Reversible backward: reconstructs the input from `y`, accumulates
    /// parameter gradients, and returns `(x, dx)`.
    ///
    /// Requires that the forward pass ran with [`CacheMode::Stats`] so
    /// BatchNorm statistics and stochastic seeds can be replayed.
    pub fn backward_rev(&mut self, y: &Tensor, dy: &Tensor) -> (Tensor, Tensor) {
        let (y1, y2) = y.split_channels(self.c_split);
        let (dy1, dy2) = dy.split_channels(self.c_split);
        // Reconstruct inputs, re-running F/G with Full caching (they consume
        // the frozen statistics recorded during the Stats forward).
        let g_out = meter::time_phase(meter::Phase::Reconstruct, || self.g.forward(&y1, CacheMode::Full));
        let x2 = &y2 - &g_out;
        let f_out = meter::time_phase(meter::Phase::Reconstruct, || self.f.forward(&x2, CacheMode::Full));
        let x1 = &y1 - &f_out;
        // Gradients (standard RevNet recipe). F and G couple through dz1, so
        // unlike silo edges they cannot run concurrently.
        let dg_in = meter::time_phase(meter::Phase::Backward, || self.g.backward(&dy2));
        let dz1 = &dy1 + &dg_in;
        let df_in = meter::time_phase(meter::Phase::Backward, || self.f.backward(&dz1));
        let dx2 = &dy2 + &df_in;
        let x = Tensor::concat_channels(&[&x1, &x2]);
        let dx = Tensor::concat_channels(&[&dz1, &dx2]);
        (x, dx)
    }

    /// Conventional backward using the caches of a `Full`-mode forward.
    pub fn backward_cached(&mut self, dy: &Tensor) -> Tensor {
        let (dy1, dy2) = dy.split_channels(self.c_split);
        let dg_in = self.g.backward(&dy2);
        let dz1 = &dy1 + &dg_in;
        let df_in = self.f.backward(&dz1);
        let dx2 = &dy2 + &df_in;
        Tensor::concat_channels(&[&dz1, &dx2])
    }

    /// MAC count for input shape `x`.
    pub fn macs(&self, x: Shape) -> u64 {
        let s2 = x.with_c(x.c - self.c_split);
        let s1 = x.with_c(self.c_split);
        self.f.macs(s2) + self.g.macs(s1)
    }

    /// Visits the parameters of `F` and `G`.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.f.visit_params(f);
        self.g.visit_params(f);
    }

    /// Visits all non-parameter persistent buffers (`F` then `G`), mirroring
    /// [`RevBlock::visit_params`].
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.f.visit_buffers(f);
        self.g.visit_buffers(f);
    }

    /// Visits every BatchNorm in `F` then `G`, mirroring
    /// [`RevBlock::visit_params`].
    pub fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        self.f.visit_bn(f);
        self.g.visit_bn(f);
    }

    /// Clears all sub-module caches.
    pub fn clear_cache(&mut self) {
        self.f.clear_cache();
        self.g.clear_cache();
    }

    /// Analytic cache bytes for input shape `x` in `mode`.
    pub fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        let s2 = x.with_c(x.c - self.c_split);
        let s1 = x.with_c(self.c_split);
        self.f.cache_bytes(s2, mode) + self.g.cache_bytes(s1, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn_nn::layers::{MBConv, MBConvCfg};

    fn make_block(c: usize, rng: &mut StdRng) -> RevBlock {
        let half = c / 2;
        let f = MBConv::new(MBConvCfg::same(half, 3, 2.0).plain(), rng);
        let g = MBConv::new(MBConvCfg::same(half, 3, 2.0).plain(), rng);
        RevBlock::new(c, Box::new(f), Box::new(g))
    }

    /// Randomizes BN gammas so the transforms are not the identity.
    fn randomize_bn(b: &mut RevBlock, rng: &mut StdRng) {
        b.visit_params(&mut |p| {
            if p.name == "bn.gamma" {
                p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, rng);
            }
        });
    }

    #[test]
    fn inverse_reconstructs_input_eval() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = make_block(8, &mut rng);
        randomize_bn(&mut b, &mut rng);
        let x = Tensor::randn(Shape::new(2, 8, 6, 6), 1.0, &mut rng);
        let y = b.forward(&x, CacheMode::None);
        let back = b.inverse(&y);
        assert!(back.max_abs_diff(&x) < 1e-4, "diff {}", back.max_abs_diff(&x));
    }

    #[test]
    fn backward_rev_reconstructs_input_training() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = make_block(8, &mut rng);
        randomize_bn(&mut b, &mut rng);
        let x = Tensor::randn(Shape::new(2, 8, 6, 6), 1.0, &mut rng);
        let y = b.forward(&x, CacheMode::Stats);
        let dy = Tensor::randn(y.shape(), 1.0, &mut rng);
        let (x_rec, _dx) = b.backward_rev(&y, &dy);
        assert!(x_rec.max_abs_diff(&x) < 1e-4, "diff {}", x_rec.max_abs_diff(&x));
    }

    #[test]
    fn reversible_gradients_match_cached_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b1 = make_block(8, &mut rng);
        randomize_bn(&mut b1, &mut StdRng::seed_from_u64(99));
        // Clone the block by rebuilding with the same seeds.
        let mut rng2 = StdRng::seed_from_u64(2);
        let mut b2 = make_block(8, &mut rng2);
        randomize_bn(&mut b2, &mut StdRng::seed_from_u64(99));

        let mut xrng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(Shape::new(2, 8, 6, 6), 1.0, &mut xrng);
        let dy = Tensor::randn(Shape::new(2, 8, 6, 6), 1.0, &mut xrng);

        // Conventional: Full cache.
        let y1 = b1.forward(&x, CacheMode::Full);
        zero_grads_block(&mut b1);
        let dx_cached = b1.backward_cached(&dy);

        // Reversible: Stats + backward_rev.
        let y2 = b2.forward(&x, CacheMode::Stats);
        zero_grads_block(&mut b2);
        let (_, dx_rev) = b2.backward_rev(&y2, &dy);

        assert!(y1.max_abs_diff(&y2) < 1e-5);
        assert!(dx_cached.max_abs_diff(&dx_rev) < 1e-4, "dx diff {}", dx_cached.max_abs_diff(&dx_rev));

        // Parameter gradients must match too.
        let mut g1 = Vec::new();
        b1.visit_params(&mut |p| g1.push(p.grad.clone()));
        let mut g2 = Vec::new();
        b2.visit_params(&mut |p| g2.push(p.grad.clone()));
        assert_eq!(g1.len(), g2.len());
        for (a, b) in g1.iter().zip(&g2) {
            assert!(a.max_abs_diff(b) < 1e-3, "param grad diff {}", a.max_abs_diff(b));
        }
    }

    fn zero_grads_block(b: &mut RevBlock) {
        b.visit_params(&mut |p| p.zero_grad());
    }

    #[test]
    fn initial_block_is_identity() {
        // Zero-init projection BNs -> F = G = 0 -> block is the identity.
        let mut rng = StdRng::seed_from_u64(4);
        let half = 4;
        let f = MBConv::new(MBConvCfg::same(half, 3, 2.0).plain().with_zero_init(), &mut rng);
        let g = MBConv::new(MBConvCfg::same(half, 3, 2.0).plain().with_zero_init(), &mut rng);
        let mut b = RevBlock::new(8, Box::new(f), Box::new(g));
        let x = Tensor::randn(Shape::new(1, 8, 4, 4), 1.0, &mut rng);
        let y = b.forward(&x, CacheMode::Full);
        assert!(y.max_abs_diff(&x) < 1e-5);
        b.clear_cache();
    }

    #[test]
    fn stats_mode_caches_only_stats() {
        revbifpn_nn::meter::reset();
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = make_block(8, &mut rng);
        let x = Tensor::randn(Shape::new(2, 8, 8, 8), 1.0, &mut rng);
        let _ = b.forward(&x, CacheMode::Stats);
        let stats_bytes = revbifpn_nn::meter::current();
        assert_eq!(stats_bytes as u64, b.cache_bytes(x.shape(), CacheMode::Stats));
        // Stats cache is tiny compared to a Full cache.
        assert!((stats_bytes as u64) < b.cache_bytes(x.shape(), CacheMode::Full) / 10);
        b.clear_cache();
        assert_eq!(revbifpn_nn::meter::current(), 0);
    }

    #[test]
    fn macs_are_sum_of_f_and_g() {
        let mut rng = StdRng::seed_from_u64(6);
        let b = make_block(8, &mut rng);
        let x = Shape::new(1, 8, 16, 16);
        assert!(b.macs(x) > 0);
    }
}
