//! Multi-stream reversible stages and the [`ReversibleSequence`] engine that
//! performs "backpropagation without storing activations" over a chain of
//! them.
//!
//! A [`RevStage`] transforms a vector of per-resolution feature streams into
//! another such vector, invertibly. RevBiFPN's backbone is a
//! `ReversibleSequence` of [`SiloStage`]s (fusion) and [`BlockStage`]s
//! (same-resolution reversible residual blocks).

use crate::revblock::RevBlock;
use crate::silo::RevSilo;
use revbifpn_nn::{meter, CacheMode, Cached, Param};
use revbifpn_tensor::{Shape, Tensor};

/// A reversible transformation over a vector of feature streams.
///
/// `Send` mirrors the bound on [`revbifpn_nn::Layer`]: stages run inside
/// worker-pool tasks (sharded training) and schedule their own sub-layer
/// work on the pool.
pub trait RevStage: std::fmt::Debug + Send {
    /// Forward pass: `n_in` streams in, `n_out` streams out.
    fn forward(&mut self, xs: &[Tensor], mode: CacheMode) -> Vec<Tensor>;

    /// Exact inverse (evaluation semantics).
    fn inverse(&mut self, ys: &[Tensor]) -> Vec<Tensor>;

    /// Reversible backward from outputs: reconstructs inputs, accumulates
    /// parameter gradients, returns `(xs, dxs)`. Requires the forward pass
    /// to have used [`CacheMode::Stats`].
    fn backward_rev(&mut self, ys: &[Tensor], dys: &[Tensor]) -> (Vec<Tensor>, Vec<Tensor>);

    /// Conventional backward consuming `Full` caches.
    fn backward_cached(&mut self, dys: &[Tensor]) -> Vec<Tensor>;

    /// Number of input streams.
    fn in_streams(&self) -> usize;

    /// Number of output streams.
    fn out_streams(&self) -> usize;

    /// Output shapes for given input shapes.
    fn out_shapes(&self, xs: &[Shape]) -> Vec<Shape>;

    /// MAC count of one forward pass.
    fn macs(&self, xs: &[Shape]) -> u64;

    /// Visits all parameters.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits all non-parameter persistent buffers (BatchNorm running
    /// statistics) in a stable order, for checkpoint/resume.
    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        let _ = f;
    }

    /// Visits every BatchNorm layer in a stable order (see
    /// [`revbifpn_nn::Layer::visit_bn`]); the sharded trainer uses this to
    /// manage decoupled batch statistics.
    fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        let _ = f;
    }

    /// Clears all caches.
    fn clear_cache(&mut self);

    /// Analytic cache bytes for the given input shapes and mode.
    fn cache_bytes(&self, xs: &[Shape], mode: CacheMode) -> u64;

    /// Short identifier for diagnostics.
    fn name(&self) -> &str {
        "rev_stage"
    }

    /// Inference-only frozen form of this stage (see [`crate::FrozenStage`]).
    /// The result is *uncompiled*: call [`crate::FrozenStage::compile`] (or
    /// freeze through [`ReversibleSequence::freeze`]) before running it.
    fn freeze(&self) -> Result<crate::FrozenStage, revbifpn_nn::FreezeError> {
        Err(revbifpn_nn::FreezeError::unsupported("reversible stage", self.name()))
    }
}

impl RevStage for RevSilo {
    fn forward(&mut self, xs: &[Tensor], mode: CacheMode) -> Vec<Tensor> {
        RevSilo::forward(self, xs, mode)
    }

    fn inverse(&mut self, ys: &[Tensor]) -> Vec<Tensor> {
        RevSilo::inverse(self, ys)
    }

    fn backward_rev(&mut self, ys: &[Tensor], dys: &[Tensor]) -> (Vec<Tensor>, Vec<Tensor>) {
        RevSilo::backward_rev(self, ys, dys)
    }

    fn backward_cached(&mut self, dys: &[Tensor]) -> Vec<Tensor> {
        RevSilo::backward_cached(self, dys)
    }

    fn in_streams(&self) -> usize {
        self.n_in()
    }

    fn out_streams(&self) -> usize {
        self.n_out()
    }

    fn out_shapes(&self, xs: &[Shape]) -> Vec<Shape> {
        RevSilo::out_shapes(self, xs)
    }

    fn macs(&self, xs: &[Shape]) -> u64 {
        RevSilo::macs(self, xs)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        RevSilo::visit_params(self, f)
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        RevSilo::visit_buffers(self, f)
    }

    fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        RevSilo::visit_bn(self, f)
    }

    fn clear_cache(&mut self) {
        RevSilo::clear_cache(self)
    }

    fn cache_bytes(&self, xs: &[Shape], mode: CacheMode) -> u64 {
        RevSilo::cache_bytes(self, xs, mode)
    }

    fn name(&self) -> &str {
        "rev_silo"
    }

    fn freeze(&self) -> Result<crate::FrozenStage, revbifpn_nn::FreezeError> {
        Ok(crate::FrozenStage::Silo(RevSilo::freeze(self)?))
    }
}

/// Per-stream reversible residual blocks (the "I" components of the paper's
/// Figure 3): stream `i` is transformed by `blocks[i]` in sequence, streams
/// do not interact.
#[derive(Debug, Default)]
pub struct BlockStage {
    blocks: Vec<Vec<RevBlock>>,
}

impl BlockStage {
    /// Builds from per-stream block chains (an empty chain = identity for
    /// that stream).
    pub fn new(blocks: Vec<Vec<RevBlock>>) -> Self {
        Self { blocks }
    }

    /// Number of streams.
    pub fn streams(&self) -> usize {
        self.blocks.len()
    }
}

impl RevStage for BlockStage {
    fn forward(&mut self, xs: &[Tensor], mode: CacheMode) -> Vec<Tensor> {
        assert_eq!(xs.len(), self.blocks.len(), "BlockStage stream count mismatch");
        xs.iter()
            .zip(&mut self.blocks)
            .map(|(x, chain)| {
                let mut cur = x.clone();
                for b in chain {
                    cur = b.forward(&cur, mode);
                }
                cur
            })
            .collect()
    }

    fn inverse(&mut self, ys: &[Tensor]) -> Vec<Tensor> {
        ys.iter()
            .zip(&mut self.blocks)
            .map(|(y, chain)| {
                let mut cur = y.clone();
                for b in chain.iter_mut().rev() {
                    cur = b.inverse(&cur);
                }
                cur
            })
            .collect()
    }

    fn backward_rev(&mut self, ys: &[Tensor], dys: &[Tensor]) -> (Vec<Tensor>, Vec<Tensor>) {
        // Streams never interact, so each stream's whole reconstruct+backward
        // chain is one independent task. Tasks run under `meter::isolated`
        // and are absorbed in stream order, so the activation-meter trace and
        // all results are bitwise independent of the thread count.
        let mut slots: Vec<Option<((Tensor, Tensor), meter::TaskMeter)>> =
            (0..self.blocks.len()).map(|_| None).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self
            .blocks
            .iter_mut()
            .zip(slots.iter_mut())
            .zip(ys.iter().zip(dys))
            .map(|((chain, slot), (y, dy))| {
                Box::new(move || {
                    *slot = Some(meter::isolated(|| {
                        let mut cur = y.clone();
                        let mut dcur = dy.clone();
                        for b in chain.iter_mut().rev() {
                            let (x, dx) = b.backward_rev(&cur, &dcur);
                            cur = x;
                            dcur = dx;
                        }
                        (cur, dcur)
                    }));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        revbifpn_tensor::par::parallel_join(tasks);
        let mut xs = Vec::with_capacity(ys.len());
        let mut dxs = Vec::with_capacity(ys.len());
        for slot in slots {
            let ((x, dx), tm) = slot.expect("stream task did not run");
            meter::absorb(&tm);
            xs.push(x);
            dxs.push(dx);
        }
        (xs, dxs)
    }

    fn backward_cached(&mut self, dys: &[Tensor]) -> Vec<Tensor> {
        dys.iter()
            .zip(&mut self.blocks)
            .map(|(dy, chain)| {
                let mut cur = dy.clone();
                for b in chain.iter_mut().rev() {
                    cur = b.backward_cached(&cur);
                }
                cur
            })
            .collect()
    }

    fn in_streams(&self) -> usize {
        self.blocks.len()
    }

    fn out_streams(&self) -> usize {
        self.blocks.len()
    }

    fn out_shapes(&self, xs: &[Shape]) -> Vec<Shape> {
        xs.to_vec()
    }

    fn macs(&self, xs: &[Shape]) -> u64 {
        xs.iter().zip(&self.blocks).map(|(x, chain)| chain.iter().map(|b| b.macs(*x)).sum::<u64>()).sum()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for chain in &mut self.blocks {
            for b in chain {
                b.visit_params(f);
            }
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for chain in &mut self.blocks {
            for b in chain {
                b.visit_buffers(f);
            }
        }
    }

    fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        for chain in &mut self.blocks {
            for b in chain {
                b.visit_bn(f);
            }
        }
    }

    fn clear_cache(&mut self) {
        for chain in &mut self.blocks {
            for b in chain {
                b.clear_cache();
            }
        }
    }

    fn cache_bytes(&self, xs: &[Shape], mode: CacheMode) -> u64 {
        xs.iter()
            .zip(&self.blocks)
            .map(|(x, chain)| chain.iter().map(|b| b.cache_bytes(*x, mode)).sum::<u64>())
            .sum()
    }

    fn name(&self) -> &str {
        "block_stage"
    }

    fn freeze(&self) -> Result<crate::FrozenStage, revbifpn_nn::FreezeError> {
        let blocks = self
            .blocks
            .iter()
            .map(|chain| chain.iter().map(RevBlock::freeze).collect::<Result<Vec<_>, _>>())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(crate::FrozenStage::Blocks(blocks))
    }
}

/// How a reversible sequence is trained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainMode {
    /// Reversible recomputation: forward with [`CacheMode::Stats`], backward
    /// reconstructs activations stage-by-stage. O(nchw) activation memory.
    Reversible,
    /// Conventional training: forward with [`CacheMode::Full`], every stage
    /// keeps its caches. Θ(nchw·d) activation memory.
    Conventional,
}

/// Policy applied by the drift sentinel when a stage's reconstructed
/// activations drift from their forward-pass fingerprint beyond tolerance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftPolicy {
    /// Count the event (`rev.drift_warn` in `nn::meter`) and continue.
    Warn,
    /// Switch the offending stage to conventional activation caching for the
    /// rest of the run (hybrid-reversible); counted as `rev.drift_fallback`.
    FallbackToCached,
    /// Panic: the run is unrecoverable by policy.
    Abort,
}

/// Configuration of the reversible-drift sentinel.
///
/// During a `Stats`-mode forward, each stage's *input* streams are
/// fingerprinted with a strided sample (at most [`FP_SAMPLES`] values per
/// stream, not counted by the activation meter). The reversible backward
/// compares the reconstructed inputs against the fingerprint; drift above
/// `tolerance` triggers `policy`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftConfig {
    /// Master switch; when `false` no fingerprints are captured or checked.
    pub enabled: bool,
    /// Max-abs-diff budget per sampled element. The default, `5e-2`, is the
    /// same bound the inversion tests use: measured whole-network
    /// reconstruction error is ~1.7e-2 (toolchain-dependent), while
    /// structural corruption produces O(1) errors.
    pub tolerance: f32,
    /// What to do when drift exceeds `tolerance`.
    pub policy: DriftPolicy,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self { enabled: true, tolerance: 5e-2, policy: DriftPolicy::Warn }
    }
}

/// Per-stage drift statistics from the sentinel.
#[derive(Clone, Debug)]
pub struct DriftStageReport {
    /// Stage identifier ([`RevStage::name`]).
    pub name: String,
    /// Largest drift observed across all checked backward passes.
    pub max_drift: f32,
    /// Number of backward passes in which this stage was checked.
    pub checks: u64,
    /// `true` if the stage has been switched to conventional caching.
    pub fallback: bool,
}

/// Sentinel statistics for a whole [`ReversibleSequence`].
#[derive(Clone, Debug, Default)]
pub struct DriftReport {
    /// One entry per stage, in forward order.
    pub stages: Vec<DriftStageReport>,
}

impl DriftReport {
    /// Number of stages currently running in cached-fallback mode.
    pub fn fallback_count(&self) -> usize {
        self.stages.iter().filter(|s| s.fallback).count()
    }

    /// Largest drift observed across all stages.
    pub fn max_drift(&self) -> f32 {
        self.stages.iter().fold(0.0, |m, s| m.max(s.max_drift))
    }
}

/// A one-shot injected reconstruction fault (deterministic test harness):
/// before stage `stage`'s reversible backward, bit `bit` of element
/// `index` (modulo length) in output stream `stream` is flipped —
/// simulating a corrupted activation inside the reversible chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconFault {
    /// Stage index (forward order) whose *output* is corrupted.
    pub stage: usize,
    /// Stream index within that stage's outputs.
    pub stream: usize,
    /// Element index (taken modulo the stream length).
    pub index: usize,
    /// Bit to flip (taken modulo 32).
    pub bit: u32,
}

/// Samples per stream used for drift fingerprints. The cost per stage is a
/// strided read of at most this many elements — negligible next to the
/// stage's own recomputation, and deliberately *not* registered with the
/// activation meter (it is O(1) diagnostic state, not an activation cache).
pub const FP_SAMPLES: usize = 64;

pub(crate) fn fingerprint(xs: &[Tensor]) -> Vec<Vec<f32>> {
    xs.iter()
        .map(|x| {
            let d = x.data();
            let stride = (d.len() / FP_SAMPLES).max(1);
            d.iter().step_by(stride).take(FP_SAMPLES).copied().collect()
        })
        .collect()
}

pub(crate) fn flip_bit(t: &mut Tensor, index: usize, bit: u32) {
    let d = t.data_mut();
    let i = index % d.len();
    d[i] = f32::from_bits(d[i].to_bits() ^ (1u32 << (bit % 32)));
}

pub(crate) fn fingerprint_drift(fp: &[Vec<f32>], xs: &[Tensor]) -> f32 {
    let mut worst = 0.0f32;
    for (samples, x) in fp.iter().zip(xs) {
        let d = x.data();
        let stride = (d.len() / FP_SAMPLES).max(1);
        for (s, v) in samples.iter().zip(d.iter().step_by(stride)) {
            let diff = (s - v).abs();
            // A NaN reconstruction is infinite drift, not zero: naive
            // f32::max would silently ignore it.
            worst = worst.max(if diff.is_finite() { diff } else { f32::INFINITY });
        }
    }
    worst
}

/// Per-stage sentinel state (fingerprint, fallback status, statistics).
#[derive(Debug, Default)]
struct StageSentinel {
    fingerprint: Option<Vec<Vec<f32>>>,
    fallback: bool,
    /// Input streams stored when the stage runs in cached-fallback mode.
    /// Unlike fingerprints this is real activation memory, so it *is*
    /// registered with the meter.
    fallback_inputs: Cached<Vec<Tensor>>,
    max_drift: f32,
    checks: u64,
}

/// A chain of [`RevStage`]s with a single backward entry point that
/// dispatches on [`TrainMode`], guarded by a reversible-drift sentinel (see
/// [`DriftConfig`]).
#[derive(Debug, Default)]
pub struct ReversibleSequence {
    stages: Vec<Box<dyn RevStage>>,
    sentinels: Vec<StageSentinel>,
    drift: DriftConfig,
    recon_fault: Option<ReconFault>,
}

impl ReversibleSequence {
    /// An empty sequence (identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage.
    pub fn add(&mut self, stage: Box<dyn RevStage>) {
        if let Some(last) = self.stages.last() {
            assert_eq!(
                last.out_streams(),
                stage.in_streams(),
                "stage stream counts must chain: {} -> {}",
                last.out_streams(),
                stage.in_streams()
            );
        }
        self.stages.push(stage);
        self.sentinels.push(StageSentinel::default());
    }

    /// Replaces the drift-sentinel configuration and resets all sentinel
    /// state (fingerprints, fallback flags, statistics, pending faults).
    pub fn set_drift_config(&mut self, cfg: DriftConfig) {
        self.drift = cfg;
        self.recon_fault = None;
        for s in &mut self.sentinels {
            *s = StageSentinel::default();
        }
    }

    /// Current drift-sentinel configuration.
    pub fn drift_config(&self) -> DriftConfig {
        self.drift
    }

    /// Per-stage drift statistics.
    pub fn drift_report(&self) -> DriftReport {
        DriftReport {
            stages: self
                .stages
                .iter()
                .zip(&self.sentinels)
                .map(|(stage, s)| DriftStageReport {
                    name: stage.name().to_string(),
                    max_drift: s.max_drift,
                    checks: s.checks,
                    fallback: s.fallback,
                })
                .collect(),
        }
    }

    /// Arms a one-shot [`ReconFault`]: the next reversible backward flips the
    /// requested bit before the target stage's reconstruction. Test harness
    /// for the drift sentinel; a no-op for conventional backward.
    pub fn inject_recon_fault(&mut self, fault: ReconFault) {
        assert!(fault.stage < self.stages.len(), "fault stage {} out of range", fault.stage);
        self.recon_fault = Some(fault);
    }

    /// Visits all non-parameter persistent buffers, in stage order.
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for s in &mut self.stages {
            s.visit_buffers(f);
        }
    }

    /// Visits every BatchNorm layer, in stage order.
    pub fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        for s in &mut self.stages {
            s.visit_bn(f);
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when no stages have been added.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Immutable stage access.
    pub fn stages(&self) -> &[Box<dyn RevStage>] {
        &self.stages
    }

    /// Consumes the sequence and returns its stages in forward order,
    /// discarding sentinel state. This is the hand-off point to the
    /// pipelined engine: the stages are re-homed into [`crate::StageCell`]s
    /// which carry their own per-micro-batch sentinels.
    pub fn into_stages(self) -> Vec<Box<dyn RevStage>> {
        self.stages
    }

    /// Splits the chain into `parts` contiguous groups with approximately
    /// balanced MAC counts (greedy longest-prefix under the ideal per-part
    /// budget, never leaving a later part empty). Returns `parts + 1`
    /// boundary indices starting at 0 and ending at `len()`.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0` or `parts > len()`.
    pub fn partition_by_macs(&self, xs: &[Shape], parts: usize) -> Vec<usize> {
        assert!(parts > 0, "partition needs at least one part");
        assert!(parts <= self.stages.len(), "cannot split {} stages into {} parts", self.stages.len(), parts);
        let mut cur = xs.to_vec();
        let macs: Vec<u64> = self
            .stages
            .iter()
            .map(|s| {
                let m = s.macs(&cur);
                cur = s.out_shapes(&cur);
                m
            })
            .collect();
        let total: u64 = macs.iter().sum();
        let mut bounds = vec![0usize];
        let mut acc = 0u64;
        let mut start = 0usize;
        for part in 0..parts - 1 {
            // Each remaining part must receive at least one stage.
            let must_stop = self.stages.len() - (parts - 1 - part);
            let budget = (total.saturating_mul((part + 1) as u64)) / parts as u64;
            let mut end = start;
            while end < must_stop {
                let next = acc + macs[end];
                // Take the stage if it brings us closer to the cumulative
                // budget than stopping short would.
                let closer = (next as i128 - budget as i128).abs() < (budget as i128 - acc as i128).abs();
                if end == start || next <= budget || closer {
                    acc = next;
                    end += 1;
                } else {
                    break;
                }
            }
            bounds.push(end);
            start = end;
        }
        bounds.push(self.stages.len());
        bounds
    }

    /// Inference-only frozen form of the whole chain: every stage frozen via
    /// [`RevStage::freeze`]. The result is *uncompiled*; call
    /// [`crate::FrozenSequence::compile`] to pack the conv weights.
    pub fn freeze(&self) -> Result<crate::FrozenSequence, revbifpn_nn::FreezeError> {
        let stages = self.stages.iter().map(|s| s.freeze()).collect::<Result<Vec<_>, _>>()?;
        Ok(crate::FrozenSequence::new(stages))
    }

    /// Forward through all stages. For training, pass `CacheMode::Stats`
    /// (reversible) or `CacheMode::Full` (conventional).
    ///
    /// In `Stats` mode the drift sentinel (when enabled) fingerprints each
    /// stage's input, and any stage in cached-fallback mode runs with `Full`
    /// caches plus a stored copy of its input (hybrid-reversible).
    pub fn forward(&mut self, xs: Vec<Tensor>, mode: CacheMode) -> Vec<Tensor> {
        let mut cur = xs;
        for (s, sent) in self.stages.iter_mut().zip(self.sentinels.iter_mut()) {
            if mode == CacheMode::Stats {
                if self.drift.enabled {
                    sent.fingerprint = Some(fingerprint(&cur));
                }
                if sent.fallback {
                    let bytes = cur.iter().map(Tensor::bytes).sum();
                    sent.fallback_inputs.put(cur.clone(), bytes);
                    cur = s.forward(&cur, CacheMode::Full);
                    continue;
                }
            }
            cur = s.forward(&cur, mode);
        }
        cur
    }

    /// Exact inverse through all stages (evaluation semantics).
    pub fn inverse(&mut self, ys: Vec<Tensor>) -> Vec<Tensor> {
        let mut cur = ys;
        for s in self.stages.iter_mut().rev() {
            cur = s.inverse(&cur);
        }
        cur
    }

    /// Backward pass.
    ///
    /// * `TrainMode::Reversible`: `ys` must be the outputs of the forward
    ///   pass; activations are reconstructed stage by stage. Returns
    ///   `(xs, dxs)` at the sequence input.
    /// * `TrainMode::Conventional`: uses the stages' `Full` caches; `ys` is
    ///   ignored (may be empty). Returns `(vec![], dxs)`.
    pub fn backward(&mut self, ys: &[Tensor], dys: Vec<Tensor>, mode: TrainMode) -> (Vec<Tensor>, Vec<Tensor>) {
        match mode {
            TrainMode::Reversible => {
                let mut cur_y: Vec<Tensor> = ys.to_vec();
                let mut cur_dy = dys;
                let cfg = self.drift;
                let fault = self.recon_fault.take();
                let iter = self.stages.iter_mut().zip(self.sentinels.iter_mut());
                for (i, (s, sent)) in iter.enumerate().rev() {
                    if sent.fallback {
                        // Hybrid-reversible: consume the Full caches and the
                        // stored input instead of reconstructing.
                        let dxs = s.backward_cached(&cur_dy);
                        cur_y = sent
                            .fallback_inputs
                            .take()
                            .expect("fallback stage has no stored input (Stats forward missing)");
                        cur_dy = dxs;
                        continue;
                    }
                    if let Some(f) = fault {
                        if f.stage == i {
                            let stream = f.stream % cur_y.len();
                            flip_bit(&mut cur_y[stream], f.index, f.bit);
                        }
                    }
                    let (xs, dxs) = s.backward_rev(&cur_y, &cur_dy);
                    if cfg.enabled {
                        if let Some(fp) = sent.fingerprint.take() {
                            let drift = fingerprint_drift(&fp, &xs);
                            sent.checks += 1;
                            sent.max_drift = sent.max_drift.max(drift);
                            if drift > cfg.tolerance {
                                match cfg.policy {
                                    DriftPolicy::Warn => meter::count("rev.drift_warn"),
                                    DriftPolicy::FallbackToCached => {
                                        sent.fallback = true;
                                        meter::count("rev.drift_fallback");
                                    }
                                    DriftPolicy::Abort => panic!(
                                        "reversible drift {drift:.3e} exceeds tolerance {:.3e} \
                                         at stage {i} ({})",
                                        cfg.tolerance,
                                        s.name()
                                    ),
                                }
                            }
                        }
                    }
                    cur_y = xs;
                    cur_dy = dxs;
                }
                (cur_y, cur_dy)
            }
            TrainMode::Conventional => {
                let mut cur_dy = dys;
                for s in self.stages.iter_mut().rev() {
                    cur_dy = s.backward_cached(&cur_dy);
                }
                (Vec::new(), cur_dy)
            }
        }
    }

    /// Output shapes for given input shapes.
    pub fn out_shapes(&self, xs: &[Shape]) -> Vec<Shape> {
        let mut cur = xs.to_vec();
        for s in &self.stages {
            cur = s.out_shapes(&cur);
        }
        cur
    }

    /// Total MAC count.
    pub fn macs(&self, xs: &[Shape]) -> u64 {
        let mut cur = xs.to_vec();
        let mut total = 0;
        for s in &self.stages {
            total += s.macs(&cur);
            cur = s.out_shapes(&cur);
        }
        total
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for s in &mut self.stages {
            s.visit_params(f);
        }
    }

    /// Visits the parameters of stages `lo..hi` only (pipeline-stage
    /// parameter sync and gradient merge against a partitioned copy).
    pub fn visit_params_range(&mut self, lo: usize, hi: usize, f: &mut dyn FnMut(&mut Param)) {
        for s in &mut self.stages[lo..hi] {
            s.visit_params(f);
        }
    }

    /// Visits the persistent buffers of stages `lo..hi` only.
    pub fn visit_buffers_range(&mut self, lo: usize, hi: usize, f: &mut dyn FnMut(&mut Tensor)) {
        for s in &mut self.stages[lo..hi] {
            s.visit_buffers(f);
        }
    }

    /// Visits the BatchNorm layers of stages `lo..hi` only.
    pub fn visit_bn_range(
        &mut self,
        lo: usize,
        hi: usize,
        f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d),
    ) {
        for s in &mut self.stages[lo..hi] {
            s.visit_bn(f);
        }
    }

    /// Clears all stage caches, pending fingerprints, and stored fallback
    /// inputs. Fallback *flags* and drift statistics persist (a stage that
    /// tripped the sentinel stays on the cached path for the rest of the
    /// run); use [`ReversibleSequence::set_drift_config`] to fully reset.
    pub fn clear_cache(&mut self) {
        for s in &mut self.stages {
            s.clear_cache();
        }
        for sent in &mut self.sentinels {
            sent.fingerprint = None;
            sent.fallback_inputs.clear();
        }
    }

    /// Analytic cache bytes of a forward pass in `mode`, summed over stages.
    pub fn cache_bytes(&self, xs: &[Shape], mode: CacheMode) -> u64 {
        let mut cur = xs.to_vec();
        let mut total = 0;
        for s in &self.stages {
            total += s.cache_bytes(&cur, mode);
            cur = s.out_shapes(&cur);
        }
        total
    }

    /// Analytic *peak transient* cache bytes of the reversible backward: the
    /// largest single stage's `Full` cache (stages are recomputed one at a
    /// time and freed immediately).
    pub fn peak_transient_bytes(&self, xs: &[Shape]) -> u64 {
        let mut cur = xs.to_vec();
        let mut peak = 0;
        for s in &self.stages {
            peak = peak.max(s.cache_bytes(&cur, CacheMode::Full));
            cur = s.out_shapes(&cur);
        }
        peak
    }

    /// Analytic activation bytes of classic gradient checkpointing (Chen et
    /// al. 2016) over this sequence: the inputs of every `segment`-th stage
    /// are stored, and the largest segment is rematerialized with `Full`
    /// caches during backward. `segment = 1` degenerates to conventional
    /// training; `segment = len()` stores only the sequence input.
    /// With `segment ~ sqrt(len())` this is the O(sqrt(D)) regime the paper
    /// contrasts reversibility against (Appendix A).
    ///
    /// # Panics
    ///
    /// Panics if `segment == 0`.
    pub fn checkpoint_bytes(&self, xs: &[Shape], segment: usize) -> u64 {
        assert!(segment > 0, "segment length must be positive");
        let mut cur = xs.to_vec();
        let mut stored = 0u64;
        let mut seg_cache = 0u64;
        let mut max_seg = 0u64;
        for (i, s) in self.stages.iter().enumerate() {
            if i % segment == 0 {
                stored += cur.iter().map(|sh| sh.bytes() as u64).sum::<u64>();
                max_seg = max_seg.max(seg_cache);
                seg_cache = 0;
            }
            seg_cache += s.cache_bytes(&cur, CacheMode::Full);
            cur = s.out_shapes(&cur);
        }
        stored + max_seg.max(seg_cache)
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn_nn::layers::{MBConv, MBConvCfg};
    use revbifpn_nn::Layer;

    const C: [usize; 3] = [8, 12, 16];

    fn make_silo(n_in: usize, n_out: usize, seed: u64) -> RevSilo {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut down = |j: usize, i: usize| -> Box<dyn Layer> {
            Box::new(MBConv::new(MBConvCfg::down(C[j], C[i], (i - j) as u32, 1.5), &mut rng)) as Box<dyn Layer>
        };
        let mut rng2 = StdRng::seed_from_u64(seed + 1);
        let mut up = |j: usize, i: usize| -> Box<dyn Layer> {
            Box::new(MBConv::new(MBConvCfg::up(C[j], C[i], (j - i) as u32, 1.5), &mut rng2)) as Box<dyn Layer>
        };
        RevSilo::new(n_in, n_out, &mut down, &mut up)
    }

    fn make_blocks(streams: usize, seed: u64) -> BlockStage {
        let mut rng = StdRng::seed_from_u64(seed);
        let blocks = (0..streams)
            .map(|i| {
                let half = C[i] / 2;
                let f = MBConv::new(MBConvCfg::same(half, 3, 1.5).plain(), &mut rng);
                let g = MBConv::new(MBConvCfg::same(half, 3, 1.5).plain(), &mut rng);
                vec![RevBlock::new(C[i], Box::new(f), Box::new(g))]
            })
            .collect();
        BlockStage::new(blocks)
    }

    /// A 5-stage single-input sequence for `StageCell` tests.
    pub(crate) fn make_seq_for_cells(seed: u64) -> ReversibleSequence {
        let mut seq = ReversibleSequence::new();
        seq.add(Box::new(make_silo(1, 2, seed)));
        seq.add(Box::new(make_blocks(2, seed + 10)));
        seq.add(Box::new(make_silo(2, 3, seed + 20)));
        seq.add(Box::new(make_blocks(3, seed + 30)));
        seq.add(Box::new(make_silo(3, 3, seed + 40)));
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn_nn::layers::{MBConv, MBConvCfg};
    use revbifpn_nn::Layer;
    use revbifpn_tensor::Tensor;

    const C: [usize; 3] = [8, 12, 16];

    fn make_silo(n_in: usize, n_out: usize, seed: u64) -> RevSilo {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut down = |j: usize, i: usize| -> Box<dyn Layer> {
            Box::new(MBConv::new(MBConvCfg::down(C[j], C[i], (i - j) as u32, 1.5), &mut rng)) as Box<dyn Layer>
        };
        let mut rng2 = StdRng::seed_from_u64(seed + 1);
        let mut up = |j: usize, i: usize| -> Box<dyn Layer> {
            Box::new(MBConv::new(MBConvCfg::up(C[j], C[i], (j - i) as u32, 1.5), &mut rng2)) as Box<dyn Layer>
        };
        RevSilo::new(n_in, n_out, &mut down, &mut up)
    }

    fn make_blocks(streams: usize, seed: u64) -> BlockStage {
        let mut rng = StdRng::seed_from_u64(seed);
        let blocks = (0..streams)
            .map(|i| {
                let half = C[i] / 2;
                let f = MBConv::new(MBConvCfg::same(half, 3, 1.5).plain(), &mut rng);
                let g = MBConv::new(MBConvCfg::same(half, 3, 1.5).plain(), &mut rng);
                vec![RevBlock::new(C[i], Box::new(f), Box::new(g))]
            })
            .collect();
        BlockStage::new(blocks)
    }

    fn make_seq(seed: u64) -> ReversibleSequence {
        let mut seq = ReversibleSequence::new();
        seq.add(Box::new(make_silo(1, 2, seed)));
        seq.add(Box::new(make_blocks(2, seed + 10)));
        seq.add(Box::new(make_silo(2, 3, seed + 20)));
        seq.add(Box::new(make_blocks(3, seed + 30)));
        seq.add(Box::new(make_silo(3, 3, seed + 40)));
        seq
    }

    fn randomize_bn(seq: &mut ReversibleSequence, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        seq.visit_params(&mut |p| {
            if p.name == "bn.gamma" {
                p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, &mut rng);
            }
        });
    }

    #[test]
    fn sequence_shapes_chain() {
        let seq = make_seq(0);
        let shapes = seq.out_shapes(&[Shape::new(2, 8, 16, 16)]);
        assert_eq!(shapes.len(), 3);
        assert_eq!(shapes[0], Shape::new(2, 8, 16, 16));
        assert_eq!(shapes[1], Shape::new(2, 12, 8, 8));
        assert_eq!(shapes[2], Shape::new(2, 16, 4, 4));
    }

    #[test]
    fn sequence_inverse_reconstructs_input() {
        let mut seq = make_seq(1);
        randomize_bn(&mut seq, 100);
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(Shape::new(1, 8, 16, 16), 1.0, &mut rng);
        let ys = seq.forward(vec![x.clone()], CacheMode::None);
        let back = seq.inverse(ys);
        assert_eq!(back.len(), 1);
        // The residual round-trip `(m + F) - F` is inexact in f32, and the
        // per-step rounding error is amplified through five stages of MBConv
        // transforms, so the reconstruction error is toolchain-dependent
        // (measured 1.66e-2 with rustc 1.95 on x86-64). Structural inversion
        // bugs produce O(1) errors; 5e-2 keeps the test meaningful without
        // asserting on codegen-specific rounding.
        assert!(back[0].max_abs_diff(&x) < 5e-2, "diff {}", back[0].max_abs_diff(&x));
    }

    #[test]
    fn reversible_equals_conventional_gradients() {
        let mut s1 = make_seq(3);
        randomize_bn(&mut s1, 300);
        let mut s2 = make_seq(3);
        randomize_bn(&mut s2, 300);

        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(Shape::new(2, 8, 16, 16), 1.0, &mut rng);
        let out_shapes = s1.out_shapes(&[x.shape()]);
        let dys: Vec<Tensor> = out_shapes.iter().map(|&sh| Tensor::randn(sh, 1.0, &mut rng)).collect();

        let _y1 = s1.forward(vec![x.clone()], CacheMode::Full);
        s1.visit_params(&mut |p| p.zero_grad());
        let (_, dx1) = s1.backward(&[], dys.clone(), TrainMode::Conventional);

        let y2 = s2.forward(vec![x.clone()], CacheMode::Stats);
        s2.visit_params(&mut |p| p.zero_grad());
        let (x_rec, dx2) = s2.backward(&y2, dys, TrainMode::Reversible);

        assert!(x_rec[0].max_abs_diff(&x) < 1e-2, "input reconstruction {}", x_rec[0].max_abs_diff(&x));
        assert!(dx1[0].max_abs_diff(&dx2[0]) < 1e-2, "dx {}", dx1[0].max_abs_diff(&dx2[0]));

        let mut g1 = Vec::new();
        s1.visit_params(&mut |p| g1.push(p.grad.clone()));
        let mut g2 = Vec::new();
        s2.visit_params(&mut |p| g2.push(p.grad.clone()));
        let mut worst = 0.0f32;
        for (a, b) in g1.iter().zip(&g2) {
            worst = worst.max(a.max_abs_diff(b) / (1.0 + a.abs_max()));
        }
        assert!(worst < 1e-3, "worst relative param-grad diff {worst}");
    }

    #[test]
    fn reversible_memory_is_constant_in_depth() {
        // Measure Stats-mode cached bytes for 1 vs 4 fusion stages: adding
        // stages must not grow the activation cache (only O(c) stats).
        let shallow = {
            let mut seq = ReversibleSequence::new();
            seq.add(Box::new(make_silo(3, 3, 50)));
            seq
        };
        let deep = {
            let mut seq = ReversibleSequence::new();
            for k in 0..4 {
                seq.add(Box::new(make_silo(3, 3, 60 + k)));
            }
            seq
        };
        let shapes = [
            Shape::new(4, C[0], 16, 16),
            Shape::new(4, C[1], 8, 8),
            Shape::new(4, C[2], 4, 4),
        ];
        let _stats_shallow = shallow.cache_bytes(&shapes, CacheMode::Stats);
        let stats_deep = deep.cache_bytes(&shapes, CacheMode::Stats);
        let full_shallow = shallow.cache_bytes(&shapes, CacheMode::Full);
        let full_deep = deep.cache_bytes(&shapes, CacheMode::Full);
        // Full caches grow ~linearly with stage count; stats stay tiny.
        assert!(full_deep > 3 * full_shallow);
        assert!(stats_deep < full_shallow / 10);
        // Peak transient of the reversible backward equals one stage's Full cache.
        assert_eq!(deep.peak_transient_bytes(&shapes), full_shallow.max(full_deep / 4));
    }

    #[test]
    fn measured_meter_confirms_constant_memory() {
        revbifpn_nn::meter::reset();
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<Tensor> = (0..3)
            .map(|i| Tensor::randn(Shape::new(2, C[i], 16 >> i, 16 >> i), 1.0, &mut rng))
            .collect();
        let shapes: Vec<Shape> = xs.iter().map(|x| x.shape()).collect();

        let mut deep = ReversibleSequence::new();
        for k in 0..3 {
            deep.add(Box::new(make_silo(3, 3, 70 + k)));
        }
        let _ = deep.forward(xs.clone(), CacheMode::Stats);
        let measured = revbifpn_nn::meter::current() as u64;
        assert_eq!(measured, deep.cache_bytes(&shapes, CacheMode::Stats));
        deep.clear_cache();

        let _ = deep.forward(xs, CacheMode::Full);
        let measured_full = revbifpn_nn::meter::current() as u64;
        assert_eq!(measured_full, deep.cache_bytes(&shapes, CacheMode::Full));
        deep.clear_cache();
        assert_eq!(revbifpn_nn::meter::current(), 0);
    }

    #[test]
    fn checkpointing_interpolates_between_regimes() {
        let mut seq = ReversibleSequence::new();
        for k in 0..6 {
            seq.add(Box::new(make_silo(3, 3, 90 + k)));
        }
        let shapes = [
            Shape::new(2, C[0], 16, 16),
            Shape::new(2, C[1], 8, 8),
            Shape::new(2, C[2], 4, 4),
        ];
        let conventional = seq.cache_bytes(&shapes, CacheMode::Full);
        let ckpt_all = seq.checkpoint_bytes(&shapes, 1);
        // segment=1 stores every stage input on top of full caches' max
        // segment (one stage), so it is within the conventional ballpark.
        assert!(ckpt_all >= conventional / 6);
        let sqrt_ckpt = seq.checkpoint_bytes(&shapes, 3); // ~sqrt(6)
        let one_ckpt = seq.checkpoint_bytes(&shapes, 6);
        let reversible = seq.cache_bytes(&shapes, CacheMode::Stats) + seq.peak_transient_bytes(&shapes);
        // Ordering: conventional > sqrt-checkpointing > reversible.
        assert!(sqrt_ckpt < conventional, "{sqrt_ckpt} vs {conventional}");
        assert!(reversible < sqrt_ckpt, "{reversible} vs {sqrt_ckpt}");
        // A single segment rematerializes the whole network at once, so it
        // costs *more* than the sqrt schedule: sqrt is the optimum.
        assert!(one_ckpt >= sqrt_ckpt);
    }

    #[test]
    fn drift_sentinel_clean_path_is_quiet() {
        let mut seq = make_seq(11);
        randomize_bn(&mut seq, 110);
        let warns = revbifpn_nn::meter::event_count("rev.drift_warn");
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::randn(Shape::new(1, 8, 16, 16), 1.0, &mut rng);
        let out_shapes = seq.out_shapes(&[x.shape()]);
        let ys = seq.forward(vec![x], CacheMode::Stats);
        let dys: Vec<Tensor> =
            out_shapes.iter().map(|&sh| Tensor::randn(sh, 1.0, &mut rng)).collect();
        let _ = seq.backward(&ys, dys, TrainMode::Reversible);
        let report = seq.drift_report();
        assert_eq!(report.stages.len(), 5);
        assert!(report.stages.iter().all(|s| s.checks == 1 && !s.fallback));
        assert!(
            report.max_drift() < seq.drift_config().tolerance,
            "clean drift {} >= tolerance",
            report.max_drift()
        );
        assert_eq!(revbifpn_nn::meter::event_count("rev.drift_warn"), warns);
    }

    #[test]
    fn injected_fault_trips_warn_policy() {
        let mut seq = make_seq(13);
        randomize_bn(&mut seq, 130);
        let warns = revbifpn_nn::meter::event_count("rev.drift_warn");
        let mut rng = StdRng::seed_from_u64(14);
        let x = Tensor::randn(Shape::new(1, 8, 16, 16), 1.0, &mut rng);
        let out_shapes = seq.out_shapes(&[x.shape()]);
        let ys = seq.forward(vec![x], CacheMode::Stats);
        let dys: Vec<Tensor> =
            out_shapes.iter().map(|&sh| Tensor::randn(sh, 1.0, &mut rng)).collect();
        seq.inject_recon_fault(ReconFault { stage: 0, stream: 0, index: 0, bit: 30 });
        let _ = seq.backward(&ys, dys, TrainMode::Reversible);
        let report = seq.drift_report();
        assert!(report.max_drift() > seq.drift_config().tolerance);
        assert_eq!(report.fallback_count(), 0, "Warn policy must not switch stages");
        assert!(revbifpn_nn::meter::event_count("rev.drift_warn") > warns);
    }

    #[test]
    fn injected_fault_with_fallback_switches_stage_to_cached() {
        let mut seq = make_seq(15);
        randomize_bn(&mut seq, 150);
        seq.set_drift_config(DriftConfig {
            policy: DriftPolicy::FallbackToCached,
            ..DriftConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(16);
        let x = Tensor::randn(Shape::new(1, 8, 16, 16), 1.0, &mut rng);
        let out_shapes = seq.out_shapes(&[x.shape()]);
        let dys: Vec<Tensor> =
            out_shapes.iter().map(|&sh| Tensor::randn(sh, 1.0, &mut rng)).collect();

        // Faulted step: stage 0 trips and is switched to the cached path.
        let ys = seq.forward(vec![x.clone()], CacheMode::Stats);
        seq.inject_recon_fault(ReconFault { stage: 0, stream: 0, index: 0, bit: 30 });
        let _ = seq.backward(&ys, dys.clone(), TrainMode::Reversible);
        assert_eq!(seq.drift_report().fallback_count(), 1);
        assert!(seq.drift_report().stages[0].fallback);
        seq.clear_cache();
        assert_eq!(seq.drift_report().fallback_count(), 1, "fallback must survive clear_cache");

        // Next step runs hybrid: stage 0 cached, the rest reversible. The
        // stored fallback input is an exact clone, so the sequence input is
        // reconstructed bit-exactly.
        seq.visit_params(&mut |p| p.zero_grad());
        let ys = seq.forward(vec![x.clone()], CacheMode::Stats);
        let (x_rec, _) = seq.backward(&ys, dys, TrainMode::Reversible);
        assert_eq!(x_rec[0], x);
        // The fallback stage skips drift checks from then on.
        assert_eq!(seq.drift_report().stages[0].checks, 1);
        assert_eq!(seq.drift_report().stages[1].checks, 2);
        let mut finite = true;
        seq.visit_params(&mut |p| finite &= p.grad.is_finite());
        assert!(finite, "hybrid backward produced non-finite gradients");
    }

    #[test]
    #[should_panic(expected = "exceeds tolerance")]
    fn abort_policy_panics_on_drift() {
        let mut seq = make_seq(17);
        randomize_bn(&mut seq, 170);
        seq.set_drift_config(DriftConfig { policy: DriftPolicy::Abort, ..DriftConfig::default() });
        let mut rng = StdRng::seed_from_u64(18);
        let x = Tensor::randn(Shape::new(1, 8, 16, 16), 1.0, &mut rng);
        let out_shapes = seq.out_shapes(&[x.shape()]);
        let ys = seq.forward(vec![x], CacheMode::Stats);
        let dys: Vec<Tensor> =
            out_shapes.iter().map(|&sh| Tensor::randn(sh, 1.0, &mut rng)).collect();
        seq.inject_recon_fault(ReconFault { stage: 0, stream: 0, index: 0, bit: 30 });
        let _ = seq.backward(&ys, dys, TrainMode::Reversible);
    }

    #[test]
    fn disabled_sentinel_skips_checks() {
        let mut seq = make_seq(19);
        randomize_bn(&mut seq, 190);
        seq.set_drift_config(DriftConfig { enabled: false, ..DriftConfig::default() });
        let mut rng = StdRng::seed_from_u64(20);
        let x = Tensor::randn(Shape::new(1, 8, 16, 16), 1.0, &mut rng);
        let out_shapes = seq.out_shapes(&[x.shape()]);
        let ys = seq.forward(vec![x], CacheMode::Stats);
        let dys: Vec<Tensor> =
            out_shapes.iter().map(|&sh| Tensor::randn(sh, 1.0, &mut rng)).collect();
        let _ = seq.backward(&ys, dys, TrainMode::Reversible);
        assert!(seq.drift_report().stages.iter().all(|s| s.checks == 0));
    }

    #[test]
    fn sequence_visits_bn_buffers() {
        let mut seq = make_seq(21);
        let mut n = 0usize;
        seq.visit_buffers(&mut |_| n += 1);
        assert!(n > 0, "expected BatchNorm running stats to be visited");
        assert_eq!(n % 2, 0, "buffers come in mean/var pairs");
    }

    #[test]
    fn empty_sequence_is_identity() {
        let mut seq = ReversibleSequence::new();
        assert!(seq.is_empty());
        let x = Tensor::ones(Shape::new(1, 2, 2, 2));
        let ys = seq.forward(vec![x.clone()], CacheMode::None);
        assert_eq!(ys[0], x);
    }

    #[test]
    #[should_panic(expected = "stream counts must chain")]
    fn mismatched_stages_panic() {
        let mut seq = ReversibleSequence::new();
        seq.add(Box::new(make_silo(1, 2, 80)));
        seq.add(Box::new(make_silo(3, 3, 81)));
    }
}
