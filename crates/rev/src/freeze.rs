//! Frozen (inference-only) execution of the reversible backbone stages.
//!
//! The frozen forms replicate the eval-mode (`CacheMode::None`) stage math
//! exactly — same stream indexing, same accumulation order — but every
//! transform is a fused [`FrozenLayer`]: BN folded into the convs,
//! activations in the GEMM epilogues, weight panels packed once. Frozen
//! stages are forward-only; reversibility is a training-time property and
//! the whole point of freezing is that inference does not pay for it.

use revbifpn_nn::{FreezeError, FrozenLayer};
use revbifpn_tensor::Tensor;

/// Frozen form of a [`crate::RevBlock`]:
/// `y1 = x1 + F(x2); y2 = x2 + G(y1)`.
#[derive(Debug)]
pub struct FrozenRevBlock {
    pub(crate) f: FrozenLayer,
    pub(crate) g: FrozenLayer,
    pub(crate) c_split: usize,
}

impl FrozenRevBlock {
    /// Fused forward pass (additive coupling, eval semantics).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (x1, x2) = x.split_channels(self.c_split);
        let f_out = self.f.forward(&x2);
        let y1 = &x1 + &f_out;
        let g_out = self.g.forward(&y1);
        let y2 = &x2 + &g_out;
        Tensor::concat_channels(&[&y1, &y2])
    }

    fn compile(&mut self) {
        self.f.compile();
        self.g.compile();
    }

    fn quantize(&mut self) {
        self.f.quantize();
        self.g.quantize();
    }

    fn packed_bytes(&self) -> usize {
        self.f.packed_bytes() + self.g.packed_bytes()
    }

    fn quant_packed_bytes(&self) -> usize {
        self.f.quant_packed_bytes() + self.g.quant_packed_bytes()
    }
}

/// Frozen form of a [`crate::RevSilo`]: the bidirectional fusion math of
/// Equations 1–8 with fused transforms.
#[derive(Debug)]
pub struct FrozenSilo {
    pub(crate) n_in: usize,
    pub(crate) n_out: usize,
    /// `down[i][j]`, `j < min(i, n_in)`: transform stream `j` -> `i`.
    pub(crate) down: Vec<Vec<FrozenLayer>>,
    /// `up[i][j - i - 1]`, `j in i+1..n_out`: transform stream `j` -> `i`.
    pub(crate) up: Vec<Vec<FrozenLayer>>,
}

impl FrozenSilo {
    /// Number of input streams.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of output streams.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Fused forward pass over `xs` (length `n_in`), producing `n_out`
    /// streams. Mirrors [`crate::RevSilo::forward`] in eval mode.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != n_in`.
    pub fn forward(&self, xs: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(xs.len(), self.n_in, "FrozenSilo expects {} input streams", self.n_in);
        // Down half: m_0 = x_0, m_i = x_i + sum_{j<i} D_ij(x_j).
        let mut mids: Vec<Tensor> = Vec::with_capacity(self.n_out);
        mids.push(xs[0].clone());
        for i in 1..self.n_out {
            let mut acc: Option<Tensor> = if i < self.n_in { Some(xs[i].clone()) } else { None };
            for (j, d) in self.down[i].iter().enumerate().take(i.min(self.n_in)) {
                let t = d.forward(&xs[j]);
                match &mut acc {
                    Some(a) => a.add_assign(&t),
                    None => acc = Some(t),
                }
            }
            mids.push(acc.expect("stream must receive at least one contribution"));
        }
        // Up half: o_{N-1} = m_{N-1}, o_i = m_i + sum_{j>i} U_ij(m_j).
        let mut outs = vec![Tensor::zeros(revbifpn_tensor::Shape::new(1, 1, 1, 1)); self.n_out];
        outs[self.n_out - 1] = mids[self.n_out - 1].clone();
        for i in (0..self.n_out - 1).rev() {
            let mut acc = mids[i].clone();
            for (u, m) in self.up[i].iter().zip(&mids[i + 1..]) {
                let t = u.forward(m);
                acc.add_assign(&t);
            }
            outs[i] = acc;
        }
        outs
    }

    fn compile(&mut self) {
        for row in self.down.iter_mut().chain(self.up.iter_mut()) {
            for l in row {
                l.compile();
            }
        }
    }

    fn quantize(&mut self) {
        for row in self.down.iter_mut().chain(self.up.iter_mut()) {
            for l in row {
                l.quantize();
            }
        }
    }

    fn packed_bytes(&self) -> usize {
        self.down
            .iter()
            .chain(self.up.iter())
            .flat_map(|row| row.iter())
            .map(|l| l.packed_bytes())
            .sum()
    }

    fn quant_packed_bytes(&self) -> usize {
        self.down
            .iter()
            .chain(self.up.iter())
            .flat_map(|row| row.iter())
            .map(|l| l.quant_packed_bytes())
            .sum()
    }
}

/// One frozen stage of a reversible sequence.
#[derive(Debug)]
pub enum FrozenStage {
    /// A frozen fusion silo.
    Silo(FrozenSilo),
    /// Per-stream chains of frozen reversible residual blocks (streams do
    /// not interact).
    Blocks(Vec<Vec<FrozenRevBlock>>),
}

impl FrozenStage {
    /// Fused forward pass over the stream vector.
    pub fn forward(&self, xs: &[Tensor]) -> Vec<Tensor> {
        match self {
            FrozenStage::Silo(s) => s.forward(xs),
            FrozenStage::Blocks(blocks) => {
                assert_eq!(xs.len(), blocks.len(), "FrozenStage stream count mismatch");
                xs.iter()
                    .zip(blocks)
                    .map(|(x, chain)| {
                        let mut cur = x.clone();
                        for b in chain {
                            cur = b.forward(&cur);
                        }
                        cur
                    })
                    .collect()
            }
        }
    }

    /// Packs all conv weight panels in this stage (idempotent).
    pub fn compile(&mut self) {
        match self {
            FrozenStage::Silo(s) => s.compile(),
            FrozenStage::Blocks(blocks) => {
                for chain in blocks {
                    for b in chain {
                        b.compile();
                    }
                }
            }
        }
    }

    /// Lowers every fused conv in this stage to int8 (see
    /// [`FrozenLayer::quantize`]; idempotent).
    pub fn quantize(&mut self) {
        match self {
            FrozenStage::Silo(s) => s.quantize(),
            FrozenStage::Blocks(blocks) => {
                for chain in blocks {
                    for b in chain {
                        b.quantize();
                    }
                }
            }
        }
    }

    /// Total bytes of packed weight panels in this stage.
    pub fn packed_bytes(&self) -> usize {
        match self {
            FrozenStage::Silo(s) => s.packed_bytes(),
            FrozenStage::Blocks(blocks) => {
                blocks.iter().flat_map(|chain| chain.iter()).map(|b| b.packed_bytes()).sum()
            }
        }
    }

    /// Total bytes of quantized weight panels in this stage.
    pub fn quant_packed_bytes(&self) -> usize {
        match self {
            FrozenStage::Silo(s) => s.quant_packed_bytes(),
            FrozenStage::Blocks(blocks) => {
                blocks.iter().flat_map(|chain| chain.iter()).map(|b| b.quant_packed_bytes()).sum()
            }
        }
    }
}

/// A frozen [`crate::ReversibleSequence`]: the backbone chain with every
/// stage in fused form.
#[derive(Debug)]
pub struct FrozenSequence {
    pub(crate) stages: Vec<FrozenStage>,
}

impl FrozenSequence {
    pub(crate) fn new(stages: Vec<FrozenStage>) -> Self {
        Self { stages }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Fused forward through all stages.
    pub fn forward(&self, xs: Vec<Tensor>) -> Vec<Tensor> {
        let mut cur = xs;
        for s in &self.stages {
            cur = s.forward(&cur);
        }
        cur
    }

    /// Packs all conv weight panels (idempotent).
    pub fn compile(&mut self) {
        for s in &mut self.stages {
            s.compile();
        }
    }

    /// Lowers every fused conv in the chain to int8 weights (idempotent).
    /// Call before [`FrozenSequence::compile`]; quantized convs skip the f32
    /// panel pack entirely.
    pub fn quantize(&mut self) {
        for s in &mut self.stages {
            s.quantize();
        }
    }

    /// Total bytes of packed weight panels across all stages.
    pub fn packed_bytes(&self) -> usize {
        self.stages.iter().map(|s| s.packed_bytes()).sum()
    }

    /// Total bytes of quantized (int8) weight panels across all stages.
    pub fn quant_packed_bytes(&self) -> usize {
        self.stages.iter().map(|s| s.quant_packed_bytes()).sum()
    }
}

/// Convenience error type alias used by the freeze hooks in this crate.
pub type FreezeResult<T> = Result<T, FreezeError>;

#[cfg(test)]
mod tests {
    use crate::stage::RevStage;
    use crate::{BlockStage, RevBlock, RevSilo, ReversibleSequence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn_nn::layers::{MBConv, MBConvCfg};
    use revbifpn_nn::{CacheMode, Layer};
    use revbifpn_tensor::{Shape, Tensor};

    const C: [usize; 3] = [8, 12, 16];

    fn make_silo(n_in: usize, n_out: usize, seed: u64) -> RevSilo {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut down = |j: usize, i: usize| -> Box<dyn Layer> {
            Box::new(MBConv::new(MBConvCfg::down(C[j], C[i], (i - j) as u32, 1.5), &mut rng))
                as Box<dyn Layer>
        };
        let mut rng2 = StdRng::seed_from_u64(seed + 1);
        let mut up = |j: usize, i: usize| -> Box<dyn Layer> {
            Box::new(MBConv::new(MBConvCfg::up(C[j], C[i], (j - i) as u32, 1.5), &mut rng2))
                as Box<dyn Layer>
        };
        RevSilo::new(n_in, n_out, &mut down, &mut up)
    }

    fn make_blocks(streams: usize, seed: u64) -> BlockStage {
        let mut rng = StdRng::seed_from_u64(seed);
        let blocks = (0..streams)
            .map(|i| {
                let half = C[i] / 2;
                let f = MBConv::new(MBConvCfg::same(half, 3, 1.5).plain(), &mut rng);
                let g = MBConv::new(MBConvCfg::same(half, 3, 1.5).plain(), &mut rng);
                vec![RevBlock::new(C[i], Box::new(f), Box::new(g))]
            })
            .collect();
        BlockStage::new(blocks)
    }

    fn randomize_bn(seq: &mut ReversibleSequence, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        seq.visit_params(&mut |p| {
            if p.name == "bn.gamma" {
                p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, &mut rng);
            }
        });
    }

    #[test]
    fn frozen_sequence_matches_eval_forward() {
        let mut seq = ReversibleSequence::new();
        seq.add(Box::new(make_silo(1, 2, 30)));
        seq.add(Box::new(make_blocks(2, 31)));
        seq.add(Box::new(make_silo(2, 3, 32)));
        randomize_bn(&mut seq, 33);

        let mut frozen = seq.freeze().unwrap();
        frozen.compile();
        assert_eq!(frozen.len(), 3);
        assert!(frozen.packed_bytes() > 0);

        let mut rng = StdRng::seed_from_u64(34);
        let x = Tensor::randn(Shape::new(2, 8, 16, 16), 1.0, &mut rng);
        let want = seq.forward(vec![x.clone()], CacheMode::None);
        let got = frozen.forward(vec![x]);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.shape(), w.shape(), "stream {i}");
            let tol = 1e-4 * (1.0 + w.abs_max());
            assert!(g.max_abs_diff(w) < tol, "stream {i}: diff {}", g.max_abs_diff(w));
        }
    }

    #[test]
    fn quantized_sequence_tracks_the_frozen_forward() {
        let mut seq = ReversibleSequence::new();
        seq.add(Box::new(make_silo(1, 2, 50)));
        seq.add(Box::new(make_blocks(2, 51)));
        randomize_bn(&mut seq, 52);

        let mut frozen = seq.freeze().unwrap();
        frozen.compile();
        let mut quant = seq.freeze().unwrap();
        quant.quantize();
        quant.compile();
        assert_eq!(quant.packed_bytes(), 0, "quantized chain must not pack f32 panels");
        assert!(quant.quant_packed_bytes() > 0);
        assert!(quant.quant_packed_bytes() < frozen.packed_bytes());

        let mut rng = StdRng::seed_from_u64(53);
        let x = Tensor::randn(Shape::new(2, 8, 16, 16), 1.0, &mut rng);
        let want = frozen.forward(vec![x.clone()]);
        let got = quant.forward(vec![x]);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.shape(), w.shape(), "stream {i}");
            // Quantization error compounds at roughly 3% of dynamic range
            // per MBConv (7-bit activations); the silo + block chain routes
            // stream 1 through three of them plus additive couplings.
            let tol = 0.12 * (1.0 + w.abs_max());
            assert!(
                g.max_abs_diff(w) < tol,
                "stream {i}: diff {} absmax {} tol {}",
                g.max_abs_diff(w),
                w.abs_max(),
                tol
            );
        }
    }

    #[test]
    fn frozen_stage_hooks_cover_both_stage_kinds() {
        let silo = make_silo(2, 2, 40);
        let blocks = make_blocks(2, 41);
        let mut fs = RevStage::freeze(&silo).unwrap();
        fs.compile();
        let mut fb = RevStage::freeze(&blocks).unwrap();
        fb.compile();

        let mut rng = StdRng::seed_from_u64(42);
        let xs = vec![
            Tensor::randn(Shape::new(1, C[0], 8, 8), 1.0, &mut rng),
            Tensor::randn(Shape::new(1, C[1], 4, 4), 1.0, &mut rng),
        ];
        let mut silo = silo;
        let mut blocks = blocks;
        for (stage, frozen) in
            [(&mut silo as &mut dyn RevStage, &fs), (&mut blocks as &mut dyn RevStage, &fb)]
        {
            let want = stage.forward(&xs, CacheMode::None);
            let got = frozen.forward(&xs);
            for (g, w) in got.iter().zip(&want) {
                let tol = 1e-4 * (1.0 + w.abs_max());
                assert!(g.max_abs_diff(w) < tol, "diff {}", g.max_abs_diff(w));
            }
        }
    }
}
