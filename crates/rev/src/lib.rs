//! # revbifpn-rev
//!
//! Reversible building blocks and the reversible-backprop engine:
//!
//! * [`RevBlock`] — the reversible residual block (Gomez et al. 2017) used
//!   for same-resolution transforms;
//! * [`RevSilo`] — the paper's contribution: the first invertible module for
//!   **bidirectional multi-scale feature fusion** (Equations 1–16), with
//!   pyramid-expansion support;
//! * [`ReversibleSequence`] — chains [`RevStage`]s and performs
//!   backpropagation without storing activations: only the final feature
//!   pyramid is kept, every hidden state is reconstructed stage-by-stage
//!   during the backward pass.
//!
//! ```
//! use revbifpn_rev::{RevSilo, ReversibleSequence, TrainMode};
//! use revbifpn_nn::{layers::{MBConv, MBConvCfg}, CacheMode, Layer};
//! use revbifpn_tensor::{Shape, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let c = [8usize, 16];
//! let mut down = |j: usize, i: usize| -> Box<dyn Layer> {
//!     Box::new(MBConv::new(MBConvCfg::down(c[j], c[i], (i - j) as u32, 2.0), &mut rng))
//! };
//! let mut rng2 = StdRng::seed_from_u64(1);
//! let mut up = |j: usize, i: usize| -> Box<dyn Layer> {
//!     Box::new(MBConv::new(MBConvCfg::up(c[j], c[i], (j - i) as u32, 2.0), &mut rng2))
//! };
//! let mut silo = RevSilo::new(2, 2, &mut down, &mut up);
//! let xs = vec![
//!     Tensor::randn(Shape::new(1, 8, 8, 8), 1.0, &mut rng2),
//!     Tensor::randn(Shape::new(1, 16, 4, 4), 1.0, &mut rng2),
//! ];
//! let ys = silo.forward(&xs, CacheMode::None);
//! let back = silo.inverse(&ys);
//! assert!(back[0].max_abs_diff(&xs[0]) < 1e-3);
//! let _ = TrainMode::Reversible;
//! let _ = ReversibleSequence::new();
//! ```

#![warn(missing_docs)]

pub mod artifact;
mod cell;
mod freeze;
mod revblock;
mod silo;
mod stage;

pub use cell::{CellTrip, StageCell, StageControl, StageMsg};
pub use freeze::{FreezeResult, FrozenRevBlock, FrozenSequence, FrozenSilo, FrozenStage};
pub use revblock::RevBlock;
pub use silo::{RevSilo, TransformFactory};
pub use stage::{
    BlockStage, DriftConfig, DriftPolicy, DriftReport, DriftStageReport, ReconFault, RevStage,
    ReversibleSequence, TrainMode, FP_SAMPLES,
};
