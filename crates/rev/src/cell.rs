//! Pipeline stage cells and the stage message protocol (PETRA-style
//! stage-pipelined training, arXiv 2406.02052).
//!
//! A [`StageCell`] re-homes a contiguous slice of a [`ReversibleSequence`]
//! behind a message interface: it owns its stages' parameters, drift
//! sentinels, and scratch, and exposes *per-micro-batch* forward /
//! backward entry points. Because every stage is reversible, the cell
//! reconstructs its own inputs during backward — no cross-stage activation
//! buffering is needed, which is what makes pipeline parallelism over the
//! reversible chain memory-free on the forward path.
//!
//! Unlike `ReversibleSequence` (one in-flight batch, one fingerprint slot
//! per stage), a cell keys its drift fingerprints by micro-batch index so
//! several micro-batches can be in flight through the same cell at once.
//! The `FallbackToCached` drift policy is intentionally *not* supported
//! inside a pipeline cell: falling back requires buffering stage inputs,
//! which defeats the pipeline's memory model — instead drift beyond
//! tolerance under a non-`Warn` policy trips the step (see [`CellTrip`]),
//! and the training engine aborts and retries through its snapshot path.

use crate::stage::{fingerprint, fingerprint_drift, flip_bit};
use crate::{DriftConfig, DriftPolicy, DriftStageReport, ReconFault, RevStage, ReversibleSequence};
use revbifpn_nn::{meter, CacheMode, Param};
use revbifpn_tensor::Tensor;

/// A message exchanged between pipeline stages (and the driver).
///
/// This is the data-plane protocol of the pipelined trainer: activations
/// flow forward, adjoints flow backward, and control messages (parameter
/// sync, step framing, abort) flow from the driver. Payloads are plain
/// owned tensors so the same protocol can later sit behind a process
/// boundary (serialize the tensors; the protocol does not change).
#[derive(Debug)]
pub enum StageMsg {
    /// Forward activations for one micro-batch entering a stage.
    Activation {
        /// Engine-global step sequence number (monotonic, never reused —
        /// a retried trainer step gets a fresh sequence number).
        seq: u64,
        /// Micro-batch index within the step.
        micro: u32,
        /// One tensor per feature stream.
        streams: Vec<Tensor>,
    },
    /// Backward adjoints for one micro-batch entering a stage from its
    /// successor: the stage's forward *outputs* (reconstructed by the
    /// successor) plus the loss gradients with respect to them.
    Adjoint {
        /// Engine-global step sequence number.
        seq: u64,
        /// Micro-batch index within the step.
        micro: u32,
        /// The stage's forward outputs (reconstructed downstream).
        ys: Vec<Tensor>,
        /// Gradients with respect to `ys`.
        dys: Vec<Tensor>,
    },
    /// Driver-originated control.
    Control(StageControl),
}

/// Control messages from the pipeline driver to a stage worker.
#[derive(Debug)]
pub enum StageControl {
    /// Replace the stage's parameters and persistent buffers. `version`
    /// counts optimizer updates applied to the payload: version `v` means
    /// the gradients of engine steps `0..v` are reflected. Workers key
    /// delayed-gradient scheduling off this number.
    SyncParams {
        /// Parameter version (number of optimizer steps applied).
        version: u64,
        /// Parameter values in `visit_params` order.
        params: Vec<Tensor>,
        /// Persistent buffers (BatchNorm running stats) in `visit_buffers`
        /// order.
        buffers: Vec<Tensor>,
    },
    /// Frame the start of a step: `micros` forward and backward
    /// micro-batches tagged `seq` will follow.
    BeginStep {
        /// Engine-global step sequence number.
        seq: u64,
        /// Number of micro-batches in this step.
        micros: u32,
        /// Data-parallel shard count *within* each micro-batch (the worker
        /// fans each micro out over this many replica cells).
        shards: u32,
        /// Required parameter version for this step's forward pass
        /// (delayed mode; equals the current version in sync mode).
        version: u64,
        /// One-shot reconstruction fault to arm (global stage index;
        /// ignored unless it falls inside this worker's range).
        fault: Option<ReconFault>,
    },
    /// Abort the named step: drop all in-flight state tagged `seq`,
    /// clear caches, acknowledge, and await the next `BeginStep`.
    Abort {
        /// Step sequence number being aborted.
        seq: u64,
    },
    /// Terminate the worker loop (engine shutdown).
    Shutdown,
}

/// A drift-sentinel trip inside a cell: reconstructed inputs drifted
/// beyond tolerance under a non-`Warn` policy. The engine aborts the step.
#[derive(Clone, Copy, Debug)]
pub struct CellTrip {
    /// Global stage index (forward order in the original sequence).
    pub stage: usize,
    /// Observed drift (max-abs-diff over fingerprint samples).
    pub drift: f32,
}

#[derive(Debug, Default, Clone, Copy)]
struct CellStageStats {
    max_drift: f32,
    checks: u64,
}

/// A contiguous slice of a reversible chain, owned by one pipeline worker.
///
/// Stage indices are kept *global* (offset by `base`) so drift reports and
/// fault injection line up with the original sequence regardless of the
/// partition.
#[derive(Debug)]
pub struct StageCell {
    base: usize,
    stages: Vec<Box<dyn RevStage>>,
    drift: DriftConfig,
    /// `fingerprints[micro][local_stage]` — keyed per micro-batch so
    /// several micro-batches can be in flight at once.
    fingerprints: Vec<Vec<Option<Vec<Vec<f32>>>>>,
    stats: Vec<CellStageStats>,
    fault: Option<ReconFault>,
}

impl StageCell {
    /// Builds a cell from stages whose global indices start at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or stream counts do not chain.
    pub fn new(base: usize, stages: Vec<Box<dyn RevStage>>, drift: DriftConfig) -> Self {
        assert!(!stages.is_empty(), "a stage cell needs at least one stage");
        for w in stages.windows(2) {
            assert_eq!(
                w[0].out_streams(),
                w[1].in_streams(),
                "cell stage stream counts must chain"
            );
        }
        let n = stages.len();
        Self { base, stages, drift, fingerprints: Vec::new(), stats: vec![CellStageStats::default(); n], fault: None }
    }

    /// Consumes a sequence and splits it into cells at `bounds` (as
    /// produced by [`ReversibleSequence::partition_by_macs`]: `P + 1`
    /// strictly increasing indices from 0 to `len`).
    pub fn split_sequence(seq: ReversibleSequence, bounds: &[usize], drift: DriftConfig) -> Vec<StageCell> {
        assert!(bounds.len() >= 2, "need at least one part");
        assert_eq!(*bounds.first().unwrap(), 0, "bounds must start at 0");
        assert_eq!(*bounds.last().unwrap(), seq.len(), "bounds must end at len()");
        let mut stages = seq.into_stages();
        let mut cells = Vec::with_capacity(bounds.len() - 1);
        // Split back-to-front so indices stay valid while draining.
        for w in bounds.windows(2).rev() {
            assert!(w[0] < w[1], "bounds must be strictly increasing");
            let tail = stages.split_off(w[0]);
            cells.push(StageCell::new(w[0], tail, drift));
        }
        cells.reverse();
        cells
    }

    /// Global index of this cell's first stage.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of stages in the cell.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when the cell holds no stages (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Input stream count of the cell's first stage.
    pub fn in_streams(&self) -> usize {
        self.stages[0].in_streams()
    }

    /// Output stream count of the cell's last stage.
    pub fn out_streams(&self) -> usize {
        self.stages.last().unwrap().out_streams()
    }

    /// Arms a one-shot reconstruction fault. Faults addressed to stages
    /// outside this cell's range are ignored (each worker receives the
    /// step's fault and only the owner arms it).
    pub fn arm_fault(&mut self, f: ReconFault) {
        if f.stage >= self.base && f.stage < self.base + self.stages.len() {
            self.fault = Some(f);
        }
    }

    /// Drops any armed fault and all pending fingerprints (step abort).
    pub fn reset_step_state(&mut self) {
        self.fault = None;
        for per_micro in &mut self.fingerprints {
            for slot in per_micro {
                *slot = None;
            }
        }
    }

    fn ensure_micro(&mut self, micro: usize) {
        while self.fingerprints.len() <= micro {
            self.fingerprints.push(vec![None; self.stages.len()]);
        }
    }

    /// `Stats`-mode forward for one micro-batch, fingerprinting each
    /// stage's input into the micro's sentinel slot.
    pub fn forward_micro(&mut self, micro: usize, xs: &[Tensor]) -> Vec<Tensor> {
        self.ensure_micro(micro);
        let mut cur = xs.to_vec();
        for (i, s) in self.stages.iter_mut().enumerate() {
            if self.drift.enabled {
                self.fingerprints[micro][i] = Some(fingerprint(&cur));
            }
            cur = s.forward(&cur, CacheMode::Stats);
        }
        cur
    }

    /// Reversible backward for one micro-batch: reconstructs inputs stage
    /// by stage (checking each against the micro's fingerprints),
    /// accumulates parameter gradients, and returns `(xs, dxs)` at the
    /// cell input.
    ///
    /// Drift above tolerance counts `rev.drift_warn` under
    /// [`DriftPolicy::Warn`]; any other policy returns a [`CellTrip`]
    /// (`rev.pipeline_trip` is counted) and the caller must abort the
    /// step — partially accumulated gradients are *not* rolled back.
    pub fn backward_micro(
        &mut self,
        micro: usize,
        ys: &[Tensor],
        dys: &[Tensor],
    ) -> Result<(Vec<Tensor>, Vec<Tensor>), CellTrip> {
        self.ensure_micro(micro);
        let mut cur_y = ys.to_vec();
        let mut cur_dy = dys.to_vec();
        let cfg = self.drift;
        for (i, s) in self.stages.iter_mut().enumerate().rev() {
            if let Some(f) = self.fault {
                // One-shot: fire on the first backward micro to reach the
                // target stage, mirroring `ReversibleSequence`'s harness.
                if f.stage == self.base + i {
                    self.fault = None;
                    let stream = f.stream % cur_y.len();
                    flip_bit(&mut cur_y[stream], f.index, f.bit);
                }
            }
            let (xs, dxs) = s.backward_rev(&cur_y, &cur_dy);
            if cfg.enabled {
                if let Some(fp) = self.fingerprints[micro][i].take() {
                    let drift = fingerprint_drift(&fp, &xs);
                    let st = &mut self.stats[i];
                    st.checks += 1;
                    st.max_drift = st.max_drift.max(drift);
                    if drift > cfg.tolerance {
                        match cfg.policy {
                            DriftPolicy::Warn => meter::count("rev.drift_warn"),
                            _ => {
                                meter::count("rev.pipeline_trip");
                                return Err(CellTrip { stage: self.base + i, drift });
                            }
                        }
                    }
                }
            }
            cur_y = xs;
            cur_dy = dxs;
        }
        Ok((cur_y, cur_dy))
    }

    /// Visits all parameters, in stage order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for s in &mut self.stages {
            s.visit_params(f);
        }
    }

    /// Visits all persistent buffers, in stage order.
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for s in &mut self.stages {
            s.visit_buffers(f);
        }
    }

    /// Visits every BatchNorm layer, in stage order.
    pub fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        for s in &mut self.stages {
            s.visit_bn(f);
        }
    }

    /// Clears all stage caches and pending fingerprints.
    pub fn clear_cache(&mut self) {
        for s in &mut self.stages {
            s.clear_cache();
        }
        self.reset_step_state();
    }

    /// Per-stage drift statistics, in global stage order.
    pub fn drift_stats(&self) -> Vec<DriftStageReport> {
        self.stages
            .iter()
            .zip(&self.stats)
            .map(|(s, st)| DriftStageReport {
                name: s.name().to_string(),
                max_drift: st.max_drift,
                checks: st.checks,
                fallback: false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::tests_support::make_seq_for_cells;
    use revbifpn_tensor::{Shape, Tensor};

    fn inputs(n: usize, seed: u64) -> Vec<Tensor> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        vec![Tensor::randn(Shape::new(n, 8, 8, 8), 0.5, &mut rng)]
    }

    #[test]
    fn split_roundtrips_forward() {
        let mut seq = make_seq_for_cells(7);
        let xs = inputs(2, 1);
        let want = seq.forward(xs.clone(), CacheMode::Stats);
        let bounds = seq.partition_by_macs(&[xs[0].shape()], 2);
        let mut cells = StageCell::split_sequence(seq, &bounds, DriftConfig::default());
        assert_eq!(cells.len(), 2);
        let mid = cells[0].forward_micro(0, &xs);
        let got = cells[1].forward_micro(0, &mid);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.data(), g.data(), "cell forward must match sequence forward bitwise");
        }
    }

    #[test]
    fn partition_bounds_are_valid() {
        let seq = make_seq_for_cells(7);
        let shapes = [Shape::new(2, 8, 8, 8)];
        for parts in 1..=4 {
            let b = seq.partition_by_macs(&shapes, parts);
            assert_eq!(b.len(), parts + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), seq.len());
            for w in b.windows(2) {
                assert!(w[0] < w[1], "empty part in {b:?}");
            }
        }
    }

    #[test]
    fn cell_trips_on_injected_fault() {
        let seq = make_seq_for_cells(7);
        let bounds = vec![0, 3, seq.len()];
        let drift = DriftConfig { enabled: true, tolerance: 5e-2, policy: DriftPolicy::Abort };
        let mut cells = StageCell::split_sequence(seq, &bounds, drift);
        let xs = inputs(2, 2);
        let mid = cells[0].forward_micro(0, &xs);
        let out = cells[1].forward_micro(0, &mid);
        cells[1].arm_fault(ReconFault { stage: 4, stream: 0, index: 5, bit: 30 });
        let dys: Vec<Tensor> = out.iter().map(|y| Tensor::zeros(y.shape())).collect();
        let err = cells[1].backward_micro(0, &out, &dys).err().expect("fault must trip the cell");
        assert!(err.stage >= 3, "trip should carry a global stage index, got {}", err.stage);
        assert!(err.drift > 5e-2);
    }
}
