//! The **RevSilo** (paper Section 2, Figure 2/11, Equations 1–16): the first
//! reversible module for bidirectional multi-scale feature fusion.
//!
//! For `N` resolution streams, the *down half* sends information down the
//! pyramid and the *up half* sends it back up, each with a residual
//! (additive-coupling) structure:
//!
//! ```text
//! down:  m_0 = x_0                      up:  o_{N-1} = m_{N-1}
//!        m_i = x_i + Σ_{j<i} D_ij(x_j)       o_i = m_i + Σ_{j>i} U_ij(m_j)
//! ```
//!
//! `D_ij` downsamples stream `j` to stream `i`'s resolution/width; `U_ij`
//! upsamples. Because each half is a unitriangular map, the module is
//! exactly invertible (Equations 9–16), and supports *expansion*: with only
//! `K < N` input streams the missing inputs are treated as absent (the paper
//! sets them to 0), growing a K-stream pyramid to N streams.

// The `(i, j)` range loops below deliberately mirror the paper's stream
// indices in Equations 1–16 and index several collections (`xs`, `mids`,
// `self.down[i][j]`, ...) in lockstep; iterator chains would obscure the
// correspondence with the math.
#![allow(clippy::needless_range_loop)]

use revbifpn_nn::{meter, CacheMode, Layer, Param};
use revbifpn_tensor::{par, Shape, Tensor};

/// Factory signature for the silo's fusion transforms: `(from_stream,
/// to_stream) -> Layer` mapping stream `from`'s shape to stream `to`'s.
pub type TransformFactory<'a> = dyn FnMut(usize, usize) -> Box<dyn Layer> + 'a;

/// A reversible bidirectional multi-scale fusion module over `n_out` streams
/// fed by `n_in <= n_out` input streams.
#[derive(Debug)]
pub struct RevSilo {
    n_in: usize,
    n_out: usize,
    /// `down[i][j]`, `j < min(i, n_in)`: transform stream `j` -> `i`.
    down: Vec<Vec<Box<dyn Layer>>>,
    /// `up[i][j - i - 1]`, `j in i+1..n_out`: transform stream `j` -> `i`.
    up: Vec<Vec<Box<dyn Layer>>>,
}

impl RevSilo {
    /// Builds a silo from transform factories.
    ///
    /// `make_down(j, i)` must return a layer mapping stream `j`'s shape to
    /// stream `i`'s (downsampling, `j < i`); `make_up(j, i)` the reverse.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n_in <= n_out` and `n_out >= 2`.
    pub fn new(n_in: usize, n_out: usize, make_down: &mut TransformFactory<'_>, make_up: &mut TransformFactory<'_>) -> Self {
        assert!(n_in >= 1 && n_in <= n_out, "need 1 <= n_in <= n_out");
        assert!(n_out >= 2, "a silo needs at least two streams");
        let mut down = Vec::with_capacity(n_out);
        for i in 0..n_out {
            let mut row = Vec::new();
            for j in 0..i.min(n_in) {
                row.push(make_down(j, i));
            }
            down.push(row);
        }
        let mut up = Vec::with_capacity(n_out);
        for i in 0..n_out {
            let mut row = Vec::new();
            for j in i + 1..n_out {
                row.push(make_up(j, i));
            }
            up.push(row);
        }
        Self { n_in, n_out, down, up }
    }

    /// Number of input streams.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of output streams.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    fn up_mut(&mut self, i: usize, j: usize) -> &mut Box<dyn Layer> {
        &mut self.up[i][j - i - 1]
    }

    /// Inference-only frozen form: every `D_ij`/`U_ij` transform is frozen
    /// via [`Layer::freeze`] (BN folded, activations fused). The result is
    /// *uncompiled*; see [`crate::FrozenSilo`].
    pub fn freeze(&self) -> Result<crate::FrozenSilo, revbifpn_nn::FreezeError> {
        let freeze_rows = |rows: &[Vec<Box<dyn Layer>>]| {
            rows.iter()
                .map(|row| row.iter().map(|l| l.freeze()).collect::<Result<Vec<_>, _>>())
                .collect::<Result<Vec<_>, _>>()
        };
        Ok(crate::FrozenSilo {
            n_in: self.n_in,
            n_out: self.n_out,
            down: freeze_rows(&self.down)?,
            up: freeze_rows(&self.up)?,
        })
    }

    /// Down-half: mid-stream tensors from inputs.
    fn mids(&mut self, xs: &[Tensor], mode: CacheMode) -> Vec<Tensor> {
        let mut mids: Vec<Tensor> = Vec::with_capacity(self.n_out);
        mids.push(xs[0].clone());
        for i in 1..self.n_out {
            let mut acc: Option<Tensor> = if i < self.n_in { Some(xs[i].clone()) } else { None };
            for j in 0..i.min(self.n_in) {
                let t = self.down[i][j].forward(&xs[j], mode);
                match &mut acc {
                    Some(a) => a.add_assign(&t),
                    None => acc = Some(t),
                }
            }
            mids.push(acc.expect("stream must receive at least one contribution"));
        }
        mids
    }

    /// Forward pass over `xs` (length `n_in`), producing `n_out` streams.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != n_in`.
    pub fn forward(&mut self, xs: &[Tensor], mode: CacheMode) -> Vec<Tensor> {
        assert_eq!(xs.len(), self.n_in, "RevSilo expects {} input streams", self.n_in);
        let mids = self.mids(xs, mode);
        let mut outs = vec![Tensor::zeros(Shape::new(1, 1, 1, 1)); self.n_out];
        outs[self.n_out - 1] = mids[self.n_out - 1].clone();
        for i in (0..self.n_out - 1).rev() {
            let mut acc = mids[i].clone();
            for j in i + 1..self.n_out {
                let t = self.up_mut(i, j).forward(&mids[j], mode);
                acc.add_assign(&t);
            }
            outs[i] = acc;
        }
        outs
    }

    /// Exact inverse (evaluation semantics; see Equations 9–16). Returns the
    /// `n_in` input streams; virtual expansion streams reconstruct to ~0 and
    /// are dropped.
    pub fn inverse(&mut self, ys: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(ys.len(), self.n_out, "RevSilo inverse expects {} streams", self.n_out);
        // Invert the up half, top (coarsest) stream first. Reconstructed
        // mids are borrowed, not cloned, by the U_ij forwards; the only
        // allocations are the per-stream accumulators.
        let mut mids: Vec<Option<Tensor>> = vec![None; self.n_out];
        mids[self.n_out - 1] = Some(ys[self.n_out - 1].clone());
        for i in (0..self.n_out - 1).rev() {
            let mut acc = ys[i].clone();
            for j in i + 1..self.n_out {
                let t = {
                    let mj = mids[j].as_ref().expect("mid already reconstructed");
                    self.up[i][j - i - 1].forward(mj, CacheMode::None)
                };
                acc.sub_assign(&t);
            }
            mids[i] = Some(acc);
        }
        // Invert the down half, finest stream first. Each mid is consumed
        // exactly once, so move it into the accumulator instead of cloning.
        let mut xs: Vec<Tensor> = Vec::with_capacity(self.n_in);
        xs.push(mids[0].take().expect("mid 0"));
        for i in 1..self.n_in {
            let mut acc = mids[i].take().expect("mid");
            for j in 0..i.min(self.n_in) {
                let t = self.down[i][j].forward(&xs[j], CacheMode::None);
                acc.sub_assign(&t);
            }
            xs.push(acc);
        }
        xs
    }

    /// Reversible backward: reconstructs the inputs from the outputs while
    /// accumulating parameter gradients. Returns `(xs, dxs)`.
    ///
    /// Requires the forward pass to have run with [`CacheMode::Stats`].
    ///
    /// # Parallelism and determinism
    ///
    /// Within a row (fixed target stream `i`), the edges `U_ij` / `D_ij` are
    /// independent: each task runs one edge's `Full` reconstruction forward
    /// *and* its transpose backward (so its transient cache lives and dies
    /// inside the task), producing `(t_ij, g_ij)`. Rows are processed
    /// sequentially (reconstruction is triangular); after each row joins,
    /// the accumulators are updated on the dispatching thread in fixed `j`
    /// order — the same edge order as the serial loops — so results are
    /// bitwise independent of the thread count. Edge tasks run under
    /// [`meter::isolated`] and their byte/event traces are absorbed in edge
    /// order, reproducing the serial activation-meter trace exactly.
    pub fn backward_rev(&mut self, ys: &[Tensor], dys: &[Tensor]) -> (Vec<Tensor>, Vec<Tensor>) {
        assert_eq!(ys.len(), self.n_out);
        assert_eq!(dys.len(), self.n_out);
        // Every tensor clone below is accounted for: the coarsest mid (1),
        // one accumulator per up row (n_out - 1), the dmids seed (n_out),
        // and the dxs seed (n_in) — O(streams), never O(edges). The event
        // lets tests assert the count stays that way.
        meter::count_n("rev.silo.bwd_clones", (2 * self.n_out + self.n_in) as u64);
        type EdgeSlot = Option<((Tensor, Tensor), meter::TaskMeter)>;
        // ---- Invert + differentiate the up half, coarsest row first.
        // o_i = m_i + Σ_{j>i} U_ij(m_j)  =>  dm_j = do_j + Σ_{i<j} U_ij^T do_i.
        let mut mids: Vec<Option<Tensor>> = vec![None; self.n_out];
        mids[self.n_out - 1] = Some(ys[self.n_out - 1].clone());
        let mut dmids: Vec<Tensor> = dys.to_vec();
        for i in (0..self.n_out - 1).rev() {
            let row = &mut self.up[i]; // row[k] transforms stream i+1+k -> i.
            let dyi = &dys[i];
            let mids_ref = &mids;
            let mut slots: Vec<EdgeSlot> = (0..row.len()).map(|_| None).collect();
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = row
                .iter_mut()
                .zip(slots.iter_mut())
                .enumerate()
                .map(|(k, (u, slot))| {
                    Box::new(move || {
                        let mj = mids_ref[i + 1 + k].as_ref().expect("mid already reconstructed");
                        *slot = Some(meter::isolated(|| {
                            let t = meter::time_phase(meter::Phase::Reconstruct, || u.forward(mj, CacheMode::Full));
                            let g = meter::time_phase(meter::Phase::Backward, || u.backward(dyi));
                            (t, g)
                        }));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            par::parallel_join(tasks);
            let mut acc = ys[i].clone();
            for (k, slot) in slots.into_iter().enumerate() {
                let ((t, g), tm) = slot.expect("edge task did not run");
                meter::absorb(&tm);
                acc.sub_assign(&t);
                dmids[i + 1 + k].add_assign(&g);
            }
            mids[i] = Some(acc);
        }

        // ---- Invert + differentiate the down half, finest row first.
        // m_i = x_i + Σ_{j<i} D_ij(x_j)  =>  dx_j = dm_j + Σ_{i>j} D_ij^T dm_i.
        // Virtual streams (i >= n_in) have no input to reconstruct but their
        // D transforms still contribute gradients, so their edges run too.
        let mut xs: Vec<Tensor> = Vec::with_capacity(self.n_in);
        xs.push(mids[0].take().expect("mid 0"));
        let mut dxs: Vec<Tensor> = (0..self.n_in).map(|j| dmids[j].clone()).collect();
        for i in 1..self.n_out {
            let row = &mut self.down[i]; // row[j] transforms stream j -> i.
            let dmi = &dmids[i];
            let xs_ref = &xs;
            let mut slots: Vec<EdgeSlot> = (0..row.len()).map(|_| None).collect();
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = row
                .iter_mut()
                .zip(slots.iter_mut())
                .enumerate()
                .map(|(j, (d, slot))| {
                    Box::new(move || {
                        *slot = Some(meter::isolated(|| {
                            let t = meter::time_phase(meter::Phase::Reconstruct, || {
                                d.forward(&xs_ref[j], CacheMode::Full)
                            });
                            let g = meter::time_phase(meter::Phase::Backward, || d.backward(dmi));
                            (t, g)
                        }));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            par::parallel_join(tasks);
            let mut acc = if i < self.n_in { Some(mids[i].take().expect("mid")) } else { None };
            for (j, slot) in slots.into_iter().enumerate() {
                let ((t, g), tm) = slot.expect("edge task did not run");
                meter::absorb(&tm);
                if let Some(a) = &mut acc {
                    a.sub_assign(&t);
                }
                dxs[j].add_assign(&g);
            }
            if let Some(a) = acc {
                xs.push(a);
            }
        }
        (xs, dxs)
    }

    /// Conventional backward using caches of a `Full`-mode forward.
    pub fn backward_cached(&mut self, dys: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(dys.len(), self.n_out);
        let mut dmids: Vec<Tensor> = dys.to_vec();
        for i in 0..self.n_out - 1 {
            for j in i + 1..self.n_out {
                let g = self.up_mut(i, j).backward(&dys[i]);
                dmids[j].add_assign(&g);
            }
        }
        let mut dxs: Vec<Tensor> = (0..self.n_in).map(|j| dmids[j].clone()).collect();
        for i in 1..self.n_out {
            for j in 0..i.min(self.n_in) {
                let g = self.down[i][j].backward(&dmids[i]);
                dxs[j].add_assign(&g);
            }
        }
        dxs
    }

    /// Output shapes for input shapes `xs` (length `n_in`).
    pub fn out_shapes(&self, xs: &[Shape]) -> Vec<Shape> {
        assert_eq!(xs.len(), self.n_in);
        let mut shapes: Vec<Shape> = xs.to_vec();
        for i in self.n_in..self.n_out {
            shapes.push(self.down[i][0].out_shape(xs[0]));
        }
        shapes
    }

    /// Total MAC count for input shapes `xs`.
    pub fn macs(&self, xs: &[Shape]) -> u64 {
        let mids = self.out_shapes(xs);
        let mut total = 0;
        for i in 1..self.n_out {
            for j in 0..i.min(self.n_in) {
                total += self.down[i][j].macs(xs[j]);
            }
        }
        for i in 0..self.n_out {
            for j in i + 1..self.n_out {
                total += self.up[i][j - i - 1].macs(mids[j]);
            }
        }
        total
    }

    /// Visits all transform parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for row in &mut self.down {
            for l in row {
                l.visit_params(f);
            }
        }
        for row in &mut self.up {
            for l in row {
                l.visit_params(f);
            }
        }
    }

    /// Visits all non-parameter persistent buffers, mirroring the
    /// [`RevSilo::visit_params`] traversal order (all down rows, then all up
    /// rows).
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for row in &mut self.down {
            for l in row {
                l.visit_buffers(f);
            }
        }
        for row in &mut self.up {
            for l in row {
                l.visit_buffers(f);
            }
        }
    }

    /// Visits every BatchNorm in the transforms, mirroring the
    /// [`RevSilo::visit_params`] traversal order.
    pub fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        for row in &mut self.down {
            for l in row {
                l.visit_bn(f);
            }
        }
        for row in &mut self.up {
            for l in row {
                l.visit_bn(f);
            }
        }
    }

    /// Clears all transform caches.
    pub fn clear_cache(&mut self) {
        for row in &mut self.down {
            for l in row {
                l.clear_cache();
            }
        }
        for row in &mut self.up {
            for l in row {
                l.clear_cache();
            }
        }
    }

    /// Analytic cache bytes for input shapes `xs` in `mode`.
    pub fn cache_bytes(&self, xs: &[Shape], mode: CacheMode) -> u64 {
        let mids = self.out_shapes(xs);
        let mut total = 0;
        for i in 1..self.n_out {
            for j in 0..i.min(self.n_in) {
                total += self.down[i][j].cache_bytes(xs[j], mode);
            }
        }
        for i in 0..self.n_out {
            for j in i + 1..self.n_out {
                total += self.up[i][j - i - 1].cache_bytes(mids[j], mode);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn_nn::layers::{MBConv, MBConvCfg};

    const CHANNELS: [usize; 4] = [8, 12, 16, 24];

    fn make_silo(n_in: usize, n_out: usize, seed: u64) -> RevSilo {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut make_down = |j: usize, i: usize| -> Box<dyn Layer> {
            let k = (i - j) as u32;
            Box::new(MBConv::new(MBConvCfg::down(CHANNELS[j], CHANNELS[i], k, 1.5), &mut rng)) as Box<dyn Layer>
        };
        let mut rng2 = StdRng::seed_from_u64(seed.wrapping_add(1));
        let mut make_up = |j: usize, i: usize| -> Box<dyn Layer> {
            let k = (j - i) as u32;
            Box::new(MBConv::new(MBConvCfg::up(CHANNELS[j], CHANNELS[i], k, 1.5), &mut rng2)) as Box<dyn Layer>
        };
        RevSilo::new(n_in, n_out, &mut make_down, &mut make_up)
    }

    fn randomize_bn(s: &mut RevSilo, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        s.visit_params(&mut |p| {
            if p.name == "bn.gamma" {
                p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, &mut rng);
            }
        });
    }

    fn make_inputs(n: usize, res: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Tensor::randn(Shape::new(2, CHANNELS[i], res >> i, res >> i), 1.0, &mut rng))
            .collect()
    }

    #[test]
    fn forward_shapes_full_silo() {
        let mut s = make_silo(4, 4, 0);
        let xs = make_inputs(4, 16, 1);
        let ys = s.forward(&xs, CacheMode::None);
        assert_eq!(ys.len(), 4);
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(y.shape(), xs[i].shape(), "stream {i}");
        }
    }

    #[test]
    fn expansion_silo_grows_pyramid() {
        let mut s = make_silo(1, 2, 2);
        let xs = make_inputs(1, 16, 3);
        let ys = s.forward(&xs, CacheMode::None);
        assert_eq!(ys.len(), 2);
        assert_eq!(ys[0].shape(), Shape::new(2, 8, 16, 16));
        assert_eq!(ys[1].shape(), Shape::new(2, 12, 8, 8));
    }

    #[test]
    fn inverse_reconstructs_inputs_eval() {
        for (n_in, n_out) in [(4usize, 4usize), (2, 3), (1, 2), (3, 4)] {
            let mut s = make_silo(n_in, n_out, 4);
            randomize_bn(&mut s, 40);
            let xs = make_inputs(n_in, 16, 5);
            let ys = s.forward(&xs, CacheMode::None);
            let back = s.inverse(&ys);
            assert_eq!(back.len(), n_in);
            for (i, (a, b)) in back.iter().zip(&xs).enumerate() {
                assert!(a.max_abs_diff(b) < 1e-3, "{n_in}->{n_out} stream {i}: {}", a.max_abs_diff(b));
            }
        }
    }

    #[test]
    fn backward_rev_reconstructs_inputs_training() {
        let mut s = make_silo(4, 4, 6);
        randomize_bn(&mut s, 60);
        let xs = make_inputs(4, 16, 7);
        let ys = s.forward(&xs, CacheMode::Stats);
        let dys: Vec<Tensor> = ys.iter().map(|y| Tensor::ones(y.shape())).collect();
        let (xs_rec, dxs) = s.backward_rev(&ys, &dys);
        assert_eq!(xs_rec.len(), 4);
        assert_eq!(dxs.len(), 4);
        for (i, (a, b)) in xs_rec.iter().zip(&xs).enumerate() {
            assert!(a.max_abs_diff(b) < 1e-3, "stream {i}: {}", a.max_abs_diff(b));
        }
    }

    #[test]
    fn reversible_gradients_match_cached() {
        let mut s1 = make_silo(3, 4, 8);
        randomize_bn(&mut s1, 80);
        let mut s2 = make_silo(3, 4, 8);
        randomize_bn(&mut s2, 80);

        let xs = make_inputs(3, 16, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let out_shapes = s1.out_shapes(&xs.iter().map(|x| x.shape()).collect::<Vec<_>>());
        let dys: Vec<Tensor> = out_shapes.iter().map(|&sh| Tensor::randn(sh, 1.0, &mut rng)).collect();

        let ys1 = s1.forward(&xs, CacheMode::Full);
        s1.visit_params(&mut |p| p.zero_grad());
        let dxs_cached = s1.backward_cached(&dys);

        let ys2 = s2.forward(&xs, CacheMode::Stats);
        s2.visit_params(&mut |p| p.zero_grad());
        let (_, dxs_rev) = s2.backward_rev(&ys2, &dys);

        for (a, b) in ys1.iter().zip(&ys2) {
            assert!(a.max_abs_diff(b) < 1e-5);
        }
        for (i, (a, b)) in dxs_cached.iter().zip(&dxs_rev).enumerate() {
            assert!(a.max_abs_diff(b) < 1e-3, "dx {i}: {}", a.max_abs_diff(b));
        }
        let mut g1 = Vec::new();
        s1.visit_params(&mut |p| g1.push(p.grad.clone()));
        let mut g2 = Vec::new();
        s2.visit_params(&mut |p| g2.push(p.grad.clone()));
        for (a, b) in g1.iter().zip(&g2) {
            assert!(a.max_abs_diff(b) < 1e-3, "param grad diff {}", a.max_abs_diff(b));
        }
    }

    #[test]
    fn finite_diff_through_silo() {
        // End-to-end finite difference on one weight coordinate through the
        // whole silo (eval mode for determinism).
        let mut s = make_silo(2, 2, 11);
        randomize_bn(&mut s, 110);
        let xs = make_inputs(2, 8, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let shapes: Vec<Shape> = xs.iter().map(|x| x.shape()).collect();
        let masks: Vec<Tensor> =
            s.out_shapes(&shapes).iter().map(|&sh| Tensor::uniform(sh, -1.0, 1.0, &mut rng)).collect();

        // Probe in training mode (Full + clear) so batch statistics match
        // the analytic gradient's forward pass.
        let loss = |s: &mut RevSilo| -> f64 {
            let ys = s.forward(&xs, CacheMode::Full);
            s.clear_cache();
            ys.iter().zip(&masks).map(|(y, m)| (y * m).sum()).sum()
        };

        let _ = s.forward(&xs, CacheMode::Full);
        s.visit_params(&mut |p| p.zero_grad());
        let _ = s.backward_cached(&masks);
        let mut first_grad = None;
        s.visit_params(&mut |p| {
            if first_grad.is_none() && p.name == "conv.weight" {
                first_grad = Some(p.grad.data()[0]);
            }
        });
        let ana = first_grad.unwrap();

        let eps = 1e-2f32;
        let nudge = |s: &mut RevSilo, d: f32| {
            let mut done = false;
            s.visit_params(&mut |p| {
                if !done && p.name == "conv.weight" {
                    p.value.data_mut()[0] += d;
                    done = true;
                }
            });
        };
        nudge(&mut s, eps);
        let lp = loss(&mut s);
        nudge(&mut s, -2.0 * eps);
        let lm = loss(&mut s);
        nudge(&mut s, eps);
        let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
        assert!((num - ana).abs() < 5e-2 * (1.0 + ana.abs()), "num {num} vs ana {ana}");
    }

    #[test]
    fn backward_rev_clone_count_is_linear_in_streams() {
        // The reversible backward allocates exactly 2*n_out + n_in tensor
        // clones (per-stream accumulators and gradient seeds) — a count that
        // does not grow with the edge count. The old implementation
        // additionally cloned each reconstructed mid once per up edge, i.e.
        // O(streams^2) extra full-tensor allocations.
        let mut s = make_silo(4, 4, 30);
        randomize_bn(&mut s, 300);
        let xs = make_inputs(4, 16, 31);
        let ys = s.forward(&xs, CacheMode::Stats);
        let dys: Vec<Tensor> = ys.iter().map(|y| Tensor::ones(y.shape())).collect();
        let before = revbifpn_nn::meter::event_count("rev.silo.bwd_clones");
        let _ = s.backward_rev(&ys, &dys);
        let clones = revbifpn_nn::meter::event_count("rev.silo.bwd_clones") - before;
        assert_eq!(clones, (2 * 4 + 4) as u64);
    }

    #[test]
    fn backward_rev_is_thread_count_invariant() {
        // Same silo, same inputs, 1 vs 4 worker threads: reconstructed
        // inputs, input gradients, and parameter gradients must be bitwise
        // identical (PR 1's determinism contract extended to task-level
        // parallelism).
        let run = |threads: usize| {
            revbifpn_tensor::par::set_max_threads(threads);
            let mut s = make_silo(3, 4, 32);
            randomize_bn(&mut s, 320);
            let xs = make_inputs(3, 16, 33);
            let ys = s.forward(&xs, CacheMode::Stats);
            let mut rng = StdRng::seed_from_u64(34);
            let dys: Vec<Tensor> = ys.iter().map(|y| Tensor::randn(y.shape(), 1.0, &mut rng)).collect();
            s.visit_params(&mut |p| p.zero_grad());
            let (xs_rec, dxs) = s.backward_rev(&ys, &dys);
            let mut grads = Vec::new();
            s.visit_params(&mut |p| grads.push(p.grad.clone()));
            revbifpn_tensor::par::set_max_threads(0);
            (xs_rec, dxs, grads)
        };
        let (xs1, dxs1, g1) = run(1);
        let (xs4, dxs4, g4) = run(4);
        for (a, b) in xs1.iter().zip(&xs4) {
            assert_eq!(a, b, "reconstructed inputs differ across thread counts");
        }
        for (a, b) in dxs1.iter().zip(&dxs4) {
            assert_eq!(a, b, "input gradients differ across thread counts");
        }
        for (a, b) in g1.iter().zip(&g4) {
            assert_eq!(a, b, "parameter gradients differ across thread counts");
        }
    }

    #[test]
    fn stats_cache_is_small() {
        revbifpn_nn::meter::reset();
        let mut s = make_silo(4, 4, 14);
        let xs = make_inputs(4, 16, 15);
        let shapes: Vec<Shape> = xs.iter().map(|x| x.shape()).collect();
        let _ = s.forward(&xs, CacheMode::Stats);
        assert_eq!(revbifpn_nn::meter::current() as u64, s.cache_bytes(&shapes, CacheMode::Stats));
        assert!(s.cache_bytes(&shapes, CacheMode::Stats) < s.cache_bytes(&shapes, CacheMode::Full) / 10);
        s.clear_cache();
        assert_eq!(revbifpn_nn::meter::current(), 0);
    }

    #[test]
    fn macs_positive_and_consistent() {
        let s = make_silo(4, 4, 16);
        let shapes: Vec<Shape> = (0..4).map(|i| Shape::new(1, CHANNELS[i], 32 >> i, 32 >> i)).collect();
        let m = s.macs(&shapes);
        assert!(m > 0);
        // More streams -> strictly more MACs than a 2-stream silo.
        let s2 = make_silo(2, 2, 17);
        assert!(m > s2.macs(&shapes[..2]));
    }
}
