//! `RBFNFRZ1` structure-stream codec for the frozen reversible modules.
//!
//! The frozen types keep their fields crate-private, so their artifact
//! encoding lives here and composes the layer-tree codec from
//! [`revbifpn_nn::artifact`]. Layout (all through the structure stream,
//! panels landing in aligned sections via the nn codec):
//!
//! ```text
//! sequence  := n_stages u32, stage*
//! stage     := tag u8 (0 = silo, 1 = blocks), payload
//! silo      := n_in u32, n_out u32, rows(down), rows(up)
//! blocks    := n_streams u32, (n_blocks u32, block*)*
//! block     := c_split u32, layer(f), layer(g)
//! rows      := n_rows u32, (n_cols u32, layer*)*
//! ```

use crate::freeze::{FrozenRevBlock, FrozenSequence, FrozenSilo, FrozenStage};
use revbifpn_nn::artifact::{decode_layer, encode_layer, ArtifactWriter, TreeReader};
use revbifpn_nn::freeze::FrozenLayer;
use std::io;

fn inv(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_rows(w: &mut ArtifactWriter, rows: &[Vec<FrozenLayer>]) -> io::Result<()> {
    w.put_u32(rows.len() as u32);
    for row in rows {
        w.put_u32(row.len() as u32);
        for layer in row {
            encode_layer(w, layer)?;
        }
    }
    Ok(())
}

fn get_rows(r: &mut TreeReader<'_>) -> io::Result<Vec<Vec<FrozenLayer>>> {
    let n = r.get_u32()? as usize;
    if n > 1 << 16 {
        return Err(inv("unreasonable row count"));
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.get_u32()? as usize;
        if m > 1 << 16 {
            return Err(inv("unreasonable row width"));
        }
        let mut row = Vec::with_capacity(m);
        for _ in 0..m {
            row.push(decode_layer(r)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Serializes a compiled [`FrozenSequence`] into `w`'s structure stream.
///
/// # Errors
///
/// Fails on a sequence containing an uncompiled conv.
pub fn encode_sequence(w: &mut ArtifactWriter, seq: &FrozenSequence) -> io::Result<()> {
    w.put_u32(seq.stages.len() as u32);
    for stage in &seq.stages {
        match stage {
            FrozenStage::Silo(s) => {
                w.put_u8(0);
                w.put_u32(s.n_in as u32);
                w.put_u32(s.n_out as u32);
                put_rows(w, &s.down)?;
                put_rows(w, &s.up)?;
            }
            FrozenStage::Blocks(streams) => {
                w.put_u8(1);
                w.put_u32(streams.len() as u32);
                for chain in streams {
                    w.put_u32(chain.len() as u32);
                    for b in chain {
                        w.put_u32(b.c_split as u32);
                        encode_layer(w, &b.f)?;
                        encode_layer(w, &b.g)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Deserializes a [`FrozenSequence`] written by [`encode_sequence`]; panel
/// images reference the artifact buffer directly where possible.
pub fn decode_sequence(r: &mut TreeReader<'_>) -> io::Result<FrozenSequence> {
    let n = r.get_u32()? as usize;
    if n > 1 << 16 {
        return Err(inv("unreasonable stage count"));
    }
    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        stages.push(match r.get_u8()? {
            0 => {
                let n_in = r.get_u32()? as usize;
                let n_out = r.get_u32()? as usize;
                let down = get_rows(r)?;
                let up = get_rows(r)?;
                if down.len() != n_out || up.len() != n_out {
                    return Err(inv("silo row counts disagree with stream counts"));
                }
                FrozenStage::Silo(FrozenSilo { n_in, n_out, down, up })
            }
            1 => {
                let n_streams = r.get_u32()? as usize;
                if n_streams > 1 << 16 {
                    return Err(inv("unreasonable stream count"));
                }
                let mut streams = Vec::with_capacity(n_streams);
                for _ in 0..n_streams {
                    let n_blocks = r.get_u32()? as usize;
                    if n_blocks > 1 << 16 {
                        return Err(inv("unreasonable block count"));
                    }
                    let mut chain = Vec::with_capacity(n_blocks);
                    for _ in 0..n_blocks {
                        let c_split = r.get_u32()? as usize;
                        let f = decode_layer(r)?;
                        let g = decode_layer(r)?;
                        chain.push(FrozenRevBlock { f, g, c_split });
                    }
                    streams.push(chain);
                }
                FrozenStage::Blocks(streams)
            }
            _ => return Err(inv("bad frozen stage tag")),
        });
    }
    Ok(FrozenSequence::new(stages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockStage, RevBlock, RevSilo, ReversibleSequence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn_nn::artifact::ArtifactReader;
    use revbifpn_nn::layers::{MBConv, MBConvCfg};
    use revbifpn_nn::Layer;
    use revbifpn_tensor::{Shape, SharedBytes, Tensor};

    const C: [usize; 2] = [8, 12];

    fn sample_frozen_sequence() -> (FrozenSequence, Vec<Tensor>) {
        let mut rng = StdRng::seed_from_u64(40);
        let mut down = |j: usize, i: usize| -> Box<dyn Layer> {
            Box::new(MBConv::new(MBConvCfg::down(C[j], C[i], (i - j) as u32, 1.5), &mut rng))
                as Box<dyn Layer>
        };
        let mut rng2 = StdRng::seed_from_u64(41);
        let mut up = |j: usize, i: usize| -> Box<dyn Layer> {
            Box::new(MBConv::new(MBConvCfg::up(C[j], C[i], (j - i) as u32, 1.5), &mut rng2))
                as Box<dyn Layer>
        };
        let silo = RevSilo::new(1, 2, &mut down, &mut up);
        let mut rng3 = StdRng::seed_from_u64(42);
        let blocks = (0..2)
            .map(|i| {
                let half = C[i] / 2;
                let f = MBConv::new(MBConvCfg::same(half, 3, 1.5).plain(), &mut rng3);
                let g = MBConv::new(MBConvCfg::same(half, 3, 1.5).plain(), &mut rng3);
                vec![RevBlock::new(C[i], Box::new(f), Box::new(g))]
            })
            .collect();
        let mut seq = ReversibleSequence::new();
        seq.add(Box::new(silo));
        seq.add(Box::new(BlockStage::new(blocks)));
        let mut frozen = seq.freeze().unwrap();
        frozen.compile();
        let mut rng4 = StdRng::seed_from_u64(43);
        let x = Tensor::randn(Shape::new(1, C[0], 16, 16), 1.0, &mut rng4);
        (frozen, vec![x])
    }

    #[test]
    fn sequence_roundtrips_bitwise() {
        let (frozen, xs) = sample_frozen_sequence();
        let want = frozen.forward(xs.clone());
        let mut w = ArtifactWriter::new(0);
        encode_sequence(&mut w, &frozen).unwrap();
        let r = ArtifactReader::from_bytes(SharedBytes::from_vec(w.finish()), false).unwrap();
        r.verify_sections().unwrap();
        let mut cur = r.cursor();
        let decoded = decode_sequence(&mut cur).unwrap();
        assert_eq!(cur.remaining(), 0);
        let got = decoded.forward(xs);
        assert_eq!(got.len(), want.len());
        for (g, w_) in got.iter().zip(&want) {
            assert_eq!(g, w_, "decoded sequence forward must be bitwise equal");
        }
    }
}
