//! Property-based tests of the paper's central invariants: RevSilo and
//! RevBlock invertibility (Equations 1–16) and the equivalence of
//! reversible and cached gradients — for randomized widths, stream counts,
//! batch sizes and parameter draws.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::{MBConv, MBConvCfg};
use revbifpn_nn::{CacheMode, Layer};
use revbifpn_rev::{RevBlock, RevSilo};
use revbifpn_tensor::{Shape, Tensor};

fn make_silo(channels: &[usize], n_in: usize, seed: u64) -> RevSilo {
    let n_out = channels.len();
    let c: Vec<usize> = channels.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut down = |j: usize, i: usize| -> Box<dyn Layer> {
        Box::new(MBConv::new(MBConvCfg::down(c[j], c[i], (i - j) as u32, 1.0).plain(), &mut rng))
    };
    let c2: Vec<usize> = channels.to_vec();
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut up = |j: usize, i: usize| -> Box<dyn Layer> {
        Box::new(MBConv::new(MBConvCfg::up(c2[j], c2[i], (j - i) as u32, 1.0).plain(), &mut rng2))
    };
    RevSilo::new(n_in, n_out, &mut down, &mut up)
}

fn randomize_bn_silo(s: &mut RevSilo, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    s.visit_params(&mut |p| {
        if p.name == "bn.gamma" {
            p.value = Tensor::uniform(p.value.shape(), 0.6, 1.4, &mut rng);
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// forward-then-inverse is the identity for random silo geometries.
    #[test]
    fn silo_inverse_identity(
        seed in any::<u64>(),
        n_out in 2usize..=4,
        n_in_off in 0usize..=2,
        batch in 1usize..=2,
        c_base in prop::sample::select(vec![4usize, 6, 8]),
    ) {
        let n_in = n_out.saturating_sub(n_in_off).max(1);
        let channels: Vec<usize> = (0..n_out).map(|i| c_base * (i + 1)).collect();
        let mut silo = make_silo(&channels, n_in, seed);
        randomize_bn_silo(&mut silo, seed ^ 1);
        let res = 16usize;
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let xs: Vec<Tensor> = (0..n_in)
            .map(|i| Tensor::randn(Shape::new(batch, channels[i], res >> i, res >> i), 1.0, &mut rng))
            .collect();
        let ys = silo.forward(&xs, CacheMode::None);
        let back = silo.inverse(&ys);
        for (a, b) in back.iter().zip(&xs) {
            prop_assert!(a.max_abs_diff(b) < 2e-3, "reconstruction error {}", a.max_abs_diff(b));
        }
    }

    /// backward_rev reconstructs the exact training-time inputs and its
    /// gradients match the conventional cached backward.
    #[test]
    fn silo_reversible_gradients_match_cached(seed in any::<u64>(), n_out in 2usize..=3) {
        let channels: Vec<usize> = (0..n_out).map(|i| 6 * (i + 1)).collect();
        let mut s1 = make_silo(&channels, n_out, seed);
        randomize_bn_silo(&mut s1, seed ^ 1);
        let mut s2 = make_silo(&channels, n_out, seed);
        randomize_bn_silo(&mut s2, seed ^ 1);

        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let res = 8usize;
        let xs: Vec<Tensor> = (0..n_out)
            .map(|i| Tensor::randn(Shape::new(2, channels[i], res >> i, res >> i), 1.0, &mut rng))
            .collect();
        let shapes: Vec<Shape> = xs.iter().map(|x| x.shape()).collect();
        let dys: Vec<Tensor> = s1.out_shapes(&shapes).iter().map(|&s| Tensor::randn(s, 1.0, &mut rng)).collect();

        let _ = s1.forward(&xs, CacheMode::Full);
        s1.visit_params(&mut |p| p.zero_grad());
        let dx1 = s1.backward_cached(&dys);

        let ys = s2.forward(&xs, CacheMode::Stats);
        s2.visit_params(&mut |p| p.zero_grad());
        let (x_rec, dx2) = s2.backward_rev(&ys, &dys);

        for (a, b) in x_rec.iter().zip(&xs) {
            prop_assert!(a.max_abs_diff(b) < 2e-3);
        }
        for (a, b) in dx1.iter().zip(&dx2) {
            prop_assert!(a.max_abs_diff(b) < 2e-3, "grad diff {}", a.max_abs_diff(b));
        }
        let mut worst = 0.0f32;
        let mut g1 = Vec::new();
        s1.visit_params(&mut |p| g1.push(p.grad.clone()));
        let mut i = 0;
        s2.visit_params(&mut |p| {
            worst = worst.max(g1[i].max_abs_diff(&p.grad) / (1.0 + g1[i].abs_max()));
            i += 1;
        });
        prop_assert!(worst < 2e-3, "worst param grad diff {worst}");
    }

    /// RevBlock invertibility holds for random (even) widths and odd-split
    /// channel counts.
    #[test]
    fn revblock_inverse_identity(seed in any::<u64>(), c in prop::sample::select(vec![6usize, 8, 10, 12])) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c1 = c / 2;
        let c2 = c - c1;
        let f = MBConv::new(MBConvCfg::same(c2, 3, 1.0).with_c_out(c1).plain(), &mut rng);
        let g = MBConv::new(MBConvCfg::same(c1, 3, 1.0).with_c_out(c2).plain(), &mut rng);
        let mut b = RevBlock::new(c, Box::new(f), Box::new(g));
        b.visit_params(&mut |p| {
            if p.name == "bn.gamma" {
                p.value = Tensor::uniform(p.value.shape(), 0.6, 1.4, &mut rng);
            }
        });
        let x = Tensor::randn(Shape::new(1, c, 6, 6), 1.0, &mut rng);
        let y = b.forward(&x, CacheMode::None);
        prop_assert!(b.inverse(&y).max_abs_diff(&x) < 2e-3);
    }

    /// Expansion silos reconstruct the virtual (zero) streams implicitly:
    /// inverse returns exactly the real inputs regardless of how many
    /// streams were grown.
    #[test]
    fn expansion_silo_inverse(seed in any::<u64>(), grow in 1usize..=3) {
        let n_in = 1usize;
        let n_out = n_in + grow;
        let channels: Vec<usize> = (0..n_out).map(|i| 4 << i).collect();
        let mut silo = make_silo(&channels, n_in, seed);
        randomize_bn_silo(&mut silo, seed ^ 9);
        let mut rng = StdRng::seed_from_u64(seed ^ 10);
        let res = 16usize;
        let xs = vec![Tensor::randn(Shape::new(1, channels[0], res, res), 1.0, &mut rng)];
        let ys = silo.forward(&xs, CacheMode::None);
        prop_assert_eq!(ys.len(), n_out);
        let back = silo.inverse(&ys);
        prop_assert_eq!(back.len(), n_in);
        prop_assert!(back[0].max_abs_diff(&xs[0]) < 2e-3);
    }
}
