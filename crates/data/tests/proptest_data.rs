//! Property-based tests for the synthetic datasets and augmentations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_data::augment::{cutmix, cutout, mixup, random_hflip};
use revbifpn_data::{SynthDet, SynthDetConfig, SynthScale, SynthScaleConfig};
use revbifpn_tensor::{Shape, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SynthScale is deterministic in (seed, index) and bounded.
    #[test]
    fn synthscale_deterministic_and_bounded(seed in any::<u64>(), index in 0u64..1000) {
        let ds = SynthScale::new(SynthScaleConfig::new(16), seed);
        let (a, la) = ds.sample(index);
        let (b, lb) = ds.sample(index);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(la, lb);
        prop_assert!(a.is_finite());
        prop_assert!(a.abs_max() < 4.0);
        prop_assert!(la < ds.num_classes());
    }

    /// Different seeds give different datasets (same index).
    #[test]
    fn synthscale_seed_sensitivity(s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let a = SynthScale::new(SynthScaleConfig::new(16), s1).sample(0).0;
        let b = SynthScale::new(SynthScaleConfig::new(16), s2).sample(0).0;
        prop_assert!(a.max_abs_diff(&b) > 1e-4);
    }

    /// SynthDet scenes always have >= 1 in-bounds object and matching masks.
    #[test]
    fn synthdet_objects_valid(seed in any::<u64>(), index in 0u64..500) {
        let res = 32usize;
        let ds = SynthDet::new(SynthDetConfig::new(res), seed);
        let s = ds.sample(index);
        prop_assert!(!s.objects.is_empty());
        prop_assert_eq!(s.objects.len(), s.masks.len());
        for o in &s.objects {
            prop_assert!(o.bbox[0] >= 0.0 && o.bbox[1] >= 0.0);
            prop_assert!(o.bbox[2] <= res as f32 && o.bbox[3] <= res as f32);
            prop_assert!(o.area() > 0.0);
        }
        for m in &s.masks {
            prop_assert!(m.sum() > 0.0, "empty mask");
        }
    }

    /// Horizontal flip is an involution when applied with a forced-flip RNG
    /// state... instead: flip preserves every channel's pixel multiset sum.
    #[test]
    fn hflip_preserves_sums(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::randn(Shape::new(3, 2, 5, 6), 1.0, &mut rng);
        let before = x.sum();
        let before_sq = x.sq_sum();
        random_hflip(&mut x, &mut rng);
        prop_assert!((x.sum() - before).abs() < 1e-3);
        prop_assert!((x.sq_sum() - before_sq).abs() < 1e-2);
    }

    /// Cutout zeroes exactly size^2 pixels per channel per image.
    #[test]
    fn cutout_patch_size(seed in any::<u64>(), size in 1usize..=4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::ones(Shape::new(2, 3, 8, 8));
        cutout(&mut x, size, &mut rng);
        let zeros = x.data().iter().filter(|&&v| v == 0.0).count();
        prop_assert_eq!(zeros, 2 * 3 * size * size);
    }

    /// Mixup and CutMix keep soft targets on the probability simplex.
    #[test]
    fn mix_targets_stay_simplex(seed in any::<u64>(), use_cutmix in any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::randn(Shape::new(4, 1, 6, 6), 1.0, &mut rng);
        let mut t = Tensor::zeros(Shape::new(4, 3, 1, 1));
        for n in 0..4 {
            t.data_mut()[n * 3 + n % 3] = 1.0;
        }
        if use_cutmix {
            cutmix(&mut x, &mut t, 1.0, &mut rng);
        } else {
            mixup(&mut x, &mut t, 0.4, &mut rng);
        }
        for n in 0..4 {
            let row: f32 = t.data()[n * 3..(n + 1) * 3].iter().sum();
            prop_assert!((row - 1.0).abs() < 1e-5);
            prop_assert!(t.data()[n * 3..(n + 1) * 3].iter().all(|&v| (-1e-6..=1.0 + 1e-6).contains(&v)));
        }
    }

    /// Batch generation equals per-sample generation.
    #[test]
    fn batch_consistency(seed in any::<u64>(), start in 0u64..100, n in 1usize..5) {
        let ds = SynthScale::new(SynthScaleConfig::new(8), seed);
        let (images, labels) = ds.batch(start, n);
        prop_assert_eq!(images.shape().n, n);
        let chw = images.shape().chw();
        for i in 0..n {
            let (img, l) = ds.sample(start + i as u64);
            prop_assert_eq!(labels[i], l);
            prop_assert_eq!(&images.data()[i * chw..(i + 1) * chw], img.data());
        }
    }
}
