//! # revbifpn-data
//!
//! Synthetic datasets standing in for ImageNet and MS COCO (see DESIGN.md
//! for the substitution rationale), plus the paper's augmentation suite:
//!
//! * [`SynthScale`] — multi-scale classification: the label depends jointly
//!   on a high-frequency local texture and a global layout cue;
//! * [`SynthDet`] — detection/segmentation scenes with exact boxes & masks
//!   spanning the COCO small/medium/large size buckets;
//! * [`augment`] — flips, cutout, colour jitter, mixup, CutMix.

#![warn(missing_docs)]

pub mod augment;
mod synth_cls;
mod synth_det;

pub use synth_cls::{SynthScale, SynthScaleConfig};
pub use synth_det::{iou, BoxAnnotation, DetSample, SynthDet, SynthDetConfig};
