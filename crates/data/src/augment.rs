//! Training-time augmentations used by the paper's recipe (Appendix D.2):
//! horizontal flips, cutout (the core of RandAugment's spatial ops), mixup
//! (Zhang et al. 2018) and CutMix (Yun et al. 2019). Mixup/CutMix operate on
//! a batch and produce *soft* targets compatible with
//! `revbifpn_nn::loss::softmax_cross_entropy`.

use rand::rngs::StdRng;
use revbifpn_tensor::Tensor;

/// Flips each image in the batch horizontally with probability 0.5.
pub fn random_hflip(images: &mut Tensor, rng: &mut StdRng) {
    let s = images.shape();
    for n in 0..s.n {
        if rng.random::<f32>() < 0.5 {
            for c in 0..s.c {
                for y in 0..s.h {
                    for x in 0..s.w / 2 {
                        let a = images.at(n, c, y, x);
                        let b = images.at(n, c, y, s.w - 1 - x);
                        images.set(n, c, y, x, b);
                        images.set(n, c, y, s.w - 1 - x, a);
                    }
                }
            }
        }
    }
}

/// Zeroes a random square patch of side `size` in each image ("cutout").
pub fn cutout(images: &mut Tensor, size: usize, rng: &mut StdRng) {
    let s = images.shape();
    if size == 0 || size > s.h || size > s.w {
        return;
    }
    for n in 0..s.n {
        let y0 = (rng.random::<u32>() as usize) % (s.h - size + 1);
        let x0 = (rng.random::<u32>() as usize) % (s.w - size + 1);
        for c in 0..s.c {
            for y in y0..y0 + size {
                for x in x0..x0 + size {
                    images.set(n, c, y, x, 0.0);
                }
            }
        }
    }
}

/// Scales brightness and contrast per image: `x -> a * x + b` with
/// `a in [1-j, 1+j]`, `b in [-j/2, j/2]`.
pub fn color_jitter(images: &mut Tensor, jitter: f32, rng: &mut StdRng) {
    let s = images.shape();
    let chw = s.chw();
    for n in 0..s.n {
        let a = 1.0 + (rng.random::<f32>() * 2.0 - 1.0) * jitter;
        let b = (rng.random::<f32>() - 0.5) * jitter;
        for v in &mut images.data_mut()[n * chw..(n + 1) * chw] {
            *v = a * *v + b;
        }
    }
}

fn beta_like(alpha: f32, rng: &mut StdRng) -> f32 {
    // Approximate Beta(alpha, alpha) sampling via two Gamma-ish draws using
    // the inverse-power trick (adequate for mixup coefficients).
    if alpha <= 0.0 {
        return 1.0;
    }
    let u: f32 = rng.random::<f32>().max(1e-6);
    let v: f32 = rng.random::<f32>().max(1e-6);
    let a = u.powf(1.0 / alpha);
    let b = v.powf(1.0 / alpha);
    a / (a + b)
}

/// Applies mixup in place: each sample is blended with a random partner and
/// the soft targets are blended with the same coefficient.
///
/// # Panics
///
/// Panics if batch sizes differ.
pub fn mixup(images: &mut Tensor, targets: &mut Tensor, alpha: f32, rng: &mut StdRng) {
    let s = images.shape();
    assert_eq!(s.n, targets.shape().n, "batch size mismatch");
    if alpha <= 0.0 || s.n < 2 {
        return;
    }
    let lam = beta_like(alpha, rng).clamp(0.0, 1.0);
    let perm: Vec<usize> = (0..s.n).map(|i| (i + 1) % s.n).collect();
    let chw = s.chw();
    let kc = targets.shape().chw();
    let img_src = images.data().to_vec();
    let tgt_src = targets.data().to_vec();
    for n in 0..s.n {
        let p = perm[n];
        for i in 0..chw {
            images.data_mut()[n * chw + i] = lam * img_src[n * chw + i] + (1.0 - lam) * img_src[p * chw + i];
        }
        for i in 0..kc {
            targets.data_mut()[n * kc + i] = lam * tgt_src[n * kc + i] + (1.0 - lam) * tgt_src[p * kc + i];
        }
    }
}

/// Applies CutMix in place: a random rectangle of each image is replaced by
/// the partner's pixels, targets blended by area fraction.
///
/// # Panics
///
/// Panics if batch sizes differ.
pub fn cutmix(images: &mut Tensor, targets: &mut Tensor, alpha: f32, rng: &mut StdRng) {
    let s = images.shape();
    assert_eq!(s.n, targets.shape().n, "batch size mismatch");
    if alpha <= 0.0 || s.n < 2 {
        return;
    }
    let lam = beta_like(alpha, rng).clamp(0.0, 1.0);
    let cut = ((1.0 - lam).sqrt() * s.h.min(s.w) as f32) as usize;
    if cut == 0 {
        return;
    }
    let cut = cut.min(s.h).min(s.w);
    let y0 = (rng.random::<u32>() as usize) % (s.h - cut + 1);
    let x0 = (rng.random::<u32>() as usize) % (s.w - cut + 1);
    let area_frac = (cut * cut) as f32 / s.hw() as f32;
    let perm: Vec<usize> = (0..s.n).map(|i| (i + 1) % s.n).collect();
    let img_src = images.data().to_vec();
    let tgt_src = targets.data().to_vec();
    let kc = targets.shape().chw();
    for n in 0..s.n {
        let p = perm[n];
        for c in 0..s.c {
            for y in y0..y0 + cut {
                for x in x0..x0 + cut {
                    let off = s.offset(n, c, y, x);
                    let src = s.offset(p, c, y, x);
                    images.data_mut()[off] = img_src[src];
                }
            }
        }
        for i in 0..kc {
            targets.data_mut()[n * kc + i] =
                (1.0 - area_frac) * tgt_src[n * kc + i] + area_frac * tgt_src[p * kc + i];
        }
    }
}

/// The paper-style augmentation policy: flips + jitter + optional cutout,
/// then mixup or CutMix (mutually exclusive per batch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AugmentPolicy {
    /// Horizontal flip on/off.
    pub hflip: bool,
    /// Colour jitter strength (0 disables).
    pub jitter: f32,
    /// Cutout patch size (0 disables).
    pub cutout: usize,
    /// Mixup alpha (0 disables).
    pub mixup: f32,
    /// CutMix alpha (0 disables).
    pub cutmix: f32,
}

impl AugmentPolicy {
    /// No augmentation.
    pub fn none() -> Self {
        Self { hflip: false, jitter: 0.0, cutout: 0, mixup: 0.0, cutmix: 0.0 }
    }

    /// A light default policy.
    pub fn light() -> Self {
        Self { hflip: true, jitter: 0.1, cutout: 0, mixup: 0.0, cutmix: 0.0 }
    }

    /// Applies the policy in place to a batch and its soft targets.
    pub fn apply(&self, images: &mut Tensor, targets: &mut Tensor, rng: &mut StdRng) {
        if self.hflip {
            random_hflip(images, rng);
        }
        if self.jitter > 0.0 {
            color_jitter(images, self.jitter, rng);
        }
        if self.cutout > 0 {
            cutout(images, self.cutout, rng);
        }
        if self.mixup > 0.0 && self.cutmix > 0.0 {
            if rng.random::<f32>() < 0.5 {
                mixup(images, targets, self.mixup, rng);
            } else {
                cutmix(images, targets, self.cutmix, rng);
            }
        } else if self.mixup > 0.0 {
            mixup(images, targets, self.mixup, rng);
        } else if self.cutmix > 0.0 {
            cutmix(images, targets, self.cutmix, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use revbifpn_tensor::Shape;

    fn batch(n: usize) -> Tensor {
        let mut t = Tensor::zeros(Shape::new(n, 1, 4, 4));
        for i in 0..t.shape().numel() {
            t.data_mut()[i] = i as f32;
        }
        t
    }

    #[test]
    fn hflip_preserves_content_multiset() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut x = batch(4);
        let before = x.sum();
        random_hflip(&mut x, &mut rng);
        assert_eq!(x.sum(), before);
    }

    #[test]
    fn cutout_zeroes_exactly_patch() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = Tensor::ones(Shape::new(1, 1, 8, 8));
        cutout(&mut x, 3, &mut rng);
        let zeros = x.data().iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 9);
    }

    #[test]
    fn mixup_blends_targets_to_simplex() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut x = batch(4);
        let mut t = Tensor::zeros(Shape::new(4, 3, 1, 1));
        for n in 0..4 {
            t.data_mut()[n * 3 + n % 3] = 1.0;
        }
        mixup(&mut x, &mut t, 0.4, &mut rng);
        for n in 0..4 {
            let row: f32 = t.data()[n * 3..(n + 1) * 3].iter().sum();
            assert!((row - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cutmix_preserves_target_mass() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = batch(4);
        let mut t = Tensor::zeros(Shape::new(4, 2, 1, 1));
        for n in 0..4 {
            t.data_mut()[n * 2 + n % 2] = 1.0;
        }
        cutmix(&mut x, &mut t, 1.0, &mut rng);
        for n in 0..4 {
            let row: f32 = t.data()[n * 2..(n + 1) * 2].iter().sum();
            assert!((row - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn policy_none_is_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut x = batch(2);
        let orig = x.clone();
        let mut t = Tensor::ones(Shape::new(2, 2, 1, 1));
        AugmentPolicy::none().apply(&mut x, &mut t, &mut rng);
        assert_eq!(x, orig);
    }
}
