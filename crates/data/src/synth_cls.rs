//! **SynthScale**: a procedurally generated multi-scale classification task
//! standing in for ImageNet.
//!
//! Each image combines a *local* cue (a high-frequency oriented stripe
//! texture) with a *global* cue (a smooth luminance blob placed in one of
//! several layout positions). The class label is the pair
//! `(texture, layout)`, so classifying correctly requires **both**
//! fine-grained local features and coarse global context — exactly the
//! regime bidirectional multi-scale feature fusion is designed for (paper
//! Section 1). Labels are exact, generation is deterministic per index, and
//! the dataset is unbounded.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_tensor::{Shape, Tensor};

/// Configuration of the SynthScale generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SynthScaleConfig {
    /// Square image resolution.
    pub resolution: usize,
    /// Number of stripe orientations (local cue).
    pub num_textures: usize,
    /// Number of blob positions (global cue); arranged on a grid.
    pub num_layouts: usize,
    /// Additive Gaussian pixel-noise standard deviation.
    pub noise: f32,
    /// Stripe period in pixels (small = high frequency).
    pub stripe_period: f32,
}

impl SynthScaleConfig {
    /// A light default: 4 textures x 4 layouts = 16 classes at `resolution`.
    pub fn new(resolution: usize) -> Self {
        Self { resolution, num_textures: 4, num_layouts: 4, noise: 0.15, stripe_period: 4.0 }
    }

    /// A harder variant for ablations: 8 x 8 = 64 classes, heavier noise,
    /// finer stripes — keeps small models far from saturation so that
    /// architecture differences remain visible.
    pub fn hard(resolution: usize) -> Self {
        Self { resolution, num_textures: 8, num_layouts: 8, noise: 0.45, stripe_period: 3.0 }
    }

    /// Total number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_textures * self.num_layouts
    }
}

/// Deterministic multi-scale synthetic classification dataset.
#[derive(Clone, Debug)]
pub struct SynthScale {
    cfg: SynthScaleConfig,
    seed: u64,
}

impl SynthScale {
    /// Creates the dataset with a base seed (same seed = same dataset).
    pub fn new(cfg: SynthScaleConfig, seed: u64) -> Self {
        Self { cfg, seed }
    }

    /// The generator configuration.
    pub fn cfg(&self) -> &SynthScaleConfig {
        &self.cfg
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.cfg.num_classes()
    }

    /// Generates sample `index`: a `[3, r, r]` image (as `[1, 3, r, r]`) and
    /// its label. Deterministic in `(seed, index)`.
    pub fn sample(&self, index: u64) -> (Tensor, usize) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E3779B97F4A7C15));
        let r = self.cfg.resolution;
        let t = (rng.random::<u32>() as usize) % self.cfg.num_textures;
        let l = (rng.random::<u32>() as usize) % self.cfg.num_layouts;
        let label = t * self.cfg.num_layouts + l;

        // Local cue: oriented stripes.
        let theta = std::f32::consts::PI * t as f32 / self.cfg.num_textures as f32;
        let (ct, st) = (theta.cos(), theta.sin());
        let phase: f32 = rng.random::<f32>() * std::f32::consts::TAU;
        let freq = std::f32::consts::TAU / self.cfg.stripe_period;

        // Global cue: a smooth blob at a grid position (with jitter).
        let grid = (self.cfg.num_layouts as f32).sqrt().ceil() as usize;
        let gx = l % grid;
        let gy = l / grid;
        let jitter = 0.08 * r as f32;
        let cx = (gx as f32 + 0.5) / grid as f32 * r as f32 + (rng.random::<f32>() - 0.5) * jitter;
        let cy = (gy as f32 + 0.5) / grid as f32 * r as f32 + (rng.random::<f32>() - 0.5) * jitter;
        let sigma = r as f32 / (grid as f32 * 2.5);

        let mut img = Tensor::zeros(Shape::new(1, 3, r, r));
        let tint = [1.0f32, 0.8, 0.6];
        for y in 0..r {
            for x in 0..r {
                let stripes = (freq * (x as f32 * ct + y as f32 * st) + phase).sin();
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                let blob = (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                for (c, &k) in tint.iter().enumerate() {
                    let noise: f32 = {
                        // Cheap Gaussian-ish noise: sum of two uniforms.
                        (rng.random::<f32>() + rng.random::<f32>() - 1.0) * self.cfg.noise
                    };
                    let v = 0.35 * stripes * k + 0.9 * blob * (1.0 - 0.2 * c as f32) + noise;
                    img.set(0, c, y, x, v);
                }
            }
        }
        (img, label)
    }

    /// Generates a deterministic batch: `[n, 3, r, r]` images and labels.
    pub fn batch(&self, start_index: u64, n: usize) -> (Tensor, Vec<usize>) {
        let r = self.cfg.resolution;
        let mut images = Tensor::zeros(Shape::new(n, 3, r, r));
        let mut labels = Vec::with_capacity(n);
        let chw = images.shape().chw();
        for i in 0..n {
            let (img, label) = self.sample(start_index + i as u64);
            images.data_mut()[i * chw..(i + 1) * chw].copy_from_slice(img.data());
            labels.push(label);
        }
        (images, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_index() {
        let ds = SynthScale::new(SynthScaleConfig::new(16), 7);
        let (a, la) = ds.sample(3);
        let (b, lb) = ds.sample(3);
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn different_indices_differ() {
        let ds = SynthScale::new(SynthScaleConfig::new(16), 7);
        let (a, _) = ds.sample(0);
        let (b, _) = ds.sample(1);
        assert!(a.max_abs_diff(&b) > 0.1);
    }

    #[test]
    fn labels_in_range_and_all_occur() {
        let ds = SynthScale::new(SynthScaleConfig::new(8), 1);
        let mut seen = vec![false; ds.num_classes()];
        for i in 0..400 {
            let (_, l) = ds.sample(i);
            assert!(l < ds.num_classes());
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all classes generated: {seen:?}");
    }

    #[test]
    fn batch_matches_samples() {
        let ds = SynthScale::new(SynthScaleConfig::new(8), 2);
        let (imgs, labels) = ds.batch(10, 3);
        assert_eq!(imgs.shape(), Shape::new(3, 3, 8, 8));
        let (s1, l1) = ds.sample(11);
        assert_eq!(labels[1], l1);
        let chw = imgs.shape().chw();
        assert_eq!(&imgs.data()[chw..2 * chw], s1.data());
    }

    #[test]
    fn images_are_bounded() {
        let ds = SynthScale::new(SynthScaleConfig::new(16), 3);
        let (img, _) = ds.sample(0);
        assert!(img.is_finite());
        assert!(img.abs_max() < 3.0);
    }
}
