//! **SynthDet**: a synthetic detection / instance-mask dataset standing in
//! for MS COCO.
//!
//! Each image contains up to `max_objects` filled shapes (class = shape
//! colour family) over a textured background. Sizes span the COCO small /
//! medium / large buckets (scaled to the working resolution) so the
//! size-stratified AP metrics are all exercised. Boxes are exact; per-object
//! binary masks support the segmentation substitution.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_tensor::{Shape, Tensor};

/// Ground-truth object annotation.
#[derive(Clone, Debug, PartialEq)]
pub struct BoxAnnotation {
    /// `[x1, y1, x2, y2]` in pixels (inclusive-exclusive).
    pub bbox: [f32; 4],
    /// Class index.
    pub class: usize,
}

impl BoxAnnotation {
    /// Box area in pixels^2.
    pub fn area(&self) -> f32 {
        (self.bbox[2] - self.bbox[0]).max(0.0) * (self.bbox[3] - self.bbox[1]).max(0.0)
    }

    /// Box centre `(cx, cy)`.
    pub fn center(&self) -> (f32, f32) {
        ((self.bbox[0] + self.bbox[2]) / 2.0, (self.bbox[1] + self.bbox[3]) / 2.0)
    }
}

/// Intersection-over-union of two `[x1,y1,x2,y2]` boxes.
pub fn iou(a: &[f32; 4], b: &[f32; 4]) -> f32 {
    let ix1 = a[0].max(b[0]);
    let iy1 = a[1].max(b[1]);
    let ix2 = a[2].min(b[2]);
    let iy2 = a[3].min(b[3]);
    let inter = (ix2 - ix1).max(0.0) * (iy2 - iy1).max(0.0);
    let area_a = (a[2] - a[0]).max(0.0) * (a[3] - a[1]).max(0.0);
    let area_b = (b[2] - b[0]).max(0.0) * (b[3] - b[1]).max(0.0);
    let union = area_a + area_b - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// One generated scene: image, boxes, and per-object masks.
#[derive(Clone, Debug)]
pub struct DetSample {
    /// `[1, 3, r, r]` image.
    pub image: Tensor,
    /// Ground-truth objects.
    pub objects: Vec<BoxAnnotation>,
    /// Per-object binary masks, each `[1, 1, r, r]`.
    pub masks: Vec<Tensor>,
}

/// Configuration of the SynthDet generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SynthDetConfig {
    /// Square image resolution.
    pub resolution: usize,
    /// Maximum objects per image (at least 1 is always placed).
    pub max_objects: usize,
    /// Number of object classes (colour families; at most 6).
    pub num_classes: usize,
    /// Background noise level.
    pub noise: f32,
}

impl SynthDetConfig {
    /// Default: up to 4 objects of 3 classes.
    pub fn new(resolution: usize) -> Self {
        Self { resolution, max_objects: 4, num_classes: 3, noise: 0.1 }
    }
}

/// Deterministic synthetic detection dataset.
#[derive(Clone, Debug)]
pub struct SynthDet {
    cfg: SynthDetConfig,
    seed: u64,
}

impl SynthDet {
    /// Creates the dataset.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` is 0 or > 6.
    pub fn new(cfg: SynthDetConfig, seed: u64) -> Self {
        assert!((1..=6).contains(&cfg.num_classes), "1..=6 classes supported");
        Self { cfg, seed }
    }

    /// The generator configuration.
    pub fn cfg(&self) -> &SynthDetConfig {
        &self.cfg
    }

    /// Generates scene `index` deterministically.
    pub fn sample(&self, index: u64) -> DetSample {
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0xD1B54A32D192ED03));
        let r = self.cfg.resolution;
        let rf = r as f32;
        let mut image = Tensor::zeros(Shape::new(1, 3, r, r));
        // Textured background.
        for c in 0..3 {
            for y in 0..r {
                for x in 0..r {
                    let base = 0.1 * ((x as f32 * 0.9 + c as f32).sin() + (y as f32 * 0.7).cos());
                    let noise = (rng.random::<f32>() - 0.5) * self.cfg.noise;
                    image.set(0, c, y, x, base + noise);
                }
            }
        }
        // Class colour palette (distinct RGB directions).
        const PALETTE: [[f32; 3]; 6] = [
            [1.0, 0.1, 0.1],
            [0.1, 1.0, 0.1],
            [0.1, 0.1, 1.0],
            [1.0, 1.0, 0.1],
            [1.0, 0.1, 1.0],
            [0.1, 1.0, 1.0],
        ];
        let count = 1 + (rng.random::<u32>() as usize) % self.cfg.max_objects;
        let mut objects = Vec::with_capacity(count);
        let mut masks = Vec::with_capacity(count);
        for _ in 0..count {
            let class = (rng.random::<u32>() as usize) % self.cfg.num_classes;
            // Log-uniform size: spans small (<~10% of r) to large (>~50% of r).
            let scale = (rng.random::<f32>() * 2.6).exp() / 8.0; // ~[0.125, 1.68]
            let w = (rf * 0.5 * scale).max(3.0).min(rf * 0.7);
            let h = (rf * 0.5 * scale * (0.6 + 0.8 * rng.random::<f32>())).max(3.0).min(rf * 0.7);
            let x1 = rng.random::<f32>() * (rf - w - 1.0);
            let y1 = rng.random::<f32>() * (rf - h - 1.0);
            let bbox = [x1, y1, x1 + w, y1 + h];
            let colour = PALETTE[class];
            let ellipse = rng.random::<f32>() < 0.5;
            let mut mask = Tensor::zeros(Shape::new(1, 1, r, r));
            let (cx, cy) = ((x1 + w / 2.0), (y1 + h / 2.0));
            for y in y1 as usize..(y1 + h).ceil() as usize {
                for x in x1 as usize..(x1 + w).ceil() as usize {
                    if y >= r || x >= r {
                        continue;
                    }
                    let inside = if ellipse {
                        let nx = (x as f32 - cx) / (w / 2.0);
                        let ny = (y as f32 - cy) / (h / 2.0);
                        nx * nx + ny * ny <= 1.0
                    } else {
                        true
                    };
                    if inside {
                        mask.set(0, 0, y, x, 1.0);
                        for (c, &col) in colour.iter().enumerate() {
                            image.set(0, c, y, x, col * (0.8 + 0.2 * rng.random::<f32>()));
                        }
                    }
                }
            }
            objects.push(BoxAnnotation { bbox, class });
            masks.push(mask);
        }
        DetSample { image, objects, masks }
    }

    /// Generates a batch of scenes: `[n, 3, r, r]` plus per-image objects.
    pub fn batch(&self, start_index: u64, n: usize) -> (Tensor, Vec<Vec<BoxAnnotation>>) {
        let r = self.cfg.resolution;
        let mut images = Tensor::zeros(Shape::new(n, 3, r, r));
        let mut anns = Vec::with_capacity(n);
        let chw = images.shape().chw();
        for i in 0..n {
            let s = self.sample(start_index + i as u64);
            images.data_mut()[i * chw..(i + 1) * chw].copy_from_slice(s.image.data());
            anns.push(s.objects);
        }
        (images, anns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_basics() {
        let a = [0.0, 0.0, 10.0, 10.0];
        assert!((iou(&a, &a) - 1.0).abs() < 1e-6);
        let b = [10.0, 10.0, 20.0, 20.0];
        assert_eq!(iou(&a, &b), 0.0);
        let c = [5.0, 0.0, 15.0, 10.0];
        assert!((iou(&a, &c) - 50.0 / 150.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_scene() {
        let ds = SynthDet::new(SynthDetConfig::new(32), 1);
        let a = ds.sample(5);
        let b = ds.sample(5);
        assert_eq!(a.image, b.image);
        assert_eq!(a.objects, b.objects);
    }

    #[test]
    fn boxes_inside_image_and_classes_valid() {
        let ds = SynthDet::new(SynthDetConfig::new(64), 2);
        for i in 0..50 {
            let s = ds.sample(i);
            assert!(!s.objects.is_empty());
            for o in &s.objects {
                assert!(o.bbox[0] >= 0.0 && o.bbox[1] >= 0.0);
                assert!(o.bbox[2] <= 64.0 && o.bbox[3] <= 64.0);
                assert!(o.bbox[2] > o.bbox[0] && o.bbox[3] > o.bbox[1]);
                assert!(o.class < 3);
            }
        }
    }

    #[test]
    fn masks_lie_within_boxes() {
        let ds = SynthDet::new(SynthDetConfig::new(32), 3);
        let s = ds.sample(0);
        for (o, m) in s.objects.iter().zip(&s.masks) {
            for y in 0..32 {
                for x in 0..32 {
                    if m.at(0, 0, y, x) > 0.0 {
                        assert!(x as f32 >= o.bbox[0] - 1.0 && (x as f32) <= o.bbox[2] + 1.0);
                        assert!(y as f32 >= o.bbox[1] - 1.0 && (y as f32) <= o.bbox[3] + 1.0);
                    }
                }
            }
            assert!(m.sum() > 0.0, "mask empty");
        }
    }

    #[test]
    fn size_distribution_spans_buckets() {
        let ds = SynthDet::new(SynthDetConfig::new(64), 4);
        let (mut small, mut large) = (0, 0);
        for i in 0..200 {
            for o in ds.sample(i).objects {
                let a = o.area();
                if a < 12.0 * 12.0 {
                    small += 1;
                }
                if a > 28.0 * 28.0 {
                    large += 1;
                }
            }
        }
        assert!(small > 10, "no small objects: {small}");
        assert!(large > 10, "no large objects: {large}");
    }
}
