//! Analytic model statistics: parameter counts, MAC counts, and the memory
//! breakdown used to regenerate the paper's memory figures (1, 4, 8, 9, 12)
//! and Table 2 without having to allocate paper-scale tensors.
//!
//! The activation terms come from each layer's `cache_bytes` (cross-checked
//! byte-exactly against the runtime meter in tests); parameters, gradients
//! and SGD momentum buffers are 4 bytes per scalar each.

use crate::config::RevBiFPNConfig;
use crate::model::{RevBiFPNClassifier, RunMode};

/// Byte breakdown of one training step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Model parameters.
    pub params: u64,
    /// Gradient accumulators.
    pub grads: u64,
    /// Optimizer state (SGD momentum: one buffer per parameter).
    pub optimizer: u64,
    /// Activations resident for the backward pass (caches + saved pyramid).
    pub activations: u64,
    /// Peak transient working set of reversible recomputation (0 for
    /// conventional training).
    pub transient: u64,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.params + self.grads + self.optimizer + self.activations + self.transient
    }

    /// Total in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total() as f64 / (1u64 << 30) as f64
    }

    /// Activation + transient bytes per sample, in GB (the paper's Table 2
    /// metric is per-sample training memory).
    pub fn activation_gb_per_sample(&self, batch: u64) -> f64 {
        (self.activations + self.transient) as f64 / batch as f64 / 1e9
    }
}

/// Computes the memory breakdown for a classifier at batch size `n`.
pub fn memory_breakdown(model: &mut RevBiFPNClassifier, n: usize, mode: RunMode) -> MemoryBreakdown {
    let params = model.param_count() * 4;
    let (grads, optimizer) = match mode {
        RunMode::Eval => (0, 0),
        _ => (params, params),
    };
    let transient = match mode {
        RunMode::TrainReversible => model.backbone().peak_transient_bytes(n),
        _ => 0,
    };
    let activations = model.activation_bytes(n, mode).saturating_sub(transient);
    MemoryBreakdown { params, grads, optimizer, activations, transient }
}

/// Convenience: builds the model for `cfg` and summarizes everything the
/// comparison tables need.
#[derive(Clone, Debug)]
pub struct ModelSummary {
    /// Variant name.
    pub name: String,
    /// Scalar parameter count.
    pub params: u64,
    /// MACs of one forward pass at batch 1 and the configured resolution.
    pub macs: u64,
    /// Input resolution.
    pub resolution: usize,
    /// Per-sample training memory (GB) with reversible recomputation.
    pub mem_rev_gb: f64,
    /// Per-sample training memory (GB) with conventional caching.
    pub mem_conv_gb: f64,
}

/// Summarizes a configuration (builds the model once).
pub fn summarize(cfg: &RevBiFPNConfig) -> ModelSummary {
    let mut model = RevBiFPNClassifier::new(cfg.clone());
    let params = model.param_count();
    let macs = model.macs(1);
    let rev = memory_breakdown(&mut model, 1, RunMode::TrainReversible);
    let conv = memory_breakdown(&mut model, 1, RunMode::TrainConventional);
    ModelSummary {
        name: cfg.name.clone(),
        params,
        macs,
        resolution: cfg.resolution,
        mem_rev_gb: rev.activation_gb_per_sample(1),
        mem_conv_gb: conv.activation_gb_per_sample(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn_nn::meter;
    use revbifpn_tensor::{Shape, Tensor};

    #[test]
    fn breakdown_totals() {
        let b = MemoryBreakdown { params: 1, grads: 2, optimizer: 3, activations: 4, transient: 5 };
        assert_eq!(b.total(), 15);
    }

    #[test]
    fn analytic_matches_measured_peak_conventional() {
        // The analytic activation bytes must equal the measured meter peak
        // for conventional training (within the tensors-in-flight slack:
        // measured peak == resident cache here because caches only grow
        // during forward).
        let mut m = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        meter::reset();
        let _ = m.forward(&x, RunMode::TrainConventional);
        let measured = meter::current() as u64;
        let analytic = m.activation_bytes(2, RunMode::TrainConventional);
        assert_eq!(measured, analytic);
        m.clear_cache();
    }

    #[test]
    fn analytic_reversible_bounds_measured_peak() {
        // For reversible training the analytic figure (resident + largest
        // stage transient) must be an upper bound on—and close to—the
        // measured peak.
        let mut m = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_depth(2));
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let (peak, _) = m.measure_step(&x, RunMode::TrainReversible);
        let analytic = m.activation_bytes(2, RunMode::TrainReversible);
        assert!(peak as u64 <= analytic, "measured {peak} > analytic {analytic}");
        assert!(peak as u64 > analytic / 2, "analytic {analytic} far above measured {peak}");
    }

    #[test]
    fn reversible_breakdown_smaller_activations() {
        let mut m = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_depth(3));
        let rev = memory_breakdown(&mut m, 4, RunMode::TrainReversible);
        let conv = memory_breakdown(&mut m, 4, RunMode::TrainConventional);
        assert!(rev.activations + rev.transient < conv.activations);
        assert_eq!(rev.params, conv.params);
    }

    #[test]
    fn s0_lands_near_paper_scale() {
        // Paper Table 1: RevBiFPN-S0 has 3.42M params and 0.31B MACs at 224.
        let s = summarize(&RevBiFPNConfig::s0(1000));
        assert!((2_500_000..=4_500_000).contains(&s.params), "params {}", s.params);
        assert!((250_000_000..=400_000_000).contains(&s.macs), "macs {}", s.macs);
    }

    #[test]
    fn summary_is_consistent() {
        let s = summarize(&RevBiFPNConfig::tiny(10));
        assert!(s.params > 0);
        assert!(s.macs > 0);
        assert!(s.mem_rev_gb < s.mem_conv_gb);
    }
}
