//! The end-to-end image classifier: reversible backbone + neck + head, with
//! a single switch selecting reversible or conventional training.

use crate::backbone::RevBiFPN;
use crate::config::RevBiFPNConfig;
use crate::head::{ClsHead, Neck};
use revbifpn_nn::{meter, CacheMode, Cached, Param};
use revbifpn_tensor::{Shape, Tensor};

/// How to run the classifier's forward pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Inference (running BN statistics, no caches).
    Eval,
    /// Training with reversible recomputation: only the output pyramid is
    /// retained; backbone activations are reconstructed during backward.
    TrainReversible,
    /// Conventional training: every layer caches for backward.
    TrainConventional,
}

impl RunMode {
    fn backbone_cache_mode(self) -> CacheMode {
        match self {
            RunMode::Eval => CacheMode::None,
            RunMode::TrainReversible => CacheMode::Stats,
            RunMode::TrainConventional => CacheMode::Full,
        }
    }

    fn head_cache_mode(self) -> CacheMode {
        match self {
            RunMode::Eval => CacheMode::None,
            _ => CacheMode::Full,
        }
    }
}

/// RevBiFPN classifier (backbone + neck + classification head).
#[derive(Debug)]
pub struct RevBiFPNClassifier {
    backbone: RevBiFPN,
    neck: Neck,
    head: ClsHead,
    saved_pyramid: Cached<Vec<Tensor>>,
    last_mode: Option<RunMode>,
}

impl RevBiFPNClassifier {
    /// Builds the classifier from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: RevBiFPNConfig) -> Self {
        let backbone = RevBiFPN::new(cfg.clone());
        let neck = Neck::from_config(&cfg);
        let head = ClsHead::from_config(&cfg);
        Self { backbone, neck, head, saved_pyramid: Cached::empty(), last_mode: None }
    }

    /// The configuration.
    pub fn cfg(&self) -> &RevBiFPNConfig {
        self.backbone.cfg()
    }

    /// The backbone (for pyramid access, inversion demos, analytics).
    pub fn backbone(&self) -> &RevBiFPN {
        &self.backbone
    }

    /// Mutable backbone access.
    pub fn backbone_mut(&mut self) -> &mut RevBiFPN {
        &mut self.backbone
    }

    /// Compiles the model into its frozen inference form: BN folded into the
    /// convs, activations fused into GEMM epilogues, and every conv's weight
    /// panels packed once. The returned [`crate::FrozenClassifier`] is ready
    /// to run; this model is untouched (parameters are cloned) and can keep
    /// training.
    ///
    /// # Errors
    ///
    /// Returns [`revbifpn_nn::FreezeError`] if any layer has no fused
    /// equivalent.
    pub fn freeze(&self) -> Result<crate::FrozenClassifier, revbifpn_nn::FreezeError> {
        let mut frozen = crate::FrozenClassifier {
            backbone: self.backbone.freeze()?,
            neck: self.neck.freeze()?,
            head: self.head.freeze()?,
        };
        frozen.compile();
        Ok(frozen)
    }

    /// Like [`RevBiFPNClassifier::freeze`], but additionally lowers every
    /// fused conv to per-output-channel int8 weights before compiling, so
    /// the frozen forward runs the int8 GEMM/depthwise kernels with dynamic
    /// per-tensor activation quantization. Squeeze-excite gates stay f32.
    ///
    /// # Errors
    ///
    /// Returns [`revbifpn_nn::FreezeError`] if any layer has no fused
    /// equivalent.
    pub fn freeze_int8(&self) -> Result<crate::FrozenClassifier, revbifpn_nn::FreezeError> {
        let mut frozen = crate::FrozenClassifier {
            backbone: self.backbone.freeze()?,
            neck: self.neck.freeze()?,
            head: self.head.freeze()?,
        };
        frozen.quantize();
        frozen.compile();
        Ok(frozen)
    }

    /// Forward pass: images `[n, 3, r, r]` to logits `[n, classes, 1, 1]`.
    ///
    /// In [`RunMode::TrainReversible`], the output pyramid is retained (the
    /// O(nchw) term of the paper's memory analysis) and registered with the
    /// memory meter; everything else in the backbone caches only statistics.
    pub fn forward(&mut self, x: &Tensor, mode: RunMode) -> Tensor {
        self.last_mode = Some(mode);
        let pyramid = self.backbone.forward(x, mode.backbone_cache_mode());
        let neck_out = self.neck.forward(&pyramid, mode.head_cache_mode());
        let logits = self.head.forward(&neck_out, mode.head_cache_mode());
        if mode == RunMode::TrainReversible {
            let bytes = pyramid.iter().map(|t| t.bytes()).sum();
            self.saved_pyramid.put(pyramid, bytes);
        }
        logits
    }

    /// Backward pass from the logits gradient; accumulates parameter
    /// gradients everywhere. Must follow a training-mode forward.
    ///
    /// # Panics
    ///
    /// Panics if the last forward was not a training mode.
    pub fn backward(&mut self, dlogits: &Tensor) {
        let mode = self.last_mode.expect("backward without forward");
        let dneck = self.head.backward(dlogits);
        let dpyramid = self.neck.backward(&dneck);
        match mode {
            RunMode::TrainReversible => {
                let pyramid = self.saved_pyramid.take().expect("reversible backward needs the saved pyramid");
                let _dx = self.backbone.backward_rev(&pyramid, dpyramid);
            }
            RunMode::TrainConventional => {
                let _dx = self.backbone.backward_cached(dpyramid);
            }
            RunMode::Eval => panic!("backward after Eval forward"),
        }
    }

    /// Runs only the neck + head forward over an externally produced
    /// pyramid (the pipelined trainer owns the backbone body as worker
    /// cells and drives the edges through this entry point).
    pub fn neck_head_forward(&mut self, pyramid: &[Tensor], mode: CacheMode) -> Tensor {
        let neck_out = self.neck.forward(pyramid, mode);
        self.head.forward(&neck_out, mode)
    }

    /// Backward through only the head + neck, consuming their caches;
    /// returns the gradient w.r.t. the pyramid.
    pub fn neck_head_backward(&mut self, dlogits: &Tensor) -> Vec<Tensor> {
        let dneck = self.head.backward(dlogits);
        self.neck.backward(&dneck)
    }

    /// Visits the stem's parameters only (edge-replica sync and gradient
    /// slab capture in the pipelined trainer).
    pub fn visit_stem_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.backbone.stem_mut().visit_params(f);
    }

    /// Visits the stem's persistent buffers only.
    pub fn visit_stem_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.backbone.stem_mut().visit_buffers(f);
    }

    /// Visits the stem's BatchNorm layers only.
    pub fn visit_stem_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        self.backbone.stem_mut().visit_bn(f);
    }

    /// Visits the neck's and head's parameters only, in `visit_params`
    /// order.
    pub fn visit_neck_head_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.neck.visit_params(f);
        self.head.visit_params(f);
    }

    /// Visits the neck's and head's persistent buffers only.
    pub fn visit_neck_head_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.neck.visit_buffers(f);
        self.head.visit_buffers(f);
    }

    /// Visits the neck's and head's BatchNorm layers only.
    pub fn visit_neck_head_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        self.neck.visit_bn(f);
        self.head.visit_bn(f);
    }

    /// Clears only the neck and head caches (between pipelined edge ops).
    pub fn clear_neck_head_cache(&mut self) {
        self.neck.clear_cache();
        self.head.clear_cache();
    }

    /// Visits all parameters (backbone, neck, head).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.backbone.visit_params(f);
        self.neck.visit_params(f);
        self.head.visit_params(f);
    }

    /// Visits all non-parameter persistent buffers (backbone, neck, head),
    /// mirroring the `visit_params` order.
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.backbone.visit_buffers(f);
        self.neck.visit_buffers(f);
        self.head.visit_buffers(f);
    }

    /// Visits every [`BatchNorm2d`](revbifpn_nn::layers::BatchNorm2d) in
    /// `visit_params` order (backbone, neck, head).
    pub fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        self.backbone.visit_bn(f);
        self.neck.visit_bn(f);
        self.head.visit_bn(f);
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> u64 {
        let mut total = 0u64;
        self.visit_params(&mut |p| total += p.numel() as u64);
        total
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Clears every cache (backbone, neck, head, saved pyramid).
    pub fn clear_cache(&mut self) {
        self.backbone.clear_cache();
        self.neck.clear_cache();
        self.head.clear_cache();
        self.saved_pyramid.clear();
        self.last_mode = None;
    }

    /// Total MACs of one forward pass at batch size `n`.
    pub fn macs(&self, n: usize) -> u64 {
        let pyr = self.backbone.pyramid_shapes(n);
        let neck_shapes = self.neck.out_shapes(&pyr);
        self.backbone.macs(n) + self.neck.macs(&pyr) + self.head.macs(&neck_shapes)
    }

    /// Analytic activation-memory footprint of one training iteration at
    /// batch `n` (see [`crate::stats`] for the full breakdown).
    pub fn activation_bytes(&self, n: usize, mode: RunMode) -> u64 {
        let pyr = self.backbone.pyramid_shapes(n);
        let neck_shapes = self.neck.out_shapes(&pyr);
        let head_neck = self.neck.cache_bytes(&pyr, mode.head_cache_mode())
            + self.head.cache_bytes(&neck_shapes, mode.head_cache_mode());
        match mode {
            RunMode::Eval => 0,
            RunMode::TrainConventional => self.backbone.cache_bytes(n, CacheMode::Full) + head_neck,
            RunMode::TrainReversible => {
                let pyramid_bytes: u64 = pyr.iter().map(|s| s.bytes() as u64).sum();
                let stats = self.backbone.cache_bytes(n, CacheMode::Stats);
                // Two candidate peaks that never coexist: (a) end of forward,
                // with the neck/head caches resident; (b) mid-backward, with
                // the largest stage's transient recompute cache resident (the
                // head caches are already consumed by then).
                stats + pyramid_bytes + head_neck.max(self.backbone.peak_transient_bytes(n))
            }
        }
    }

    /// Measures (via the thread-local meter) the peak cached bytes of one
    /// full train step (forward + backward) on `x`. Returns
    /// `(peak_bytes, logits)`.
    pub fn measure_step(&mut self, x: &Tensor, mode: RunMode) -> (usize, Tensor) {
        meter::reset();
        let logits = self.forward(x, mode);
        let dl = Tensor::full(logits.shape(), 1.0 / logits.shape().numel() as f32);
        self.backward(&dl);
        let peak = meter::peak();
        self.clear_cache();
        (peak, logits)
    }

    /// Logit shape helper.
    pub fn logit_shape(&self, n: usize) -> Shape {
        Shape::new(n, self.cfg().num_classes, 1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn_nn::loss::{one_hot, softmax_cross_entropy};

    fn tiny() -> RevBiFPNClassifier {
        RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10))
    }

    #[test]
    fn forward_shapes() {
        let mut m = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let logits = m.forward(&x, RunMode::Eval);
        assert_eq!(logits.shape(), m.logit_shape(2));
        assert!(logits.is_finite());
    }

    #[test]
    fn train_step_reversible_produces_grads() {
        let mut m = tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let logits = m.forward(&x, RunMode::TrainReversible);
        let t = one_hot(&[1, 7], 10);
        let (_, dl) = softmax_cross_entropy(&logits, &t);
        m.zero_grads();
        m.backward(&dl);
        let mut nonzero = 0;
        m.visit_params(&mut |p| {
            if p.grad.abs_max() > 0.0 {
                nonzero += 1;
            }
        });
        assert!(nonzero > 20, "only {nonzero} params with gradient");
        m.clear_cache();
    }

    #[test]
    fn reversible_matches_conventional_end_to_end() {
        let mut m1 = tiny();
        let mut m2 = tiny();
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let t = one_hot(&[3, 5], 10);

        let l1 = m1.forward(&x, RunMode::TrainConventional);
        let (_, d1) = softmax_cross_entropy(&l1, &t);
        m1.zero_grads();
        m1.backward(&d1);

        let l2 = m2.forward(&x, RunMode::TrainReversible);
        let (_, d2) = softmax_cross_entropy(&l2, &t);
        m2.zero_grads();
        m2.backward(&d2);

        assert!(l1.max_abs_diff(&l2) < 1e-5, "logits diff {}", l1.max_abs_diff(&l2));
        let mut g1 = Vec::new();
        m1.visit_params(&mut |p| g1.push(p.grad.clone()));
        let mut g2 = Vec::new();
        m2.visit_params(&mut |p| g2.push(p.grad.clone()));
        let mut worst = 0.0f32;
        for (a, b) in g1.iter().zip(&g2) {
            worst = worst.max(a.max_abs_diff(b) / (1.0 + a.abs_max()));
        }
        assert!(worst < 2e-3, "worst relative grad diff {worst}");
        m1.clear_cache();
        m2.clear_cache();
    }

    #[test]
    fn reversible_uses_less_measured_memory() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(Shape::new(4, 3, 32, 32), 1.0, &mut rng);
        let mut m = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_depth(3));
        let (peak_conv, _) = m.measure_step(&x, RunMode::TrainConventional);
        let (peak_rev, _) = m.measure_step(&x, RunMode::TrainReversible);
        assert!(
            (peak_rev as f64) < 0.7 * peak_conv as f64,
            "reversible {peak_rev} vs conventional {peak_conv}"
        );
    }

    #[test]
    fn frozen_classifier_matches_eval_forward() {
        let mut m = tiny();
        let mut rng = StdRng::seed_from_u64(40);
        m.visit_params(&mut |p| {
            if p.name == "bn.gamma" {
                p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, &mut rng);
            }
        });
        // Move BN running stats off their init so folding is non-trivial.
        for _ in 0..3 {
            let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
            let _ = m.forward(&x, RunMode::TrainReversible);
            m.clear_cache();
        }

        let frozen = m.freeze().unwrap();
        assert!(frozen.packed_bytes() > 0);
        assert_eq!(frozen.packed_bytes(), revbifpn_nn::meter::packed_current());

        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let want = m.forward(&x, RunMode::Eval);
        let got = frozen.forward(&x);
        assert_eq!(got.shape(), frozen.logit_shape(2));
        let tol = 1e-4 * (1.0 + want.abs_max());
        assert!(got.max_abs_diff(&want) < tol, "logits diff {}", got.max_abs_diff(&want));

        let before = revbifpn_nn::meter::packed_current();
        drop(frozen);
        assert!(revbifpn_nn::meter::packed_current() < before, "drop must release packed bytes");
    }

    #[test]
    fn int8_frozen_classifier_tracks_the_f32_frozen_forward() {
        let mut m = tiny();
        let mut rng = StdRng::seed_from_u64(44);
        m.visit_params(&mut |p| {
            if p.name == "bn.gamma" {
                p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, &mut rng);
            }
        });
        for _ in 0..2 {
            let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
            let _ = m.forward(&x, RunMode::TrainReversible);
            m.clear_cache();
        }

        let frozen = m.freeze().unwrap();
        let quant = m.freeze_int8().unwrap();
        assert!(quant.is_quantized());
        // Only the (deliberately f32) squeeze-excite gates still pack f32
        // panels; everything else moves to int8.
        assert!(
            quant.packed_bytes() < frozen.packed_bytes() / 4,
            "residual f32 panels {} vs f32 model {}",
            quant.packed_bytes(),
            frozen.packed_bytes()
        );
        assert!(quant.quant_packed_bytes() > 0);
        assert!(quant.quant_packed_bytes() < frozen.packed_bytes() / 2);
        assert_eq!(quant.quant_packed_bytes(), revbifpn_nn::meter::quant_packed_current());

        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let want = frozen.forward(&x);
        let got = quant.forward(&x);
        assert_eq!(got.shape(), quant.logit_shape(2));
        // End-to-end logits track the f32 frozen model within compounded
        // quantization noise; the serving accuracy gate is the hard bar.
        let tol = 0.25 * (1.0 + want.abs_max());
        assert!(got.max_abs_diff(&want) < tol, "logits diff {}", got.max_abs_diff(&want));

        let before = revbifpn_nn::meter::quant_packed_current();
        drop(quant);
        assert!(
            revbifpn_nn::meter::quant_packed_current() < before,
            "drop must release quantized panel bytes"
        );
    }

    #[test]
    fn frozen_conv_stem_classifier_matches_eval_forward() {
        let mut cfg = RevBiFPNConfig::tiny(10);
        cfg.stem = crate::config::StemKind::Convolutional;
        let mut m = RevBiFPNClassifier::new(cfg);
        let mut rng = StdRng::seed_from_u64(41);
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let frozen = m.freeze().unwrap();
        let want = m.forward(&x, RunMode::Eval);
        let got = frozen.forward(&x);
        let tol = 1e-4 * (1.0 + want.abs_max());
        assert!(got.max_abs_diff(&want) < tol, "logits diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn macs_split_between_parts() {
        let m = tiny();
        assert!(m.macs(1) > m.backbone().macs(1));
    }

    #[test]
    fn activation_model_depth_scaling() {
        // Analytic model: conventional grows with depth, reversible stays flat.
        let m1 = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_depth(1));
        let m5 = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10).with_depth(5));
        let conv1 = m1.activation_bytes(8, RunMode::TrainConventional);
        let conv5 = m5.activation_bytes(8, RunMode::TrainConventional);
        let rev1 = m1.activation_bytes(8, RunMode::TrainReversible);
        let rev5 = m5.activation_bytes(8, RunMode::TrainReversible);
        assert!(conv5 as f64 > 2.0 * conv1 as f64, "{conv1} -> {conv5}");
        assert!((rev5 as f64) < 1.15 * rev1 as f64, "{rev1} -> {rev5}");
        assert!(rev5 < conv5 / 2);
    }
}
