//! The frozen (inference-only) RevBiFPN classifier: the whole model compiled
//! into fused kernels.
//!
//! [`RevBiFPNClassifier::freeze`](crate::RevBiFPNClassifier::freeze) walks
//! the trained model and produces a [`FrozenClassifier`] in which every
//! `conv -> BN -> activation` chain is folded into a single fused convolution
//! (BN folded into weights/bias, activation applied in the GEMM epilogue)
//! and every conv's GEMM weight panels are packed once, up front. The frozen
//! forward therefore performs no BN normalization, no separate activation
//! passes, and no per-call weight packing — only im2col scratch (arena-
//! recycled) is touched per call.
//!
//! Freezing clones the parameters it needs; the original model is untouched
//! and can keep training. Packed panel bytes are registered with
//! [`revbifpn_nn::meter`] (`packed_weight_bytes`, event
//! `"freeze.weights_packed"`) and released when the frozen model drops.

use crate::config::RevBiFPNConfig;
use revbifpn_nn::{FreezeError, FrozenLayer};
use revbifpn_rev::FrozenSequence;
use revbifpn_tensor::{space_to_depth, Shape, Tensor};

/// Frozen form of the [`crate::Stem`].
#[derive(Debug)]
pub enum FrozenStem {
    /// Channel duplication + SpaceToDepth (pure data movement, no kernels).
    SpaceToDepth {
        /// Block size `b`.
        block: usize,
        /// Output channels `c0 = dup * b^2`.
        c0: usize,
        /// Expected image channels.
        image_channels: usize,
    },
    /// The conventional conv stem as one fused chain.
    Convolutional {
        /// The fused conv-BN-act chain.
        body: Box<FrozenLayer>,
        /// Output channels.
        c0: usize,
    },
}

impl FrozenStem {
    /// Forward pass (eval semantics).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            FrozenStem::SpaceToDepth { block, c0, image_channels } => {
                assert_eq!(
                    x.shape().c,
                    *image_channels,
                    "frozen stem expects {image_channels} image channels"
                );
                let dup = *c0 / (*block * *block);
                let xd = crate::stem::duplicate_channels(x, dup);
                space_to_depth(&xd, *block)
            }
            FrozenStem::Convolutional { body, .. } => body.forward(x),
        }
    }

    fn compile(&mut self) {
        if let FrozenStem::Convolutional { body, .. } = self {
            body.compile();
        }
    }

    fn quantize(&mut self) {
        if let FrozenStem::Convolutional { body, .. } = self {
            body.quantize();
        }
    }

    fn packed_bytes(&self) -> usize {
        match self {
            FrozenStem::SpaceToDepth { .. } => 0,
            FrozenStem::Convolutional { body, .. } => body.packed_bytes(),
        }
    }

    fn quant_packed_bytes(&self) -> usize {
        match self {
            FrozenStem::SpaceToDepth { .. } => 0,
            FrozenStem::Convolutional { body, .. } => body.quant_packed_bytes(),
        }
    }
}

/// Frozen classification head (downsample-aggregate chain + tail).
#[derive(Debug)]
pub struct FrozenClsHead {
    pub(crate) downs: Vec<FrozenLayer>,
    pub(crate) tail: FrozenLayer,
    pub(crate) num_streams: usize,
}

impl FrozenClsHead {
    /// Necked pyramid to class logits `[n, classes, 1, 1]`.
    pub fn forward(&self, neck: &[Tensor]) -> Tensor {
        assert_eq!(neck.len(), self.num_streams, "frozen head stream mismatch");
        let mut h = neck[0].clone();
        for (i, d) in self.downs.iter().enumerate() {
            let down = d.forward(&h);
            h = &down + &neck[i + 1];
        }
        self.tail.forward(&h)
    }

    fn compile(&mut self) {
        for d in &mut self.downs {
            d.compile();
        }
        self.tail.compile();
    }

    fn quantize(&mut self) {
        for d in &mut self.downs {
            d.quantize();
        }
        self.tail.quantize();
    }

    fn packed_bytes(&self) -> usize {
        self.downs.iter().map(|d| d.packed_bytes()).sum::<usize>() + self.tail.packed_bytes()
    }

    fn quant_packed_bytes(&self) -> usize {
        self.downs.iter().map(|d| d.quant_packed_bytes()).sum::<usize>()
            + self.tail.quant_packed_bytes()
    }
}

/// The frozen RevBiFPN backbone: fused stem + fused reversible body.
#[derive(Debug)]
pub struct FrozenBackbone {
    pub(crate) cfg: RevBiFPNConfig,
    pub(crate) stem: FrozenStem,
    pub(crate) body: FrozenSequence,
}

impl FrozenBackbone {
    /// The configuration the source backbone was built from.
    pub fn cfg(&self) -> &RevBiFPNConfig {
        &self.cfg
    }

    /// Image `[n, 3, r, r]` to the N-stream feature pyramid.
    pub fn forward(&self, x: &Tensor) -> Vec<Tensor> {
        let s0 = self.stem.forward(x);
        self.body.forward(vec![s0])
    }

    /// Packs all conv weight panels (idempotent).
    pub fn compile(&mut self) {
        self.stem.compile();
        self.body.compile();
    }

    /// Lowers every fused conv to int8 weights (see
    /// [`FrozenLayer::quantize`]; idempotent). Call before
    /// [`FrozenBackbone::compile`].
    pub fn quantize(&mut self) {
        self.stem.quantize();
        self.body.quantize();
    }

    /// Total bytes of packed weight panels.
    pub fn packed_bytes(&self) -> usize {
        self.stem.packed_bytes() + self.body.packed_bytes()
    }

    /// Total bytes of quantized (int8) weight panels.
    pub fn quant_packed_bytes(&self) -> usize {
        self.stem.quant_packed_bytes() + self.body.quant_packed_bytes()
    }
}

/// The frozen end-to-end classifier (backbone + neck + head), produced by
/// [`crate::RevBiFPNClassifier::freeze`]. Forward-only and `&self`: no
/// caches, no training state.
#[derive(Debug)]
pub struct FrozenClassifier {
    pub(crate) backbone: FrozenBackbone,
    pub(crate) neck: Vec<FrozenLayer>,
    pub(crate) head: FrozenClsHead,
}

impl FrozenClassifier {
    /// The configuration the source model was built from.
    pub fn cfg(&self) -> &RevBiFPNConfig {
        self.backbone.cfg()
    }

    /// Images `[n, 3, r, r]` to logits `[n, classes, 1, 1]` using only fused
    /// kernels.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let pyramid = self.backbone.forward(x);
        let neck: Vec<Tensor> =
            pyramid.iter().zip(&self.neck).map(|(t, b)| b.forward(t)).collect();
        self.head.forward(&neck)
    }

    /// Logit shape for batch size `n`.
    pub fn logit_shape(&self, n: usize) -> Shape {
        Shape::new(n, self.cfg().num_classes, 1, 1)
    }

    /// Packs all conv weight panels (idempotent; called by
    /// [`crate::RevBiFPNClassifier::freeze`]).
    pub fn compile(&mut self) {
        self.backbone.compile();
        for b in &mut self.neck {
            b.compile();
        }
        self.head.compile();
    }

    /// Lowers every fused conv in the model to per-channel int8 weights
    /// (idempotent; called by [`crate::RevBiFPNClassifier::freeze_int8`]).
    /// Squeeze-excite gates stay f32 — see [`FrozenLayer::quantize`].
    pub fn quantize(&mut self) {
        self.backbone.quantize();
        for b in &mut self.neck {
            b.quantize();
        }
        self.head.quantize();
    }

    /// `true` when at least one conv runs the int8 path.
    pub fn is_quantized(&self) -> bool {
        self.quant_packed_bytes() > 0
    }

    /// Total bytes of packed weight panels resident for this model.
    pub fn packed_bytes(&self) -> usize {
        self.backbone.packed_bytes()
            + self.neck.iter().map(|b| b.packed_bytes()).sum::<usize>()
            + self.head.packed_bytes()
    }

    /// Total bytes of quantized (int8) weight panels resident for this model.
    pub fn quant_packed_bytes(&self) -> usize {
        self.backbone.quant_packed_bytes()
            + self.neck.iter().map(|b| b.quant_packed_bytes()).sum::<usize>()
            + self.head.quant_packed_bytes()
    }
}

/// Convenience result alias for model freezing.
pub type FreezeResult<T> = Result<T, FreezeError>;
