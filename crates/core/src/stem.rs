//! Network stems. The paper's stem is an invertible, parameter-free
//! channel-duplicating SpaceToDepth (Section 3): the input image's channels
//! are duplicated up to `c0 / b^2` so that wider variants stay fully
//! reversible, then a SpaceToDepth(b) rearrangement downsamples by `b`.
//! A conventional two-conv stem is provided for the Table 4 ablation.

use crate::config::{RevBiFPNConfig, StemKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::{BatchNorm2d, Conv2d, HardSwish};
use revbifpn_nn::{CacheMode, Layer, Param, Sequential};
use revbifpn_tensor::{depth_to_space, space_to_depth, ConvSpec, Shape, Tensor};

/// Duplicates channels cyclically up to `c_target` (`c_target >= x.c`).
pub(crate) fn duplicate_channels(x: &Tensor, c_target: usize) -> Tensor {
    let xs = x.shape();
    assert!(c_target >= xs.c, "cannot duplicate down");
    let mut out = Tensor::zeros(xs.with_c(c_target));
    let hw = xs.hw();
    for n in 0..xs.n {
        for c in 0..c_target {
            let src = c % xs.c;
            let sbase = (n * xs.c + src) * hw;
            let dbase = (n * c_target + c) * hw;
            let (src_slice, dst_range) = (x.data()[sbase..sbase + hw].to_vec(), dbase..dbase + hw);
            out.data_mut()[dst_range].copy_from_slice(&src_slice);
        }
    }
    out
}

/// Folds gradients of duplicated channels back onto the originals.
fn fold_duplicate_grads(dy: &Tensor, c_in: usize) -> Tensor {
    let ys = dy.shape();
    let mut out = Tensor::zeros(ys.with_c(c_in));
    let hw = ys.hw();
    for n in 0..ys.n {
        for c in 0..ys.c {
            let src = c % c_in;
            let sbase = (n * ys.c + c) * hw;
            let dbase = (n * c_in + src) * hw;
            for i in 0..hw {
                out.data_mut()[dbase + i] += dy.data()[sbase + i];
            }
        }
    }
    out
}

/// A RevBiFPN stem: either the invertible SpaceToDepth (default) or a
/// conventional convolutional stem (ablation).
#[derive(Debug)]
pub enum Stem {
    /// Channel duplication + SpaceToDepth; fully invertible, no parameters.
    SpaceToDepth {
        /// Block size `b` (input is downsampled by `b`).
        block: usize,
        /// Output channels `c0 = dup * b^2`.
        c0: usize,
        /// Expected image channels (3 for RGB).
        image_channels: usize,
    },
    /// Two stride-`b/2`... in practice: two stride-2 convs reaching the same
    /// `/b` downsampling and `c0` width. Not invertible; caches normally.
    Convolutional {
        /// The conv-BN-act chain.
        body: Sequential,
        /// Block size matched to the SpaceToDepth variant.
        block: usize,
        /// Output channels.
        c0: usize,
        /// Expected image channels.
        image_channels: usize,
    },
}

impl Stem {
    /// Builds the stem described by `cfg` (assumed validated).
    pub fn from_config(cfg: &RevBiFPNConfig) -> Self {
        let c0 = cfg.channels[0];
        match cfg.stem {
            StemKind::SpaceToDepth => Stem::SpaceToDepth { block: cfg.stem_block, c0, image_channels: 3 },
            StemKind::Convolutional => {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x57E3);
                let mut body = Sequential::new();
                // stem_block = 4 -> two stride-2 convs; stem_block = 2 -> one.
                let stages = (cfg.stem_block as f32).log2() as usize;
                let mut c_in = 3;
                for s in 0..stages {
                    let c_out = if s + 1 == stages { c0 } else { c0 / 2 };
                    body.add(Box::new(Conv2d::new(c_in, c_out, ConvSpec::kxk(3, 2), false, &mut rng)));
                    body.add(Box::new(BatchNorm2d::new(c_out)));
                    body.add(Box::new(HardSwish::new()));
                    c_in = c_out;
                }
                Stem::Convolutional { body, block: cfg.stem_block, c0, image_channels: 3 }
            }
        }
    }

    /// `true` for the invertible SpaceToDepth variant.
    pub fn is_reversible(&self) -> bool {
        matches!(self, Stem::SpaceToDepth { .. })
    }

    /// Output channels `c0`.
    pub fn c0(&self) -> usize {
        match self {
            Stem::SpaceToDepth { c0, .. } | Stem::Convolutional { c0, .. } => *c0,
        }
    }

    /// Inference-only frozen form (uncompiled; see [`crate::FrozenStem`]).
    pub fn freeze(&self) -> Result<crate::FrozenStem, revbifpn_nn::FreezeError> {
        Ok(match self {
            Stem::SpaceToDepth { block, c0, image_channels } => crate::FrozenStem::SpaceToDepth {
                block: *block,
                c0: *c0,
                image_channels: *image_channels,
            },
            Stem::Convolutional { body, c0, .. } => {
                crate::FrozenStem::Convolutional { body: Box::new(body.freeze()?), c0: *c0 }
            }
        })
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count differs from `image_channels`.
    pub fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        match self {
            Stem::SpaceToDepth { block, c0, image_channels } => {
                assert_eq!(x.shape().c, *image_channels, "stem expects {image_channels} image channels");
                let dup = *c0 / (*block * *block);
                let xd = duplicate_channels(x, dup);
                space_to_depth(&xd, *block)
            }
            Stem::Convolutional { body, image_channels, .. } => {
                assert_eq!(x.shape().c, *image_channels, "stem expects {image_channels} image channels");
                body.forward(x, mode)
            }
        }
    }

    /// Backward pass: accumulates stem parameter gradients (conv stem) and
    /// returns the input gradient.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self {
            Stem::SpaceToDepth { block, image_channels, .. } => {
                let dd = depth_to_space(dy, *block);
                fold_duplicate_grads(&dd, *image_channels)
            }
            Stem::Convolutional { body, .. } => body.backward(dy),
        }
    }

    /// Exact inverse (SpaceToDepth stem only): recovers the input image.
    ///
    /// # Errors
    ///
    /// Returns `Err` for the convolutional stem, which is not invertible.
    pub fn inverse(&self, y: &Tensor) -> Result<Tensor, &'static str> {
        match self {
            Stem::SpaceToDepth { block, image_channels, .. } => {
                let xd = depth_to_space(y, *block);
                // The first `image_channels` channels are the original image.
                let xs = xd.shape();
                let mut out = Tensor::zeros(xs.with_c(*image_channels));
                let hw = xs.hw();
                for n in 0..xs.n {
                    for c in 0..*image_channels {
                        let sbase = (n * xs.c + c) * hw;
                        let dbase = (n * *image_channels + c) * hw;
                        let src = xd.data()[sbase..sbase + hw].to_vec();
                        out.data_mut()[dbase..dbase + hw].copy_from_slice(&src);
                    }
                }
                Ok(out)
            }
            Stem::Convolutional { .. } => Err("convolutional stem is not invertible"),
        }
    }

    /// Output shape for an image of shape `x`.
    pub fn out_shape(&self, x: Shape) -> Shape {
        match self {
            Stem::SpaceToDepth { block, c0, .. } => Shape::new(x.n, *c0, x.h / *block, x.w / *block),
            Stem::Convolutional { body, .. } => body.out_shape(x),
        }
    }

    /// MAC count (0 for SpaceToDepth: it is a pure data movement).
    pub fn macs(&self, x: Shape) -> u64 {
        match self {
            Stem::SpaceToDepth { .. } => 0,
            Stem::Convolutional { body, .. } => body.macs(x),
        }
    }

    /// Visits stem parameters (conv stem only).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        if let Stem::Convolutional { body, .. } = self {
            body.visit_params(f);
        }
    }

    /// Visits persistent buffers (conv stem only; the space-to-depth stem is
    /// parameter- and buffer-free).
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        if let Stem::Convolutional { body, .. } = self {
            body.visit_buffers(f);
        }
    }

    /// Visits every [`BatchNorm2d`](revbifpn_nn::layers::BatchNorm2d) in
    /// `visit_params` order (conv stem only).
    pub fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        if let Stem::Convolutional { body, .. } = self {
            body.visit_bn(f);
        }
    }

    /// Clears caches (conv stem only).
    pub fn clear_cache(&mut self) {
        if let Stem::Convolutional { body, .. } = self {
            body.clear_cache();
        }
    }

    /// Analytic cache bytes.
    pub fn cache_bytes(&self, x: Shape, mode: CacheMode) -> u64 {
        match self {
            Stem::SpaceToDepth { .. } => 0,
            Stem::Convolutional { body, .. } => body.cache_bytes(x, mode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn s2d_stem_shapes_s0() {
        let cfg = RevBiFPNConfig::s0(10);
        let mut stem = Stem::from_config(&cfg);
        assert!(stem.is_reversible());
        let x = Tensor::ones(Shape::new(1, 3, 224, 224));
        let y = stem.forward(&x, CacheMode::None);
        // c = 4^2 * 3 = 48 at 56x56, exactly the paper's numbers.
        assert_eq!(y.shape(), Shape::new(1, 48, 56, 56));
        assert_eq!(stem.macs(x.shape()), 0);
    }

    #[test]
    fn s2d_stem_duplication_for_wide_variants() {
        let cfg = RevBiFPNConfig::scaled(2, 10); // c0 = 96 -> dup = 6 channels
        assert_eq!(cfg.stem_dup_channels(), 6);
        let mut stem = Stem::from_config(&cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let y = stem.forward(&x, CacheMode::None);
        assert_eq!(y.shape(), Shape::new(1, 96, 8, 8));
        // Invertible despite duplication.
        let back = stem.inverse(&y).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn s2d_stem_inverse_roundtrip() {
        let cfg = RevBiFPNConfig::tiny(10);
        let mut stem = Stem::from_config(&cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let y = stem.forward(&x, CacheMode::None);
        assert_eq!(stem.inverse(&y).unwrap(), x);
    }

    #[test]
    fn s2d_backward_adjoint() {
        // <stem(x), m> == <x, stem^T(m)> since the map is linear.
        let cfg = RevBiFPNConfig::tiny(10);
        let mut stem = Stem::from_config(&cfg);
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(Shape::new(1, 3, 8, 8), 1.0, &mut rng);
        let y = stem.forward(&x, CacheMode::Full);
        let m = Tensor::randn(y.shape(), 1.0, &mut rng);
        let dx = stem.backward(&m);
        let lhs = (&y * &m).sum();
        let rhs = (&x * &dx).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_stem_shapes_and_params() {
        let mut cfg = RevBiFPNConfig::s0(10);
        cfg.stem = StemKind::Convolutional;
        let mut stem = Stem::from_config(&cfg);
        assert!(!stem.is_reversible());
        let x = Shape::new(1, 3, 224, 224);
        assert_eq!(stem.out_shape(x), Shape::new(1, 48, 56, 56));
        assert!(stem.macs(x) > 0);
        let mut n = 0u64;
        stem.visit_params(&mut |p| n += p.numel() as u64);
        assert!(n > 0);
        assert!(stem.inverse(&Tensor::zeros(Shape::new(1, 48, 56, 56))).is_err());
    }

    #[test]
    fn conv_stem_forward_backward() {
        let mut cfg = RevBiFPNConfig::tiny(10);
        cfg.stem = StemKind::Convolutional;
        let mut stem = Stem::from_config(&cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(Shape::new(2, 3, 16, 16), 1.0, &mut rng);
        let y = stem.forward(&x, CacheMode::Full);
        assert_eq!(y.shape(), Shape::new(2, 16, 8, 8));
        let dx = stem.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        stem.clear_cache();
    }
}
