//! The RevBiFPN backbone (paper Figure 3): invertible stem, a chain of
//! expansion RevSilos growing the pyramid from 1 to N streams (with
//! reversible residual blocks between them), and `d` extra full-width
//! fusion silos.

use crate::config::{DownsampleMode, RevBiFPNConfig, UpsampleMode};
use crate::stem::Stem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::{BatchNorm2d, Conv2d, MBConv, MBConvCfg, Upsample};
use revbifpn_nn::{CacheMode, Layer, Param, Sequential};
use revbifpn_rev::{BlockStage, RevBlock, RevSilo, ReversibleSequence, TrainMode};
use revbifpn_tensor::{ResizeMode, Shape, Tensor};

/// Builds the transform for silo edge `j -> i` (downsampling), honouring the
/// configured [`DownsampleMode`]. `residual_target` marks whether stream `i`
/// receives a residual add (real input stream), which controls zero-init.
fn make_down(cfg: &RevBiFPNConfig, j: usize, i: usize, residual_target: bool, rng: &mut StdRng) -> Box<dyn Layer> {
    let n = cfg.num_streams();
    let se = if cfg.se_placement.applies(i, n) { cfg.se_ratio } else { 0.0 };
    match cfg.down_mode {
        DownsampleMode::SingleStrided => {
            let mut mb = MBConvCfg::down(cfg.channels[j], cfg.channels[i], (i - j) as u32, cfg.fusion_expansion)
                .with_se(se)
                .plain();
            if residual_target {
                mb = mb.with_zero_init();
            }
            Box::new(MBConv::new(mb, rng))
        }
        DownsampleMode::Chained => {
            let mut seq = Sequential::new();
            for t in j..i {
                let mut mb = MBConvCfg::down(cfg.channels[t], cfg.channels[t + 1], 1, cfg.fusion_expansion)
                    .with_se(if t + 1 == i { se } else { 0.0 })
                    .plain();
                if residual_target && t + 1 == i {
                    mb = mb.with_zero_init();
                }
                seq.add(Box::new(MBConv::new(mb, rng)));
            }
            Box::new(seq)
        }
    }
}

/// Builds the transform for silo edge `j -> i` (upsampling), honouring the
/// configured [`UpsampleMode`]. Up edges always feed residual adds.
fn make_up(cfg: &RevBiFPNConfig, j: usize, i: usize, rng: &mut StdRng) -> Box<dyn Layer> {
    let n = cfg.num_streams();
    let se = if cfg.se_placement.applies(i, n) { cfg.se_ratio } else { 0.0 };
    match cfg.up_mode {
        UpsampleMode::BilinearConv => {
            let mb = MBConvCfg::up(cfg.channels[j], cfg.channels[i], (j - i) as u32, cfg.fusion_expansion)
                .with_se(se)
                .plain()
                .with_zero_init();
            Box::new(MBConv::new(mb, rng))
        }
        UpsampleMode::NearestPointwise => {
            // HRNet-style "su": 1x1 conv + BN (zero-init) + nearest upsample.
            let mut seq = Sequential::new();
            seq.add(Box::new(Conv2d::pointwise(cfg.channels[j], cfg.channels[i], false, rng)));
            seq.add(Box::new(BatchNorm2d::new(cfg.channels[i]).zero_init()));
            seq.add(Box::new(Upsample::new(1 << (j - i), ResizeMode::Nearest)));
            Box::new(seq)
        }
    }
}

fn make_silo(cfg: &RevBiFPNConfig, n_in: usize, n_out: usize, rng: &mut StdRng) -> RevSilo {
    let mut rng2 = StdRng::seed_from_u64(rand_seed(rng));
    let mut down = |j: usize, i: usize| make_down(cfg, j, i, i < n_in, rng);
    let mut up = |j: usize, i: usize| make_up(cfg, j, i, &mut rng2);
    RevSilo::new(n_in, n_out, &mut down, &mut up)
}

fn rand_seed(rng: &mut StdRng) -> u64 {
    rand::RngExt::random(rng)
}

fn make_block_stage(cfg: &RevBiFPNConfig, streams: usize, rng: &mut StdRng) -> BlockStage {
    let n = cfg.num_streams();
    let blocks = (0..streams)
        .map(|i| {
            let c = cfg.channels[i];
            let half = c / 2;
            let se = if cfg.se_placement.applies(i, n) { cfg.se_ratio } else { 0.0 };
            (0..cfg.blocks_per_stage)
                .map(|_| {
                    let mb = MBConvCfg::same(half, cfg.block_kernel(i), cfg.expansion[i])
                        .with_se(se)
                        .with_drop_path(cfg.drop_path)
                        .plain()
                        .with_zero_init();
                    let f = MBConv::new(mb, rng);
                    let g = MBConv::new(mb, rng);
                    RevBlock::new(c, Box::new(f), Box::new(g))
                })
                .collect()
        })
        .collect();
    BlockStage::new(blocks)
}

/// The fully reversible RevBiFPN backbone: maps an image to an N-stream
/// feature pyramid using O(nchw) training memory.
#[derive(Debug)]
pub struct RevBiFPN {
    cfg: RevBiFPNConfig,
    stem: Stem,
    body: ReversibleSequence,
}

impl RevBiFPN {
    /// Builds the backbone from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: RevBiFPNConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid RevBiFPN config: {e}"));
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let stem = Stem::from_config(&cfg);
        let n = cfg.num_streams();
        let mut body = ReversibleSequence::new();
        for target in 2..=n {
            body.add(Box::new(make_silo(&cfg, target - 1, target, &mut rng)));
            body.add(Box::new(make_block_stage(&cfg, target, &mut rng)));
        }
        for _ in 0..cfg.depth {
            body.add(Box::new(make_silo(&cfg, n, n, &mut rng)));
            body.add(Box::new(make_block_stage(&cfg, n, &mut rng)));
        }
        Self { cfg, stem, body }
    }

    /// The configuration this backbone was built from.
    pub fn cfg(&self) -> &RevBiFPNConfig {
        &self.cfg
    }

    /// The reversible body (for memory analytics).
    pub fn body(&self) -> &ReversibleSequence {
        &self.body
    }

    /// Mutable access to the reversible body (drift-sentinel configuration
    /// and fault injection).
    pub fn body_mut(&mut self) -> &mut ReversibleSequence {
        &mut self.body
    }

    /// The stem.
    pub fn stem(&self) -> &Stem {
        &self.stem
    }

    /// Mutable access to the stem (the pipelined trainer drives the stem
    /// directly on the edge replica).
    pub fn stem_mut(&mut self) -> &mut Stem {
        &mut self.stem
    }

    /// Removes and returns the reversible body, leaving an empty sequence
    /// behind. The pipelined trainer splits the body into
    /// [`revbifpn_rev::StageCell`]s owned by worker tasks; the hollowed-out
    /// backbone keeps serving as the stem-side edge replica.
    pub fn take_body(&mut self) -> ReversibleSequence {
        std::mem::take(&mut self.body)
    }

    /// Runs only the stem forward, in an explicit cache mode (bypasses
    /// [`stem_mode`](Self::forward) promotion — the pipelined trainer runs
    /// a cache-free first pass and a `Full` recompute at adjoint time).
    pub fn stem_forward(&mut self, x: &Tensor, mode: CacheMode) -> Tensor {
        self.stem.forward(x, mode)
    }

    /// Backward through only the stem, consuming its caches.
    pub fn stem_backward(&mut self, ds0: &Tensor) -> Tensor {
        self.stem.backward(ds0)
    }

    /// Inference-only frozen form of the backbone: fused stem + fused body
    /// (uncompiled; see [`crate::FrozenBackbone`]).
    pub fn freeze(&self) -> Result<crate::FrozenBackbone, revbifpn_nn::FreezeError> {
        Ok(crate::FrozenBackbone {
            cfg: self.cfg.clone(),
            stem: self.stem.freeze()?,
            body: self.body.freeze()?,
        })
    }

    /// Cache mode the stem runs in: a non-reversible (convolutional) stem
    /// must cache conventionally whenever training, even in the reversible
    /// regime — its activations cannot be reconstructed.
    fn stem_mode(&self, mode: CacheMode) -> CacheMode {
        if self.stem.is_reversible() || mode == CacheMode::None {
            mode
        } else {
            CacheMode::Full
        }
    }

    /// Forward pass: image `[n, 3, r, r]` to an N-stream feature pyramid.
    pub fn forward(&mut self, x: &Tensor, mode: CacheMode) -> Vec<Tensor> {
        let s0 = self.stem.forward(x, self.stem_mode(mode));
        self.body.forward(vec![s0], mode)
    }

    /// Reversible backward from the pyramid: reconstructs all hidden
    /// activations, accumulates parameter gradients, and returns the
    /// gradient w.r.t. the input image.
    ///
    /// The forward pass must have used [`CacheMode::Stats`].
    pub fn backward_rev(&mut self, pyramid: &[Tensor], dpyramid: Vec<Tensor>) -> Tensor {
        let (_, dxs) = self.body.backward(pyramid, dpyramid, TrainMode::Reversible);
        self.stem.backward(&dxs[0])
    }

    /// Conventional backward using `Full` caches.
    pub fn backward_cached(&mut self, dpyramid: Vec<Tensor>) -> Tensor {
        let (_, dxs) = self.body.backward(&[], dpyramid, TrainMode::Conventional);
        self.stem.backward(&dxs[0])
    }

    /// Reconstructs the input image from the output pyramid (evaluation
    /// semantics). Only exact for the SpaceToDepth stem.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the stem is not invertible.
    pub fn invert(&mut self, pyramid: Vec<Tensor>) -> Result<Tensor, &'static str> {
        let xs = self.body.inverse(pyramid);
        self.stem.inverse(&xs[0])
    }

    /// Output pyramid shapes for a batch of `n` images at the configured
    /// resolution.
    pub fn pyramid_shapes(&self, n: usize) -> Vec<Shape> {
        let img = Shape::new(n, 3, self.cfg.resolution, self.cfg.resolution);
        let s0 = self.stem.out_shape(img);
        self.body.out_shapes(&[s0])
    }

    /// Total MACs of one forward pass for batch size `n`.
    pub fn macs(&self, n: usize) -> u64 {
        let img = Shape::new(n, 3, self.cfg.resolution, self.cfg.resolution);
        let s0 = self.stem.out_shape(img);
        self.stem.macs(img) + self.body.macs(&[s0])
    }

    /// Number of scalar parameters.
    pub fn param_count(&mut self) -> u64 {
        let mut total = 0u64;
        self.visit_params(&mut |p| total += p.numel() as u64);
        total
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        self.body.visit_params(f);
    }

    /// Visits all non-parameter persistent buffers (BatchNorm running
    /// statistics), mirroring the `visit_params` order.
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.stem.visit_buffers(f);
        self.body.visit_buffers(f);
    }

    /// Visits every [`BatchNorm2d`](revbifpn_nn::layers::BatchNorm2d) in
    /// `visit_params` order.
    pub fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        self.stem.visit_bn(f);
        self.body.visit_bn(f);
    }

    /// Clears all caches.
    pub fn clear_cache(&mut self) {
        self.stem.clear_cache();
        self.body.clear_cache();
    }

    /// Analytic activation-cache bytes of a forward pass for batch `n` in
    /// `mode`.
    pub fn cache_bytes(&self, n: usize, mode: CacheMode) -> u64 {
        let img = Shape::new(n, 3, self.cfg.resolution, self.cfg.resolution);
        let s0 = self.stem.out_shape(img);
        self.stem.cache_bytes(img, self.stem_mode(mode)) + self.body.cache_bytes(&[s0], mode)
    }

    /// Peak transient bytes of the reversible backward (one stage recomputed
    /// at a time).
    pub fn peak_transient_bytes(&self, n: usize) -> u64 {
        let img = Shape::new(n, 3, self.cfg.resolution, self.cfg.resolution);
        let s0 = self.stem.out_shape(img);
        self.body.peak_transient_bytes(&[s0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> RevBiFPN {
        RevBiFPN::new(RevBiFPNConfig::tiny(10))
    }

    fn randomize_bn(b: &mut RevBiFPN, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        b.visit_params(&mut |p| {
            if p.name == "bn.gamma" {
                p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, &mut rng);
            }
        });
    }

    #[test]
    fn pyramid_shapes_tiny() {
        let b = tiny();
        let shapes = b.pyramid_shapes(2);
        assert_eq!(shapes.len(), 3);
        assert_eq!(shapes[0], Shape::new(2, 16, 16, 16));
        assert_eq!(shapes[1], Shape::new(2, 24, 8, 8));
        assert_eq!(shapes[2], Shape::new(2, 32, 4, 4));
    }

    #[test]
    fn forward_matches_declared_shapes() {
        let mut b = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let pyr = b.forward(&x, CacheMode::None);
        let shapes = b.pyramid_shapes(2);
        for (t, s) in pyr.iter().zip(shapes) {
            assert_eq!(t.shape(), s);
        }
    }

    #[test]
    fn initial_network_is_identity_like() {
        // All couplings zero-initialized: the pyramid is a pure
        // rearrangement/zero expansion of the input at init... stream 0
        // equals the stem output exactly.
        let mut b = tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let mut stem = Stem::from_config(b.cfg());
        let s0 = stem.forward(&x, CacheMode::None);
        let pyr = b.forward(&x, CacheMode::None);
        assert!(pyr[0].max_abs_diff(&s0) < 1e-5);
    }

    #[test]
    fn full_backbone_inverts_to_input_image() {
        let mut b = tiny();
        randomize_bn(&mut b, 42);
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let pyr = b.forward(&x, CacheMode::None);
        let back = b.invert(pyr).unwrap();
        assert!(back.max_abs_diff(&x) < 5e-2, "diff {}", back.max_abs_diff(&x));
    }

    #[test]
    fn reversible_and_cached_gradients_agree_end_to_end() {
        let mut b1 = RevBiFPN::new(RevBiFPNConfig::tiny(10));
        randomize_bn(&mut b1, 7);
        let mut b2 = RevBiFPN::new(RevBiFPNConfig::tiny(10));
        randomize_bn(&mut b2, 7);

        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let dpyr: Vec<Tensor> = b1.pyramid_shapes(2).iter().map(|&s| Tensor::randn(s, 0.1, &mut rng)).collect();

        let _ = b1.forward(&x, CacheMode::Full);
        b1.visit_params(&mut |p| p.zero_grad());
        let dx1 = b1.backward_cached(dpyr.clone());

        let pyr = b2.forward(&x, CacheMode::Stats);
        b2.visit_params(&mut |p| p.zero_grad());
        let dx2 = b2.backward_rev(&pyr, dpyr);

        assert!(dx1.max_abs_diff(&dx2) < 1e-3, "dx diff {}", dx1.max_abs_diff(&dx2));
        let mut g1 = Vec::new();
        b1.visit_params(&mut |p| g1.push(p.grad.clone()));
        let mut g2 = Vec::new();
        b2.visit_params(&mut |p| g2.push(p.grad.clone()));
        let mut worst = 0.0f32;
        for (a, b) in g1.iter().zip(&g2) {
            worst = worst.max(a.max_abs_diff(b) / (1.0 + a.abs_max()));
        }
        assert!(worst < 2e-3, "worst relative param-grad diff {worst}");
    }

    #[test]
    fn deeper_config_means_more_macs_and_params() {
        let mut b1 = RevBiFPN::new(RevBiFPNConfig::tiny(10).with_depth(1));
        let mut b2 = RevBiFPN::new(RevBiFPNConfig::tiny(10).with_depth(3));
        assert!(b2.macs(1) > b1.macs(1));
        assert!(b2.param_count() > b1.param_count());
    }

    #[test]
    fn reversible_cache_constant_vs_conventional_linear_in_depth() {
        let b1 = RevBiFPN::new(RevBiFPNConfig::tiny(10).with_depth(1));
        let b4 = RevBiFPN::new(RevBiFPNConfig::tiny(10).with_depth(4));
        // Stats (reversible) cache barely grows with depth...
        let _s1 = b1.cache_bytes(8, CacheMode::Stats);
        let s4 = b4.cache_bytes(8, CacheMode::Stats);
        // ...while Full (conventional) cache grows substantially.
        let f1 = b1.cache_bytes(8, CacheMode::Full);
        let f4 = b4.cache_bytes(8, CacheMode::Full);
        assert!(f4 as f64 / f1 as f64 > 1.8, "full: {f1} -> {f4}");
        assert!((s4 as f64) < 0.02 * f4 as f64, "stats {s4} vs full {f4}");
    }

    #[test]
    fn conv_stem_trains_reversibly() {
        // A convolutional (non-reversible) stem must cache conventionally
        // inside the otherwise-reversible pipeline (Table 4 ablation).
        let mut cfg = RevBiFPNConfig::tiny(10);
        cfg.stem = crate::config::StemKind::Convolutional;
        let mut b = RevBiFPN::new(cfg);
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let pyr = b.forward(&x, CacheMode::Stats);
        let dpyr: Vec<Tensor> = pyr.iter().map(|p| Tensor::ones(p.shape())).collect();
        b.visit_params(&mut |p| p.zero_grad());
        let dx = b.backward_rev(&pyr, dpyr);
        assert_eq!(dx.shape(), x.shape());
        let mut stem_grads = 0;
        b.visit_params(&mut |p| {
            if p.grad.abs_max() > 0.0 {
                stem_grads += 1;
            }
        });
        assert!(stem_grads > 0);
        b.clear_cache();
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let mut a = RevBiFPN::new(RevBiFPNConfig::tiny(10));
        let mut b = RevBiFPN::new(RevBiFPNConfig::tiny(10));
        let mut va = Vec::new();
        a.visit_params(&mut |p| va.push(p.value.clone()));
        let mut vb = Vec::new();
        b.visit_params(&mut |p| vb.push(p.value.clone()));
        assert_eq!(va, vb);
    }
}
