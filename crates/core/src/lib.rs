//! # revbifpn
//!
//! Reproduction of **RevBiFPN: The Fully Reversible Bidirectional Feature
//! Pyramid Network** (Chiley et al., MLSys 2023) — the backbone family
//! S0–S6, its invertible SpaceToDepth stem, the RevSilo-based reversible
//! body, classification neck/head, the compound-scaling rule, and analytic
//! parameter/MAC/memory models.
//!
//! The backbone trains with **O(nchw)** activation memory: only the output
//! feature pyramid is retained and every hidden state is reconstructed
//! during the backward pass (see `revbifpn-rev`).
//!
//! ```
//! use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig, RunMode};
//! use revbifpn_tensor::{Shape, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut model = RevBiFPNClassifier::new(RevBiFPNConfig::tiny(10));
//! let mut rng = StdRng::seed_from_u64(0);
//! let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
//! let logits = model.forward(&x, RunMode::Eval);
//! assert_eq!(logits.shape(), Shape::new(1, 10, 1, 1));
//! ```

#![warn(missing_docs)]

pub mod artifact;
mod backbone;
mod config;
mod freeze;
mod head;
mod model;
pub mod stats;
mod stem;

pub use backbone::RevBiFPN;
pub use config::{ConfigError, DownsampleMode, RevBiFPNConfig, SePlacement, StemKind, UpsampleMode};
pub use freeze::{FreezeResult, FrozenBackbone, FrozenClassifier, FrozenClsHead, FrozenStem};
pub use head::{ClsHead, Neck};
pub use model::{RevBiFPNClassifier, RunMode};
pub use stem::Stem;
