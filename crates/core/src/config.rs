//! RevBiFPN family configuration and the compound-scaling rule (paper
//! Table 6 / Appendix C.6).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed rejection of an inconsistent [`RevBiFPNConfig`].
///
/// Produced by [`RevBiFPNConfig::validate`] and [`RevBiFPNConfig::try_scaled`]
/// so untrusted configuration (deserialized files, serving requests) surfaces
/// as a value rather than a panic deep inside model construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Scale index outside the paper's S0..S6 family.
    UnknownScale {
        /// The requested scale index.
        s: usize,
    },
    /// Fewer than 2 resolution streams.
    TooFewStreams {
        /// The number of streams provided.
        n: usize,
    },
    /// So many streams that the cumulative stride overflows `usize`.
    TooManyStreams {
        /// The number of streams provided.
        n: usize,
    },
    /// A per-stream vector's length disagrees with the number of streams.
    StreamLenMismatch {
        /// Which field is mis-sized.
        field: &'static str,
        /// Entries provided.
        len: usize,
        /// Number of streams.
        n: usize,
    },
    /// A channel/resolution divisibility requirement is violated.
    Indivisible {
        /// What must be divisible (static description).
        what: &'static str,
        /// The offending value.
        value: usize,
        /// The required divisor.
        divisor: usize,
    },
    /// The SpaceToDepth stem would see fewer than 3 duplicated image channels.
    StemTooNarrow {
        /// Duplicated image channels available, `c0 / stem_block^2`.
        dup: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownScale { s } => {
                write!(f, "RevBiFPN variants are S0..S6, got S{s}")
            }
            ConfigError::TooFewStreams { n } => write!(f, "need at least 2 streams, got {n}"),
            ConfigError::TooManyStreams { n } => {
                write!(f, "{n} streams overflow the cumulative stride")
            }
            ConfigError::StreamLenMismatch { field, len, n } => {
                write!(f, "{field} has {len} entries for {n} streams")
            }
            ConfigError::Indivisible { what, value, divisor } => {
                write!(f, "{what}: {value} must be divisible by {divisor}")
            }
            ConfigError::StemTooNarrow { dup } => {
                write!(f, "SpaceToDepth stem needs c0/stem_block^2 >= 3 image channels, got {dup}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// How features are downsampled inside RevSilos and heads
/// (Table 3 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DownsampleMode {
    /// "sd": one depthwise block with stride `2^k` and kernel `2^(k+1)+1`
    /// (the paper's choice).
    SingleStrided,
    /// "ld": a chain of `k` stride-2 blocks (HRNet style).
    Chained,
}

/// How features are upsampled inside RevSilos (Table 3 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpsampleMode {
    /// "lu": spatial (depthwise 3x3) MBConv followed by bilinear upsampling
    /// (the paper's choice).
    BilinearConv,
    /// "su": 1x1 convolution + nearest-neighbour upsampling (HRNet style).
    NearestPointwise,
}

/// Where squeeze-excite is applied (Table 5 ablation). The paper follows
/// Ridnik et al. 2021: SE helps on high-resolution streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SePlacement {
    /// No squeeze-excite anywhere.
    None,
    /// SE only on the low-resolution (coarse) half of the streams.
    LowRes,
    /// SE only on the high-resolution (fine) half of the streams (default).
    HighRes,
}

impl SePlacement {
    /// Whether stream `i` of `n` gets squeeze-excite.
    pub fn applies(self, stream: usize, n_streams: usize) -> bool {
        match self {
            SePlacement::None => false,
            SePlacement::HighRes => stream < n_streams.div_ceil(2),
            SePlacement::LowRes => stream >= n_streams.div_ceil(2),
        }
    }
}

/// Stem type (Table 4 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StemKind {
    /// Invertible channel-duplicating SpaceToDepth (the paper's choice:
    /// keeps the whole network fully reversible).
    SpaceToDepth,
    /// Two stride-2 3x3 convolutions (conventional; not reversible, its
    /// activations are cached).
    Convolutional,
}

/// Full configuration of a RevBiFPN backbone + classification head.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RevBiFPNConfig {
    /// Variant name ("RevBiFPN-S0", "tiny", ...).
    pub name: String,
    /// Per-stream channels, finest to coarsest (length = number of streams).
    pub channels: Vec<usize>,
    /// Number of extra full-width fusion silos after the expansion phase
    /// (the `d` of Table 6).
    pub depth: usize,
    /// Train/eval input resolution (square).
    pub resolution: usize,
    /// Reversible residual blocks per stream after each silo.
    pub blocks_per_stage: usize,
    /// Per-stream MBConv expansion ratios for the reversible residual
    /// blocks, finest to coarsest ("larger expansion ratios on the lower
    /// resolution streams").
    pub expansion: Vec<f32>,
    /// Expansion ratio of the RevSilo fusion transforms (kept lean: fusion
    /// edges are numerous, O(N^2) per silo).
    pub fusion_expansion: f32,
    /// Squeeze-excite reduction ratio where applied.
    pub se_ratio: f32,
    /// Squeeze-excite placement.
    pub se_placement: SePlacement,
    /// Downsampling scheme.
    pub down_mode: DownsampleMode,
    /// Upsampling scheme.
    pub up_mode: UpsampleMode,
    /// Stem kind.
    pub stem: StemKind,
    /// Stem block size (4 for ImageNet-scale, 2 for tiny synthetic inputs).
    pub stem_block: usize,
    /// Stochastic-depth probability in the reversible blocks' transforms.
    pub drop_path: f32,
    /// Dropout before the final classifier.
    pub dropout: f32,
    /// Per-stream neck output channels (Appendix C.5: 48/64/128/320 at S0
    /// scale).
    pub neck_channels: Vec<usize>,
    /// Width of the final pre-classifier 1x1 convolution.
    pub head_dim: usize,
    /// Number of classes of the classification head.
    pub num_classes: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

fn round16(x: f32) -> usize {
    (((x / 16.0).round() as usize).max(1)) * 16
}

impl RevBiFPNConfig {
    /// Number of resolution streams (the paper's `N`).
    pub fn num_streams(&self) -> usize {
        self.channels.len()
    }

    /// Stream 0 spatial resolution for a given input resolution.
    pub fn stream0_res(&self) -> usize {
        self.resolution / self.stem_block
    }

    /// Input-channel duplication factor of the SpaceToDepth stem:
    /// `c0 / stem_block^2` duplicated image channels.
    pub fn stem_dup_channels(&self) -> usize {
        self.channels[0] / (self.stem_block * self.stem_block)
    }

    /// The baseline RevBiFPN-S0 (paper Section 3): channels 48/64/80/160,
    /// N = 4, d = 2, resolution 224.
    pub fn s0(num_classes: usize) -> Self {
        Self {
            name: "RevBiFPN-S0".into(),
            channels: vec![48, 64, 80, 160],
            depth: 2,
            resolution: 224,
            blocks_per_stage: 1,
            expansion: vec![2.0, 3.0, 4.0, 6.0],
            fusion_expansion: 1.0,
            se_ratio: 0.25,
            se_placement: SePlacement::HighRes,
            down_mode: DownsampleMode::SingleStrided,
            up_mode: UpsampleMode::BilinearConv,
            stem: StemKind::SpaceToDepth,
            stem_block: 4,
            drop_path: 0.0,
            dropout: 0.25,
            neck_channels: vec![48, 64, 128, 320],
            head_dim: 1280,
            num_classes,
            seed: 0,
        }
    }

    /// The scaled variant `S<s>` per Table 6 (width multiplier, depth and
    /// resolution; channels rounded to multiples of 16).
    ///
    /// # Panics
    ///
    /// Panics if `s > 6`; [`Self::try_scaled`] reports the same violation as
    /// a [`ConfigError`] for untrusted scale indices.
    pub fn scaled(s: usize, num_classes: usize) -> Self {
        Self::try_scaled(s, num_classes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::scaled`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownScale`] if `s > 6`.
    pub fn try_scaled(s: usize, num_classes: usize) -> Result<Self, ConfigError> {
        const MW: [f32; 7] = [1.0, 1.33, 2.0, 2.67, 4.0, 5.33, 6.67];
        const D: [usize; 7] = [2, 2, 2, 3, 4, 4, 5];
        const RES: [usize; 7] = [224, 256, 256, 288, 320, 352, 352];
        const DROPOUT: [f32; 7] = [0.25, 0.25, 0.3, 0.3, 0.4, 0.4, 0.6];
        const DROP_PATH: [f32; 7] = [0.0, 0.0, 0.0, 0.05, 0.1, 0.1, 0.3];
        if s > 6 {
            return Err(ConfigError::UnknownScale { s });
        }
        let mw = MW[s];
        let mut cfg = Self::s0(num_classes);
        cfg.name = format!("RevBiFPN-S{s}");
        cfg.channels = cfg.channels.iter().map(|&c| round16(c as f32 * mw)).collect();
        cfg.neck_channels = cfg.neck_channels.iter().map(|&c| round16(c as f32 * mw)).collect();
        cfg.depth = D[s];
        cfg.resolution = RES[s];
        cfg.dropout = DROPOUT[s];
        cfg.drop_path = DROP_PATH[s];
        Ok(cfg)
    }

    /// A miniature configuration for CPU tests and synthetic-data training:
    /// 3 streams, block-2 stem, 32x32 inputs.
    pub fn tiny(num_classes: usize) -> Self {
        Self {
            name: "RevBiFPN-tiny".into(),
            channels: vec![16, 24, 32],
            depth: 1,
            resolution: 32,
            blocks_per_stage: 1,
            expansion: vec![1.0, 1.5, 2.0],
            fusion_expansion: 1.0,
            se_ratio: 0.25,
            se_placement: SePlacement::HighRes,
            down_mode: DownsampleMode::SingleStrided,
            up_mode: UpsampleMode::BilinearConv,
            stem: StemKind::SpaceToDepth,
            stem_block: 2,
            drop_path: 0.0,
            dropout: 0.0,
            neck_channels: vec![16, 24, 48],
            head_dim: 128,
            num_classes,
            seed: 0,
        }
    }

    /// Returns a copy with a different input resolution.
    pub fn with_resolution(mut self, res: usize) -> Self {
        self.resolution = res;
        self
    }

    /// Returns a copy with a different extra fusion depth `d`.
    pub fn with_depth(mut self, d: usize) -> Self {
        self.depth = d;
        self
    }

    /// Returns a copy with a different init seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Kernel size used by same-resolution reversible blocks on stream `i`
    /// ("a diverse set of kernel sizes"): 3 on the fine half, 5 on the
    /// coarse half.
    pub fn block_kernel(&self, stream: usize) -> usize {
        if stream < self.num_streams().div_ceil(2) {
            3
        } else {
            5
        }
    }

    /// Validates internal consistency.
    ///
    /// Total over arbitrary field values: degenerate configurations (zero
    /// `stem_block`, zero channels, absurd stream counts) are rejected with
    /// a typed error — this function never panics (see
    /// `tests/proptest_config.rs`).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let n = self.num_streams();
        if n < 2 {
            return Err(ConfigError::TooFewStreams { n });
        }
        if self.expansion.len() != n {
            return Err(ConfigError::StreamLenMismatch {
                field: "expansion",
                len: self.expansion.len(),
                n,
            });
        }
        if self.neck_channels.len() != n {
            return Err(ConfigError::StreamLenMismatch {
                field: "neck_channels",
                len: self.neck_channels.len(),
                n,
            });
        }
        if self.stem_block == 0 {
            return Err(ConfigError::Indivisible { what: "stem_block", value: 0, divisor: 1 });
        }
        for &c in &self.channels {
            if c == 0 || !c.is_multiple_of(2) {
                return Err(ConfigError::Indivisible {
                    what: "stream channels (RevBlock split needs even, non-zero)",
                    value: c,
                    divisor: 2,
                });
            }
        }
        let b2 = self.stem_block * self.stem_block;
        if !self.channels[0].is_multiple_of(b2) {
            return Err(ConfigError::Indivisible {
                what: "c0 vs stem_block^2",
                value: self.channels[0],
                divisor: b2,
            });
        }
        if self.stem == StemKind::SpaceToDepth && self.stem_dup_channels() < 3 {
            return Err(ConfigError::StemTooNarrow { dup: self.stem_dup_channels() });
        }
        // `stem_block << (n-1)` must not overflow usize: reject stream counts
        // deeper than any plausible pyramid before shifting.
        let Some(total_down) = ((n - 1) < usize::BITS as usize - 1)
            .then(|| self.stem_block.checked_shl((n - 1) as u32))
            .flatten()
        else {
            return Err(ConfigError::TooManyStreams { n });
        };
        if self.resolution == 0 || !self.resolution.is_multiple_of(total_down) {
            return Err(ConfigError::Indivisible {
                what: "resolution vs total downsampling",
                value: self.resolution,
                divisor: total_down,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s0_matches_paper_channels() {
        let cfg = RevBiFPNConfig::s0(1000);
        assert_eq!(cfg.channels, vec![48, 64, 80, 160]);
        assert_eq!(cfg.depth, 2);
        assert_eq!(cfg.resolution, 224);
        assert_eq!(cfg.stem_dup_channels(), 3); // plain RGB
        cfg.validate().unwrap();
    }

    #[test]
    fn scaling_table6() {
        // Spot-check width multipliers and schedules against Table 6.
        let s1 = RevBiFPNConfig::scaled(1, 1000);
        assert_eq!(s1.channels[0], 64); // 48 * 1.33 = 63.8 -> 64
        assert_eq!(s1.resolution, 256);
        assert_eq!(s1.depth, 2);
        let s3 = RevBiFPNConfig::scaled(3, 1000);
        assert_eq!(s3.channels[0], 128); // 48 * 2.67 = 128.2 -> 128
        assert_eq!(s3.depth, 3);
        assert_eq!(s3.resolution, 288);
        let s6 = RevBiFPNConfig::scaled(6, 1000);
        assert_eq!(s6.channels[0], 320); // 48 * 6.67 = 320.2 -> 320
        assert_eq!(s6.depth, 5);
        assert_eq!(s6.resolution, 352);
        for s in 0..=6 {
            RevBiFPNConfig::scaled(s, 1000).validate().unwrap();
        }
    }

    #[test]
    fn widths_are_multiples_of_16() {
        for s in 0..=6 {
            let cfg = RevBiFPNConfig::scaled(s, 10);
            for &c in &cfg.channels {
                assert_eq!(c % 16, 0, "{}: {c}", cfg.name);
            }
        }
    }

    #[test]
    fn monotone_scaling() {
        let mut prev = 0;
        for s in 0..=6 {
            let cfg = RevBiFPNConfig::scaled(s, 10);
            let total: usize = cfg.channels.iter().sum();
            assert!(total >= prev, "S{s} narrower than S{}", s.saturating_sub(1));
            prev = total;
        }
    }

    #[test]
    fn tiny_is_valid() {
        RevBiFPNConfig::tiny(10).validate().unwrap();
    }

    #[test]
    fn se_placement_rules() {
        assert!(SePlacement::HighRes.applies(0, 4));
        assert!(SePlacement::HighRes.applies(1, 4));
        assert!(!SePlacement::HighRes.applies(2, 4));
        assert!(!SePlacement::LowRes.applies(0, 4));
        assert!(SePlacement::LowRes.applies(3, 4));
        assert!(!SePlacement::None.applies(0, 4));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = RevBiFPNConfig::tiny(10);
        cfg.channels = vec![16];
        assert!(cfg.validate().is_err());
        let mut cfg = RevBiFPNConfig::tiny(10);
        cfg.resolution = 30;
        assert!(cfg.validate().is_err());
        let mut cfg = RevBiFPNConfig::tiny(10);
        cfg.channels = vec![15, 24, 32];
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn try_scaled_rejects_unknown_scale() {
        assert_eq!(RevBiFPNConfig::try_scaled(7, 10).unwrap_err(), ConfigError::UnknownScale { s: 7 });
        assert_eq!(
            RevBiFPNConfig::try_scaled(usize::MAX, 10).unwrap_err(),
            ConfigError::UnknownScale { s: usize::MAX }
        );
        assert!(RevBiFPNConfig::try_scaled(6, 10).is_ok());
    }

    #[test]
    fn validate_is_total_on_degenerate_configs() {
        let mut cfg = RevBiFPNConfig::tiny(10);
        cfg.stem_block = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RevBiFPNConfig::tiny(10);
        cfg.channels = vec![0, 0, 0];
        assert!(cfg.validate().is_err());
        let mut cfg = RevBiFPNConfig::tiny(10);
        cfg.resolution = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RevBiFPNConfig::tiny(10);
        cfg.channels = vec![16; 100];
        cfg.expansion = vec![1.0; 100];
        cfg.neck_channels = vec![16; 100];
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::TooManyStreams { n: 100 });
    }

    #[test]
    fn block_kernels_are_diverse() {
        let cfg = RevBiFPNConfig::s0(10);
        assert_eq!(cfg.block_kernel(0), 3);
        assert_eq!(cfg.block_kernel(3), 5);
    }
}
