//! `RBFNFRZ1` serialization for whole frozen classifiers.
//!
//! [`save_classifier_artifact`] writes a compiled [`FrozenClassifier`]
//! (either precision tier) into a single crash-safe artifact file;
//! [`load_classifier_artifact`] maps it back, sharing panel sections with
//! the page cache, so a serving worker cold-starts without copying or
//! re-packing any weights. The container machinery (header, CRCs, atomic
//! write, fault injection) lives in [`revbifpn_nn::artifact`]; this module
//! contributes the model-level structure codec: the [`RevBiFPNConfig`]
//! (manually field-by-field — the artifact format is independent of any
//! serde wire format), the stem, the reversible body (via
//! [`revbifpn_rev::artifact`]), the neck, and the classification head.

use crate::config::{
    DownsampleMode, RevBiFPNConfig, SePlacement, StemKind, UpsampleMode,
};
use crate::freeze::{FrozenBackbone, FrozenClassifier, FrozenClsHead, FrozenStem};
use revbifpn_nn::artifact::{
    decode_layer, encode_layer, ArtifactReader, ArtifactWriter, TreeReader,
};
use revbifpn_rev::artifact::{decode_sequence, encode_sequence};
use std::io;
use std::path::Path;

/// Artifact flag bit: the model is the int8-quantized tier.
pub const FLAG_INT8: u32 = 1;
/// Artifact flag bit: the payload is a classifier (vs. a detector).
pub const FLAG_CLASSIFIER: u32 = 2;

fn inv(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ------------------------------------------------------------ config codec

fn put_usizes(w: &mut ArtifactWriter, v: &[usize]) {
    w.put_u32(v.len() as u32);
    for &x in v {
        w.put_u64(x as u64);
    }
}

fn get_usizes(r: &mut TreeReader<'_>) -> io::Result<Vec<usize>> {
    let n = r.get_u32()? as usize;
    if n > 1 << 16 {
        return Err(inv("unreasonable array length in config"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(usize::try_from(r.get_u64()?).map_err(|_| inv("usize overflow in config"))?);
    }
    Ok(out)
}

fn put_f32s_exact(w: &mut ArtifactWriter, v: &[f32]) {
    w.put_u32(v.len() as u32);
    for &x in v {
        w.put_f32(x);
    }
}

fn get_f32s_exact(r: &mut TreeReader<'_>) -> io::Result<Vec<f32>> {
    let n = r.get_u32()? as usize;
    if n > 1 << 16 {
        return Err(inv("unreasonable array length in config"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_f32()?);
    }
    Ok(out)
}

/// Serializes a [`RevBiFPNConfig`] into the structure stream.
pub fn encode_config(w: &mut ArtifactWriter, cfg: &RevBiFPNConfig) {
    w.put_str(&cfg.name);
    put_usizes(w, &cfg.channels);
    w.put_u64(cfg.depth as u64);
    w.put_u64(cfg.resolution as u64);
    w.put_u64(cfg.blocks_per_stage as u64);
    put_f32s_exact(w, &cfg.expansion);
    w.put_f32(cfg.fusion_expansion);
    w.put_f32(cfg.se_ratio);
    w.put_u8(match cfg.se_placement {
        SePlacement::None => 0,
        SePlacement::LowRes => 1,
        SePlacement::HighRes => 2,
    });
    w.put_u8(match cfg.down_mode {
        DownsampleMode::SingleStrided => 0,
        DownsampleMode::Chained => 1,
    });
    w.put_u8(match cfg.up_mode {
        UpsampleMode::BilinearConv => 0,
        UpsampleMode::NearestPointwise => 1,
    });
    w.put_u8(match cfg.stem {
        StemKind::SpaceToDepth => 0,
        StemKind::Convolutional => 1,
    });
    w.put_u64(cfg.stem_block as u64);
    w.put_f32(cfg.drop_path);
    w.put_f32(cfg.dropout);
    put_usizes(w, &cfg.neck_channels);
    w.put_u64(cfg.head_dim as u64);
    w.put_u64(cfg.num_classes as u64);
    w.put_u64(cfg.seed);
}

/// Deserializes a [`RevBiFPNConfig`] and re-validates it.
pub fn decode_config(r: &mut TreeReader<'_>) -> io::Result<RevBiFPNConfig> {
    let get_usize =
        |r: &mut TreeReader<'_>| -> io::Result<usize> {
            usize::try_from(r.get_u64()?).map_err(|_| inv("usize overflow in config"))
        };
    let name = r.get_str()?;
    let channels = get_usizes(r)?;
    let depth = get_usize(r)?;
    let resolution = get_usize(r)?;
    let blocks_per_stage = get_usize(r)?;
    let expansion = get_f32s_exact(r)?;
    let fusion_expansion = r.get_f32()?;
    let se_ratio = r.get_f32()?;
    let se_placement = match r.get_u8()? {
        0 => SePlacement::None,
        1 => SePlacement::LowRes,
        2 => SePlacement::HighRes,
        _ => return Err(inv("bad SE placement tag")),
    };
    let down_mode = match r.get_u8()? {
        0 => DownsampleMode::SingleStrided,
        1 => DownsampleMode::Chained,
        _ => return Err(inv("bad downsample mode tag")),
    };
    let up_mode = match r.get_u8()? {
        0 => UpsampleMode::BilinearConv,
        1 => UpsampleMode::NearestPointwise,
        _ => return Err(inv("bad upsample mode tag")),
    };
    let stem = match r.get_u8()? {
        0 => StemKind::SpaceToDepth,
        1 => StemKind::Convolutional,
        _ => return Err(inv("bad stem kind tag")),
    };
    let stem_block = get_usize(r)?;
    let drop_path = r.get_f32()?;
    let dropout = r.get_f32()?;
    let neck_channels = get_usizes(r)?;
    let head_dim = get_usize(r)?;
    let num_classes = get_usize(r)?;
    let seed = r.get_u64()?;
    let cfg = RevBiFPNConfig {
        name,
        channels,
        depth,
        resolution,
        blocks_per_stage,
        expansion,
        fusion_expansion,
        se_ratio,
        se_placement,
        down_mode,
        up_mode,
        stem,
        stem_block,
        drop_path,
        dropout,
        neck_channels,
        head_dim,
        num_classes,
        seed,
    };
    cfg.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("invalid config: {e:?}")))?;
    Ok(cfg)
}

// ------------------------------------------------------------- model codec

fn encode_stem(w: &mut ArtifactWriter, stem: &FrozenStem) -> io::Result<()> {
    match stem {
        FrozenStem::SpaceToDepth { block, c0, image_channels } => {
            w.put_u8(0);
            w.put_u32(*block as u32);
            w.put_u32(*c0 as u32);
            w.put_u32(*image_channels as u32);
        }
        FrozenStem::Convolutional { body, c0 } => {
            w.put_u8(1);
            w.put_u32(*c0 as u32);
            encode_layer(w, body)?;
        }
    }
    Ok(())
}

fn decode_stem(r: &mut TreeReader<'_>) -> io::Result<FrozenStem> {
    Ok(match r.get_u8()? {
        0 => {
            let block = r.get_u32()? as usize;
            let c0 = r.get_u32()? as usize;
            let image_channels = r.get_u32()? as usize;
            if block == 0 || c0 == 0 {
                return Err(inv("degenerate SpaceToDepth stem"));
            }
            FrozenStem::SpaceToDepth { block, c0, image_channels }
        }
        1 => {
            let c0 = r.get_u32()? as usize;
            let body = Box::new(decode_layer(r)?);
            FrozenStem::Convolutional { body, c0 }
        }
        _ => return Err(inv("bad frozen stem tag")),
    })
}

/// Serializes a compiled [`FrozenBackbone`] (config + stem + reversible
/// body) into `w` — shared by the classifier codec here and the detector
/// codec in `revbifpn-detect`.
///
/// # Errors
///
/// Fails on a backbone containing an uncompiled conv.
pub fn encode_backbone(w: &mut ArtifactWriter, backbone: &FrozenBackbone) -> io::Result<()> {
    encode_config(w, &backbone.cfg);
    encode_stem(w, &backbone.stem)?;
    encode_sequence(w, &backbone.body)
}

/// Deserializes a [`FrozenBackbone`] written by [`encode_backbone`].
pub fn decode_backbone(r: &mut TreeReader<'_>) -> io::Result<FrozenBackbone> {
    let cfg = decode_config(r)?;
    let stem = decode_stem(r)?;
    let body = decode_sequence(r)?;
    Ok(FrozenBackbone { cfg, stem, body })
}

/// Serializes a compiled [`FrozenClassifier`] into `w`.
///
/// # Errors
///
/// Fails on a model containing an uncompiled conv.
pub fn encode_classifier(w: &mut ArtifactWriter, model: &FrozenClassifier) -> io::Result<()> {
    encode_backbone(w, &model.backbone)?;
    w.put_u32(model.neck.len() as u32);
    for l in &model.neck {
        encode_layer(w, l)?;
    }
    w.put_u32(model.head.num_streams as u32);
    w.put_u32(model.head.downs.len() as u32);
    for l in &model.head.downs {
        encode_layer(w, l)?;
    }
    encode_layer(w, &model.head.tail)
}

/// Deserializes a [`FrozenClassifier`] written by [`encode_classifier`].
pub fn decode_classifier(r: &mut TreeReader<'_>) -> io::Result<FrozenClassifier> {
    let backbone = decode_backbone(r)?;
    let n_neck = r.get_u32()? as usize;
    if n_neck > 1 << 16 {
        return Err(inv("unreasonable neck length"));
    }
    let mut neck = Vec::with_capacity(n_neck);
    for _ in 0..n_neck {
        neck.push(decode_layer(r)?);
    }
    let num_streams = r.get_u32()? as usize;
    let n_downs = r.get_u32()? as usize;
    if n_downs > 1 << 16 {
        return Err(inv("unreasonable head depth"));
    }
    let mut downs = Vec::with_capacity(n_downs);
    for _ in 0..n_downs {
        downs.push(decode_layer(r)?);
    }
    let tail = decode_layer(r)?;
    if num_streams != backbone.cfg.num_streams() || neck.len() != num_streams {
        return Err(inv("stream counts disagree between config and payload"));
    }
    Ok(FrozenClassifier { backbone, neck, head: FrozenClsHead { downs, tail, num_streams } })
}

/// Computes the artifact flags for `model` (precision tier + kind).
pub fn classifier_flags(model: &FrozenClassifier) -> u32 {
    FLAG_CLASSIFIER | if model.is_quantized() { FLAG_INT8 } else { 0 }
}

/// Serializes `model` and writes it to `path` atomically and durably (see
/// [`revbifpn_nn::artifact::write_atomic`]).
///
/// # Errors
///
/// Propagates serialization and I/O errors; unless the failure happened
/// after the rename, an existing artifact at `path` is left untouched.
pub fn save_classifier_artifact(path: &Path, model: &FrozenClassifier) -> io::Result<()> {
    let mut w = ArtifactWriter::new(classifier_flags(model));
    encode_classifier(&mut w, model)?;
    w.save(path)
}

/// Opens, validates, and decodes a classifier artifact. `prefer_map`
/// requests mmap backing (falling back to a copy load when unavailable);
/// the returned reader reports which path was taken and the artifact
/// digest for health reporting.
///
/// Header/TOC/structure CRCs are verified here; **section payload CRCs are
/// not** — run [`ArtifactReader::verify_sections`] on the returned reader
/// before trusting an artifact of unknown provenance (hot reload does).
///
/// # Errors
///
/// `InvalidData` for any structural, CRC, layout-fingerprint, or
/// model-kind mismatch; I/O errors from the filesystem.
pub fn load_classifier_artifact(
    path: &Path,
    prefer_map: bool,
) -> io::Result<(FrozenClassifier, ArtifactReader)> {
    let reader = ArtifactReader::open(path, prefer_map)?;
    if reader.flags() & FLAG_CLASSIFIER == 0 {
        return Err(inv("artifact does not contain a classifier"));
    }
    let mut cur = reader.cursor();
    let model = decode_classifier(&mut cur)?;
    if cur.remaining() != 0 {
        return Err(inv("trailing bytes after classifier payload"));
    }
    let quantized = reader.flags() & FLAG_INT8 != 0;
    if quantized != model.is_quantized() {
        return Err(inv("precision flag disagrees with payload"));
    }
    Ok((model, reader))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RevBiFPNClassifier;
    use crate::RevBiFPNConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn_tensor::{Shape, Tensor};
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("revbifpn_core_art_{tag}_{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn tiny_model() -> (RevBiFPNClassifier, Tensor) {
        let cfg = RevBiFPNConfig::tiny(7);
        let mut model = RevBiFPNClassifier::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(Shape::new(1, 3, cfg.resolution, cfg.resolution), 1.0, &mut rng);
        // Populate BN running stats so freezing is meaningful.
        let _ = model.forward(&x, crate::RunMode::TrainConventional);
        model.clear_cache();
        (model, x)
    }

    #[test]
    fn classifier_roundtrips_bitwise_f32_and_int8() {
        let dir = tmp_dir("rt");
        let (model, x) = tiny_model();
        for int8 in [false, true] {
            let frozen =
                if int8 { model.freeze_int8().unwrap() } else { model.freeze().unwrap() };
            let want = frozen.forward(&x);
            let path = dir.join(format!("m_{int8}.frz"));
            save_classifier_artifact(&path, &frozen).unwrap();
            for prefer_map in [true, false] {
                let (loaded, reader) = load_classifier_artifact(&path, prefer_map).unwrap();
                reader.verify_sections().unwrap();
                assert_eq!(reader.flags() & FLAG_INT8 != 0, int8);
                assert_eq!(loaded.is_quantized(), int8);
                assert_eq!(
                    loaded.forward(&x),
                    want,
                    "mapped={} int8={int8}: artifact forward must be bitwise equal",
                    reader.is_mapped()
                );
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_codec_roundtrips() {
        let cfg = RevBiFPNConfig::tiny(7);
        let mut w = ArtifactWriter::new(0);
        encode_config(&mut w, &cfg);
        let r = ArtifactReader::from_bytes(
            revbifpn_tensor::SharedBytes::from_vec(w.finish()),
            false,
        )
        .unwrap();
        let got = decode_config(&mut r.cursor()).unwrap();
        assert_eq!(got, cfg);
    }

    #[test]
    fn wrong_kind_flag_is_rejected() {
        let dir = tmp_dir("kind");
        let (model, _) = tiny_model();
        let frozen = model.freeze().unwrap();
        let mut w = ArtifactWriter::new(0); // missing FLAG_CLASSIFIER
        encode_classifier(&mut w, &frozen).unwrap();
        let path = dir.join("k.frz");
        w.save(&path).unwrap();
        assert!(load_classifier_artifact(&path, true).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
