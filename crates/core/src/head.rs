//! Neck and classification head (paper Appendix C.5, Figure 13).
//!
//! The neck is a set of per-stream MBConv blocks widening the backbone's
//! pyramid channels. The classification head repeatedly downsamples the
//! finest stream with a stride-2 MBConv and adds it into the next stream
//! until all information is aggregated at the coarsest resolution, then
//! applies 1x1 conv -> GAP -> dropout -> dense. Neither part is reversible;
//! both cache conventionally (the paper reverse-checkpoints the neck; its
//! footprint is a small constant either way).

use crate::config::RevBiFPNConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_nn::layers::{BatchNorm2d, Conv2d, Dropout, GlobalAvgPool, HardSwish, Linear, MBConv, MBConvCfg};
use revbifpn_nn::{CacheMode, Layer, Param, Sequential};
use revbifpn_tensor::{Shape, Tensor};

/// Per-stream neck: widens pyramid channels for the task heads.
#[derive(Debug)]
pub struct Neck {
    blocks: Vec<MBConv>,
}

impl Neck {
    /// Builds the neck from a configuration.
    pub fn from_config(cfg: &RevBiFPNConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4E43);
        let n = cfg.num_streams();
        let blocks = (0..n)
            .map(|i| {
                let se = if cfg.se_placement.applies(i, n) { cfg.se_ratio } else { 0.0 };
                let mb = MBConvCfg::same(cfg.channels[i], 3, cfg.fusion_expansion)
                    .with_c_out(cfg.neck_channels[i])
                    .with_se(se)
                    .plain();
                MBConv::new(mb, &mut rng)
            })
            .collect();
        Self { blocks }
    }

    /// Inference-only frozen form: one fused chain per stream (uncompiled).
    pub fn freeze(&self) -> Result<Vec<revbifpn_nn::FrozenLayer>, revbifpn_nn::FreezeError> {
        self.blocks.iter().map(|b| b.freeze()).collect()
    }

    /// Forward over the pyramid.
    pub fn forward(&mut self, pyramid: &[Tensor], mode: CacheMode) -> Vec<Tensor> {
        assert_eq!(pyramid.len(), self.blocks.len(), "neck stream mismatch");
        pyramid.iter().zip(&mut self.blocks).map(|(x, b)| b.forward(x, mode)).collect()
    }

    /// Backward over the pyramid gradients.
    pub fn backward(&mut self, douts: &[Tensor]) -> Vec<Tensor> {
        douts.iter().zip(&mut self.blocks).map(|(d, b)| b.backward(d)).collect()
    }

    /// Output shapes.
    pub fn out_shapes(&self, pyramid: &[Shape]) -> Vec<Shape> {
        pyramid.iter().zip(&self.blocks).map(|(&s, b)| b.out_shape(s)).collect()
    }

    /// MAC count.
    pub fn macs(&self, pyramid: &[Shape]) -> u64 {
        pyramid.iter().zip(&self.blocks).map(|(&s, b)| b.macs(s)).sum()
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for b in &mut self.blocks {
            b.visit_params(f);
        }
    }

    /// Visits all non-parameter persistent buffers.
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for b in &mut self.blocks {
            b.visit_buffers(f);
        }
    }

    /// Visits every [`BatchNorm2d`](revbifpn_nn::layers::BatchNorm2d) in
    /// `visit_params` order.
    pub fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        for b in &mut self.blocks {
            b.visit_bn(f);
        }
    }

    /// Clears caches.
    pub fn clear_cache(&mut self) {
        for b in &mut self.blocks {
            b.clear_cache();
        }
    }

    /// Analytic cache bytes.
    pub fn cache_bytes(&self, pyramid: &[Shape], mode: CacheMode) -> u64 {
        pyramid.iter().zip(&self.blocks).map(|(&s, b)| b.cache_bytes(s, mode)).sum()
    }
}

/// Classification head over a (necked) feature pyramid (Figure 13).
#[derive(Debug)]
pub struct ClsHead {
    downs: Vec<MBConv>,
    tail: Sequential,
    num_streams: usize,
}

impl ClsHead {
    /// Builds the head from a configuration.
    pub fn from_config(cfg: &RevBiFPNConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC15);
        let n = cfg.num_streams();
        let downs = (0..n - 1)
            .map(|i| {
                let mb = MBConvCfg::down(cfg.neck_channels[i], cfg.neck_channels[i + 1], 1, cfg.fusion_expansion)
                    .plain();
                MBConv::new(mb, &mut rng)
            })
            .collect();
        let mut tail = Sequential::new();
        tail.add(Box::new(Conv2d::pointwise(cfg.neck_channels[n - 1], cfg.head_dim, false, &mut rng)));
        tail.add(Box::new(BatchNorm2d::new(cfg.head_dim)));
        tail.add(Box::new(HardSwish::new()));
        tail.add(Box::new(GlobalAvgPool::new()));
        if cfg.dropout > 0.0 {
            tail.add(Box::new(Dropout::new(cfg.dropout, cfg.seed ^ 0xD0)));
        }
        tail.add(Box::new(Linear::new(cfg.head_dim, cfg.num_classes, &mut rng)));
        Self { downs, tail, num_streams: n }
    }

    /// Inference-only frozen form (uncompiled; see [`crate::FrozenClsHead`]).
    pub fn freeze(&self) -> Result<crate::FrozenClsHead, revbifpn_nn::FreezeError> {
        Ok(crate::FrozenClsHead {
            downs: self.downs.iter().map(|d| d.freeze()).collect::<Result<Vec<_>, _>>()?,
            tail: self.tail.freeze()?,
            num_streams: self.num_streams,
        })
    }

    /// Forward pass: necked pyramid to class logits `[n, classes, 1, 1]`.
    pub fn forward(&mut self, neck: &[Tensor], mode: CacheMode) -> Tensor {
        assert_eq!(neck.len(), self.num_streams, "head stream mismatch");
        let mut h = neck[0].clone();
        for (i, d) in self.downs.iter_mut().enumerate() {
            let down = d.forward(&h, mode);
            h = &down + &neck[i + 1];
        }
        self.tail.forward(&h, mode)
    }

    /// Backward pass: logits gradient to per-stream neck gradients.
    pub fn backward(&mut self, dlogits: &Tensor) -> Vec<Tensor> {
        let mut dh = self.tail.backward(dlogits);
        let mut dneck: Vec<Option<Tensor>> = vec![None; self.num_streams];
        for i in (0..self.downs.len()).rev() {
            dneck[i + 1] = Some(dh.clone());
            dh = self.downs[i].backward(&dh);
        }
        dneck[0] = Some(dh);
        dneck.into_iter().map(|d| d.expect("all streams receive gradient")).collect()
    }

    /// MAC count for necked pyramid shapes.
    pub fn macs(&self, neck: &[Shape]) -> u64 {
        let mut total = 0;
        let mut h = neck[0];
        for (i, d) in self.downs.iter().enumerate() {
            total += d.macs(h);
            h = neck[i + 1];
        }
        total + self.tail.macs(h)
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for d in &mut self.downs {
            d.visit_params(f);
        }
        self.tail.visit_params(f);
    }

    /// Visits all non-parameter persistent buffers.
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for d in &mut self.downs {
            d.visit_buffers(f);
        }
        self.tail.visit_buffers(f);
    }

    /// Visits every [`BatchNorm2d`](revbifpn_nn::layers::BatchNorm2d) in
    /// `visit_params` order.
    pub fn visit_bn(&mut self, f: &mut dyn FnMut(&mut revbifpn_nn::layers::BatchNorm2d)) {
        for d in &mut self.downs {
            d.visit_bn(f);
        }
        self.tail.visit_bn(f);
    }

    /// Clears caches.
    pub fn clear_cache(&mut self) {
        for d in &mut self.downs {
            d.clear_cache();
        }
        self.tail.clear_cache();
    }

    /// Analytic cache bytes.
    pub fn cache_bytes(&self, neck: &[Shape], mode: CacheMode) -> u64 {
        let mut total = 0;
        let mut h = neck[0];
        for (i, d) in self.downs.iter().enumerate() {
            total += d.cache_bytes(h, mode);
            h = neck[i + 1];
        }
        total + self.tail.cache_bytes(h, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_pyramid(n: usize, seed: u64) -> (RevBiFPNConfig, Vec<Tensor>) {
        let cfg = RevBiFPNConfig::tiny(10);
        let mut rng = StdRng::seed_from_u64(seed);
        let pyr = (0..cfg.num_streams())
            .map(|i| Tensor::randn(Shape::new(n, cfg.channels[i], 16 >> i, 16 >> i), 1.0, &mut rng))
            .collect();
        (cfg, pyr)
    }

    #[test]
    fn neck_widens_channels() {
        let (cfg, pyr) = tiny_pyramid(2, 0);
        let mut neck = Neck::from_config(&cfg);
        let out = neck.forward(&pyr, CacheMode::None);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.shape().c, cfg.neck_channels[i]);
            assert_eq!(o.shape().hw(), pyr[i].shape().hw());
        }
    }

    #[test]
    fn head_produces_logits() {
        let (cfg, pyr) = tiny_pyramid(2, 1);
        let mut neck = Neck::from_config(&cfg);
        let mut head = ClsHead::from_config(&cfg);
        let n_out = neck.forward(&pyr, CacheMode::None);
        let logits = head.forward(&n_out, CacheMode::None);
        assert_eq!(logits.shape(), Shape::new(2, 10, 1, 1));
    }

    #[test]
    fn head_backward_produces_stream_grads() {
        let (cfg, pyr) = tiny_pyramid(2, 2);
        let mut neck = Neck::from_config(&cfg);
        let mut head = ClsHead::from_config(&cfg);
        let n_out = neck.forward(&pyr, CacheMode::Full);
        let logits = head.forward(&n_out, CacheMode::Full);
        let dl = Tensor::ones(logits.shape());
        let dneck = head.backward(&dl);
        assert_eq!(dneck.len(), cfg.num_streams());
        for (d, o) in dneck.iter().zip(&n_out) {
            assert_eq!(d.shape(), o.shape());
        }
        let dpyr = neck.backward(&dneck);
        for (d, p) in dpyr.iter().zip(&pyr) {
            assert_eq!(d.shape(), p.shape());
        }
    }

    #[test]
    fn macs_and_cache_accounting() {
        let (cfg, pyr) = tiny_pyramid(1, 3);
        let shapes: Vec<Shape> = pyr.iter().map(|p| p.shape()).collect();
        let mut neck = Neck::from_config(&cfg);
        let head = ClsHead::from_config(&cfg);
        let n_shapes = neck.out_shapes(&shapes);
        assert!(neck.macs(&shapes) > 0);
        assert!(head.macs(&n_shapes) > 0);

        revbifpn_nn::meter::reset();
        let outs = neck.forward(&pyr, CacheMode::Full);
        assert_eq!(revbifpn_nn::meter::current() as u64, neck.cache_bytes(&shapes, CacheMode::Full));
        let mut head = head;
        let _ = head.forward(&outs, CacheMode::Full);
        assert_eq!(
            revbifpn_nn::meter::current() as u64,
            neck.cache_bytes(&shapes, CacheMode::Full) + head.cache_bytes(&n_shapes, CacheMode::Full)
        );
        neck.clear_cache();
        head.clear_cache();
        assert_eq!(revbifpn_nn::meter::current(), 0);
    }
}
