//! Property-based totality tests for configuration validation: arbitrary
//! (including degenerate) configurations either validate cleanly or return a
//! typed [`ConfigError`] — classification never panics. This is the contract
//! the serving layer's admission control relies on.

use proptest::prelude::*;
use revbifpn::{ConfigError, RevBiFPNConfig, StemKind};

/// Builds a config from scalar knobs, deliberately spanning degenerate
/// territory: empty/odd/mismatched channel vectors, zero stem blocks, zero
/// or indivisible resolutions, absurd stream counts.
#[allow(clippy::too_many_arguments)]
fn build_config(
    n_ch: usize,
    ch_base: usize,
    n_exp: usize,
    n_neck: usize,
    depth: usize,
    resolution: usize,
    stem_block: usize,
    stem: StemKind,
) -> RevBiFPNConfig {
    let mut cfg = RevBiFPNConfig::tiny(10);
    cfg.channels = (0..n_ch).map(|i| ch_base + 2 * i).collect();
    cfg.expansion = (0..n_exp).map(|i| 1.0 + i as f32 * 0.5).collect();
    cfg.neck_channels = (0..n_neck).map(|i| ch_base / 2 + 2 * i).collect();
    cfg.depth = depth;
    cfg.resolution = resolution;
    cfg.stem_block = stem_block;
    cfg.stem = stem;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `validate` is total: it classifies every configuration without
    /// panicking, and a config it accepts has self-consistent dimensions.
    #[test]
    fn validate_never_panics(
        (n_ch, ch_base) in (0usize..66, 0usize..400),
        (n_exp, n_neck) in (0usize..8, 0usize..8),
        (depth, resolution) in (0usize..16, 0usize..512),
        stem_block in 0usize..8,
        stem in prop::sample::select(vec![StemKind::SpaceToDepth, StemKind::Convolutional]),
    ) {
        let cfg = build_config(n_ch, ch_base, n_exp, n_neck, depth, resolution, stem_block, stem);
        match cfg.validate() {
            Ok(()) => {
                let n = cfg.num_streams();
                prop_assert!(n >= 2);
                prop_assert_eq!(cfg.expansion.len(), n);
                prop_assert_eq!(cfg.neck_channels.len(), n);
                prop_assert!(cfg.stem_block > 0);
                prop_assert!(cfg.resolution > 0);
                // Every stream resolution divides out evenly.
                let r0 = cfg.stream0_res();
                prop_assert!(r0.is_multiple_of(1 << (n - 1)));
            }
            Err(e) => {
                // The error formats without panicking too.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// `try_scaled` is total over the scale index.
    #[test]
    fn try_scaled_never_panics(s in any::<usize>()) {
        match RevBiFPNConfig::try_scaled(s, 10) {
            Ok(cfg) => {
                prop_assert!(s <= 6);
                prop_assert!(cfg.validate().is_ok());
            }
            Err(e) => prop_assert_eq!(e, ConfigError::UnknownScale { s }),
        }
    }
}
