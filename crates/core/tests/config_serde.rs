//! Configuration serialization tests: RevBiFPN configs round-trip through
//! serde so experiment setups can be persisted and reloaded.

use revbifpn::{DownsampleMode, RevBiFPNConfig, SePlacement, StemKind, UpsampleMode};

/// Minimal hand-rolled "serde transport": serialize to the `serde` data
/// model via a token stream would require serde_test (not on the allowed
/// dependency list), so round-trip through the `Debug`-independent path of
/// field-by-field reconstruction using serde's `Serialize`/`Deserialize`
/// impls with a tiny in-repo format: RON-less — we use `serde`'s
/// `serde::de::value` module with a map built from `serde_value`-style
/// pairs. Simpler and fully offline: a JSON-ish writer is out of scope, so
/// we assert the derives exist and behave by round-tripping through
/// `bincode`-free clone + equality and by exercising `Serialize` with a
/// counting serializer.

struct CountingSerializer {
    fields: usize,
}

mod count_ser {
    use serde::ser::{self, Serialize};

    /// A serializer that counts leaf values — enough to prove the derive
    /// walks every field without needing an external format crate.
    pub struct Counter {
        pub leaves: usize,
    }

    #[derive(Debug)]
    pub struct Never;

    impl std::fmt::Display for Never {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "never")
        }
    }

    impl std::error::Error for Never {}

    impl ser::Error for Never {
        fn custom<T: std::fmt::Display>(_msg: T) -> Self {
            Never
        }
    }

    macro_rules! leaf {
        ($($m:ident: $t:ty),*) => {
            $(fn $m(self, _v: $t) -> Result<(), Never> { self.leaves += 1; Ok(()) })*
        };
    }

    impl<'a> ser::Serializer for &'a mut Counter {
        type Ok = ();
        type Error = Never;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        leaf!(serialize_bool: bool, serialize_i8: i8, serialize_i16: i16, serialize_i32: i32,
              serialize_i64: i64, serialize_u8: u8, serialize_u16: u16, serialize_u32: u32,
              serialize_u64: u64, serialize_f32: f32, serialize_f64: f64, serialize_char: char);

        fn serialize_str(self, _v: &str) -> Result<(), Never> {
            self.leaves += 1;
            Ok(())
        }
        fn serialize_bytes(self, _v: &[u8]) -> Result<(), Never> {
            self.leaves += 1;
            Ok(())
        }
        fn serialize_none(self) -> Result<(), Never> {
            Ok(())
        }
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Never> {
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Never> {
            Ok(())
        }
        fn serialize_unit_struct(self, _n: &'static str) -> Result<(), Never> {
            Ok(())
        }
        fn serialize_unit_variant(self, _n: &'static str, _i: u32, _v: &'static str) -> Result<(), Never> {
            self.leaves += 1;
            Ok(())
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(self, _n: &'static str, v: &T) -> Result<(), Never> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _n: &'static str,
            _i: u32,
            _v: &'static str,
            value: &T,
        ) -> Result<(), Never> {
            value.serialize(self)
        }
        fn serialize_seq(self, _len: Option<usize>) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple(self, _len: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple_struct(self, _n: &'static str, _l: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple_variant(
            self,
            _n: &'static str,
            _i: u32,
            _v: &'static str,
            _l: usize,
        ) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_map(self, _len: Option<usize>) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_struct(self, _n: &'static str, _l: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_struct_variant(
            self,
            _n: &'static str,
            _i: u32,
            _v: &'static str,
            _l: usize,
        ) -> Result<Self, Never> {
            Ok(self)
        }
    }

    impl ser::SerializeSeq for &mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl ser::SerializeTuple for &mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl ser::SerializeTupleStruct for &mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl ser::SerializeTupleVariant for &mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl ser::SerializeMap for &mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, k: &T) -> Result<(), Never> {
            k.serialize(&mut **self)
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl ser::SerializeStruct for &mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, _k: &'static str, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl ser::SerializeStructVariant for &mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, _k: &'static str, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
}

#[test]
fn config_serializes_every_field() {
    use serde::Serialize;
    let cfg = RevBiFPNConfig::s0(1000);
    let mut counter = count_ser::Counter { leaves: 0 };
    cfg.serialize(&mut counter).unwrap();
    // name + 4 channels + depth + resolution + blocks + 4 expansions +
    // fusion_expansion + se_ratio + se_placement + down + up + stem +
    // stem_block + drop_path + dropout + 4 neck + head_dim + classes + seed
    assert!(counter.leaves >= 24, "only {} leaves serialized", counter.leaves);
    let _ = CountingSerializer { fields: counter.leaves };
}

#[test]
fn configs_compare_and_clone() {
    let a = RevBiFPNConfig::scaled(3, 100);
    let b = a.clone();
    assert_eq!(a, b);
    let c = b.with_depth(5);
    assert_ne!(a, c);
}

#[test]
fn enums_are_plain_data() {
    assert_eq!(DownsampleMode::SingleStrided, DownsampleMode::SingleStrided);
    assert_ne!(UpsampleMode::BilinearConv, UpsampleMode::NearestPointwise);
    assert_ne!(StemKind::SpaceToDepth, StemKind::Convolutional);
    assert_ne!(SePlacement::HighRes, SePlacement::LowRes);
}
