//! Property-based tests of the full RevBiFPN backbone: invertibility,
//! reversible-gradient equivalence, scaling monotonicity, and memory-model
//! consistency over randomized configurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn::{RevBiFPN, RevBiFPNConfig, RevBiFPNClassifier, RunMode};
use revbifpn_nn::{meter, CacheMode};
use revbifpn_tensor::{Shape, Tensor};

fn random_tiny_config(seed: u64, streams: usize, depth: usize, blocks: usize) -> RevBiFPNConfig {
    let mut cfg = RevBiFPNConfig::tiny(8);
    cfg.channels = (0..streams).map(|i| 8 * (i + 2)).collect();
    cfg.neck_channels = cfg.channels.clone();
    cfg.expansion = vec![1.0; streams];
    cfg.depth = depth;
    cfg.blocks_per_stage = blocks;
    cfg.seed = seed;
    cfg
}

fn randomize_bn(b: &mut RevBiFPN, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    b.visit_params(&mut |p| {
        if p.name == "bn.gamma" {
            p.value = Tensor::uniform(p.value.shape(), 0.6, 1.4, &mut rng);
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The whole backbone inverts back to the input image for randomized
    /// stream counts, depths and parameters.
    #[test]
    fn backbone_inverts_to_image(seed in any::<u64>(), streams in 2usize..=3, depth in 0usize..=2) {
        let cfg = random_tiny_config(seed, streams, depth, 1);
        let mut b = RevBiFPN::new(cfg);
        randomize_bn(&mut b, seed ^ 7);
        let mut rng = StdRng::seed_from_u64(seed ^ 8);
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let pyr = b.forward(&x, CacheMode::None);
        let back = b.invert(pyr).expect("SpaceToDepth stem inverts");
        prop_assert!(back.max_abs_diff(&x) < 0.1, "reconstruction error {}", back.max_abs_diff(&x));
    }

    /// Reversible and conventional training produce the same parameter
    /// gradients for randomized configurations.
    #[test]
    fn gradients_equivalent(seed in any::<u64>(), blocks in 1usize..=2) {
        let cfg = random_tiny_config(seed, 2, 1, blocks);
        let mut b1 = RevBiFPN::new(cfg.clone());
        randomize_bn(&mut b1, seed ^ 1);
        let mut b2 = RevBiFPN::new(cfg);
        randomize_bn(&mut b2, seed ^ 1);

        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let dpyr: Vec<Tensor> = b1.pyramid_shapes(2).iter().map(|&s| Tensor::randn(s, 0.2, &mut rng)).collect();

        let _ = b1.forward(&x, CacheMode::Full);
        b1.visit_params(&mut |p| p.zero_grad());
        let _ = b1.backward_cached(dpyr.clone());

        let pyr = b2.forward(&x, CacheMode::Stats);
        b2.visit_params(&mut |p| p.zero_grad());
        let _ = b2.backward_rev(&pyr, dpyr);

        let mut g1 = Vec::new();
        b1.visit_params(&mut |p| g1.push(p.grad.clone()));
        let mut worst = 0.0f32;
        let mut i = 0;
        b2.visit_params(&mut |p| {
            worst = worst.max(g1[i].max_abs_diff(&p.grad) / (1.0 + g1[i].abs_max()));
            i += 1;
        });
        prop_assert!(worst < 5e-3, "worst relative grad diff {worst}");
    }

    /// The analytic conventional-memory model equals the measured meter
    /// byte-for-byte for any configuration.
    #[test]
    fn memory_model_exact_for_conventional(seed in any::<u64>(), depth in 0usize..=2) {
        let cfg = random_tiny_config(seed, 3, depth, 1);
        let mut m = RevBiFPNClassifier::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let x = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        meter::reset();
        let _ = m.forward(&x, RunMode::TrainConventional);
        prop_assert_eq!(meter::current() as u64, m.activation_bytes(2, RunMode::TrainConventional));
        m.clear_cache();
        prop_assert_eq!(meter::current(), 0);
    }

    /// Deeper configurations never use less conventional memory or fewer
    /// MACs, while reversible memory stays within a small constant.
    #[test]
    fn depth_monotonicity(seed in any::<u64>()) {
        let shallow = RevBiFPNClassifier::new(random_tiny_config(seed, 3, 0, 1));
        let deep = RevBiFPNClassifier::new(random_tiny_config(seed, 3, 3, 1));
        prop_assert!(deep.macs(1) > shallow.macs(1));
        let cs = shallow.activation_bytes(4, RunMode::TrainConventional);
        let cd = deep.activation_bytes(4, RunMode::TrainConventional);
        prop_assert!(cd > cs);
        let rs = shallow.activation_bytes(4, RunMode::TrainReversible);
        let rd = deep.activation_bytes(4, RunMode::TrainReversible);
        prop_assert!((rd as f64) < 1.25 * rs as f64, "reversible grew {rs} -> {rd}");
    }
}
