//! Property-based tests for the detection stack: NMS invariants, AP
//! evaluator bounds and monotonicity, and target-assignment consistency.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use revbifpn_data::{iou, BoxAnnotation};
use revbifpn_detect::{assign_targets, evaluate_box_ap, nms, AreaRanges, Detection};
use revbifpn_tensor::Shape;

fn random_dets(seed: u64, n: usize, classes: usize, extent: f32) -> Vec<Detection> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x1 = rng.random::<f32>() * extent;
            let y1 = rng.random::<f32>() * extent;
            let w = 2.0 + rng.random::<f32>() * extent / 2.0;
            let h = 2.0 + rng.random::<f32>() * extent / 2.0;
            Detection {
                bbox: [x1, y1, x1 + w, y1 + h],
                class: (rng.random::<u32>() as usize) % classes,
                score: rng.random::<f32>(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// NMS output: scores sorted descending, no same-class pair above the
    /// IoU threshold, and size bounded by max_dets.
    #[test]
    fn nms_invariants(seed in any::<u64>(), n in 0usize..40, thresh in 0.2f32..0.8, cap in 1usize..20) {
        let dets = random_dets(seed, n, 3, 50.0);
        let kept = nms(dets.clone(), thresh, cap);
        prop_assert!(kept.len() <= cap.min(dets.len()));
        for w in kept.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for i in 0..kept.len() {
            for j in i + 1..kept.len() {
                if kept[i].class == kept[j].class {
                    prop_assert!(iou(&kept[i].bbox, &kept[j].bbox) <= thresh + 1e-6);
                }
            }
        }
    }

    /// NMS is idempotent: running it twice changes nothing.
    #[test]
    fn nms_idempotent(seed in any::<u64>(), n in 0usize..30) {
        let dets = random_dets(seed, n, 2, 40.0);
        let once = nms(dets, 0.5, 100);
        let twice = nms(once.clone(), 0.5, 100);
        prop_assert_eq!(once, twice);
    }

    /// AP values always lie in [0, 1] and AP50 >= AP (more IoU thresholds
    /// can only be harder).
    #[test]
    fn ap_bounds_and_ordering(seed in any::<u64>(), n_img in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dets = Vec::new();
        let mut gts = Vec::new();
        for i in 0..n_img {
            let img_dets = random_dets(seed ^ i as u64, (rng.random::<u32>() % 8) as usize, 2, 60.0);
            let img_gts: Vec<BoxAnnotation> = random_dets(seed ^ (100 + i as u64), 1 + (rng.random::<u32>() % 4) as usize, 2, 60.0)
                .into_iter()
                .map(|d| BoxAnnotation { bbox: d.bbox, class: d.class })
                .collect();
            dets.push(img_dets);
            gts.push(img_gts);
        }
        let r = evaluate_box_ap(&dets, &gts, 2, AreaRanges::coco());
        for v in [r.ap, r.ap50, r.ap75, r.ap_small, r.ap_medium, r.ap_large] {
            prop_assert!((0.0..=1.0).contains(&v), "{r:?}");
        }
        prop_assert!(r.ap50 >= r.ap - 1e-9);
        prop_assert!(r.ap50 >= r.ap75 - 1e-9);
    }

    /// Evaluating ground truth against itself (perfect detector) always
    /// yields AP == 1 on every populated bucket.
    #[test]
    fn perfect_detector_ap_is_one(seed in any::<u64>(), n_img in 1usize..4) {
        let mut gts = Vec::new();
        let mut dets = Vec::new();
        for i in 0..n_img {
            let objs: Vec<BoxAnnotation> = random_dets(seed ^ i as u64, 3, 2, 60.0)
                .into_iter()
                .map(|d| BoxAnnotation { bbox: d.bbox, class: d.class })
                .collect();
            dets.push(objs.iter().map(|o| Detection { bbox: o.bbox, class: o.class, score: 0.9 }).collect::<Vec<_>>());
            gts.push(objs);
        }
        let r = evaluate_box_ap(&dets, &gts, 2, AreaRanges::coco());
        prop_assert!((r.ap - 1.0).abs() < 1e-9, "{r:?}");
    }

    /// Adding a false positive never increases AP.
    #[test]
    fn false_positive_never_helps(seed in any::<u64>()) {
        let gts = vec![random_dets(seed, 3, 2, 60.0)
            .into_iter()
            .map(|d| BoxAnnotation { bbox: d.bbox, class: d.class })
            .collect::<Vec<_>>()];
        let clean: Vec<Vec<Detection>> =
            vec![gts[0].iter().map(|o| Detection { bbox: o.bbox, class: o.class, score: 0.9 }).collect()];
        let mut noisy = clean.clone();
        noisy[0].push(Detection { bbox: [500.0, 500.0, 520.0, 520.0], class: 0, score: 0.99 });
        let r_clean = evaluate_box_ap(&clean, &gts, 2, AreaRanges::coco());
        let r_noisy = evaluate_box_ap(&noisy, &gts, 2, AreaRanges::coco());
        prop_assert!(r_noisy.ap <= r_clean.ap + 1e-9);
    }

    /// Every ground-truth box that fits a level's size range produces at
    /// least one positive location somewhere in the pyramid (as long as its
    /// centre lies inside the image).
    #[test]
    fn assignment_covers_every_gt(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = 32usize;
        let x1 = rng.random::<f32>() * 16.0;
        let y1 = rng.random::<f32>() * 16.0;
        let w = 4.0 + rng.random::<f32>() * 12.0;
        let h = 4.0 + rng.random::<f32>() * 12.0;
        let objs = vec![vec![BoxAnnotation { bbox: [x1, y1, x1 + w, y1 + h], class: 0 }]];
        let shapes = [
            Shape::new(1, 3, res / 2, res / 2),
            Shape::new(1, 3, res / 4, res / 4),
            Shape::new(1, 3, res / 8, res / 8),
        ];
        let targets = assign_targets(&objs, &shapes, &[2, 4, 8], 1);
        let total_pos: usize = targets.iter().map(|t| t.num_pos).sum();
        prop_assert!(total_pos > 0, "object {:?} got no positives", objs[0][0].bbox);
    }
}
