//! FCOS-style dense detection head over a feature pyramid, plus target
//! assignment and the training losses.
//!
//! This is the repository's stand-in for the paper's Faster R-CNN framework
//! (see DESIGN.md): a per-level anchor-free head predicting class logits
//! and log-space `(l, t, r, b)` distances at every location. The backbone /
//! pyramid interface it exercises is identical; only the detector framework
//! differs.

use crate::backbone::Backbone;
use crate::nms::{nms, Detection};
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_data::BoxAnnotation;
use revbifpn_nn::layers::{Conv2d, Relu};
use revbifpn_nn::loss::{focal_loss_with_logits, smooth_l1};
use revbifpn_nn::{CacheMode, Layer, Param, Sequential};
use revbifpn_tensor::{ConvSpec, Shape, Tensor};

/// Detection-head hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetHeadConfig {
    /// Object classes.
    pub num_classes: usize,
    /// Common head width after the lateral 1x1 convs.
    pub head_channels: usize,
    /// 3x3 conv+ReLU pairs in each level's tower.
    pub tower_depth: usize,
    /// Score threshold at inference.
    pub score_thresh: f32,
    /// NMS IoU threshold.
    pub nms_iou: f32,
    /// Maximum detections per image.
    pub max_dets: usize,
}

impl DetHeadConfig {
    /// A small default.
    pub fn new(num_classes: usize) -> Self {
        Self { num_classes, head_channels: 32, tower_depth: 1, score_thresh: 0.3, nms_iou: 0.5, max_dets: 50 }
    }
}

/// Per-level outputs of the head.
#[derive(Debug)]
pub struct LevelOutput {
    /// Class logits `[n, classes, h, w]`.
    pub cls: Tensor,
    /// Raw log-space box regression `[n, 4, h, w]`.
    pub reg: Tensor,
}

/// The dense head: per-level lateral + tower + (cls, reg) branches.
#[derive(Debug)]
pub struct DetHead {
    cfg: DetHeadConfig,
    strides: Vec<usize>,
    laterals: Vec<Conv2d>,
    towers: Vec<Sequential>,
    cls: Vec<Conv2d>,
    reg: Vec<Conv2d>,
}

impl DetHead {
    /// Builds the head for a backbone's pyramid layout.
    pub fn new(cfg: DetHeadConfig, channels: &[usize], strides: &[usize], seed: u64) -> Self {
        assert_eq!(channels.len(), strides.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let c = cfg.head_channels;
        let laterals = channels.iter().map(|&ci| Conv2d::pointwise(ci, c, true, &mut rng)).collect();
        let towers = (0..channels.len())
            .map(|_| {
                let mut t = Sequential::new();
                for _ in 0..cfg.tower_depth {
                    t.add(Box::new(Conv2d::new(c, c, ConvSpec::kxk(3, 1), true, &mut rng)));
                    t.add(Box::new(Relu::new()));
                }
                t
            })
            .collect();
        let cls = (0..channels.len())
            .map(|_| Conv2d::new(c, cfg.num_classes, ConvSpec::kxk(3, 1), true, &mut rng))
            .collect();
        let reg = (0..channels.len())
            .map(|_| Conv2d::new(c, 4, ConvSpec::kxk(3, 1), true, &mut rng))
            .collect();
        Self { cfg, strides: strides.to_vec(), laterals, towers, cls, reg }
    }

    /// The configuration.
    pub fn cfg(&self) -> &DetHeadConfig {
        &self.cfg
    }

    /// Per-level strides.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Inference-only frozen form (uncompiled; see
    /// [`crate::freeze::FrozenDetHead`]).
    pub fn freeze(&self) -> Result<crate::freeze::FrozenDetHead, revbifpn_nn::FreezeError> {
        let freeze_all = |layers: &mut dyn Iterator<Item = &dyn Layer>| {
            layers.map(|l| l.freeze()).collect::<Result<Vec<_>, _>>()
        };
        Ok(crate::freeze::FrozenDetHead {
            cfg: self.cfg,
            strides: self.strides.clone(),
            laterals: freeze_all(&mut self.laterals.iter().map(|l| l as &dyn Layer))?,
            towers: freeze_all(&mut self.towers.iter().map(|t| t as &dyn Layer))?,
            cls: freeze_all(&mut self.cls.iter().map(|c| c as &dyn Layer))?,
            reg: freeze_all(&mut self.reg.iter().map(|r| r as &dyn Layer))?,
        })
    }

    /// Forward over a pyramid.
    pub fn forward(&mut self, pyramid: &[Tensor], mode: CacheMode) -> Vec<LevelOutput> {
        assert_eq!(pyramid.len(), self.laterals.len(), "pyramid level mismatch");
        pyramid
            .iter()
            .enumerate()
            .map(|(l, p)| {
                let lat = self.laterals[l].forward(p, mode);
                let t = self.towers[l].forward(&lat, mode);
                LevelOutput { cls: self.cls[l].forward(&t, mode), reg: self.reg[l].forward(&t, mode) }
            })
            .collect()
    }

    /// Backward from per-level gradients; returns pyramid gradients.
    pub fn backward(&mut self, grads: Vec<LevelOutput>) -> Vec<Tensor> {
        grads
            .into_iter()
            .enumerate()
            .map(|(l, g)| {
                let mut dt = self.cls[l].backward(&g.cls);
                dt.add_assign(&self.reg[l].backward(&g.reg));
                let dlat = self.towers[l].backward(&dt);
                self.laterals[l].backward(&dlat)
            })
            .collect()
    }

    /// Visits parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.laterals {
            l.visit_params(f);
        }
        for t in &mut self.towers {
            t.visit_params(f);
        }
        for c in &mut self.cls {
            c.visit_params(f);
        }
        for r in &mut self.reg {
            r.visit_params(f);
        }
    }

    /// Clears caches.
    pub fn clear_cache(&mut self) {
        for l in &mut self.laterals {
            l.clear_cache();
        }
        for t in &mut self.towers {
            t.clear_cache();
        }
        for c in &mut self.cls {
            c.clear_cache();
        }
        for r in &mut self.reg {
            r.clear_cache();
        }
    }

    /// MACs over pyramid shapes.
    pub fn macs(&self, pyramid: &[Shape]) -> u64 {
        let mut total = 0;
        for (l, &p) in pyramid.iter().enumerate() {
            total += self.laterals[l].macs(p);
            let lat = self.laterals[l].out_shape(p);
            total += self.towers[l].macs(lat);
            total += self.cls[l].macs(lat) + self.reg[l].macs(lat);
        }
        total
    }
}

/// Per-level training targets for one batch.
#[derive(Debug)]
pub struct LevelTargets {
    /// Class targets `[n, classes, h, w]` in {0, 1}.
    pub cls: Tensor,
    /// Log-space box targets `[n, 4, h, w]` (defined on positives).
    pub reg: Tensor,
    /// Positive-location mask broadcast on the 4 regression channels.
    pub reg_weight: Tensor,
    /// Number of positive locations.
    pub num_pos: usize,
}

/// FCOS-style assignment: a location is positive for the smallest ground
/// truth containing it whose maximum `(l,t,r,b)` extent falls in the
/// level's size range (`(4*s_{l-1}, 4*s_l]`, unbounded at the coarsest).
pub fn assign_targets(
    objects: &[Vec<BoxAnnotation>],
    shapes: &[Shape],
    strides: &[usize],
    num_classes: usize,
) -> Vec<LevelTargets> {
    let n = shapes[0].n;
    let num_levels = shapes.len();
    let mut out = Vec::with_capacity(num_levels);
    for (l, (&shape, &stride)) in shapes.iter().zip(strides).enumerate() {
        let lo = if l == 0 { 0.0 } else { 4.0 * strides[l - 1] as f32 };
        let hi = if l + 1 == num_levels { f32::INFINITY } else { 4.0 * stride as f32 };
        let mut cls = Tensor::zeros(Shape::new(n, num_classes, shape.h, shape.w));
        let mut reg = Tensor::zeros(Shape::new(n, 4, shape.h, shape.w));
        let mut w = Tensor::zeros(Shape::new(n, 4, shape.h, shape.w));
        let mut num_pos = 0usize;
        for (img, objs) in objects.iter().enumerate() {
            for y in 0..shape.h {
                for x in 0..shape.w {
                    let px = stride as f32 * (x as f32 + 0.5);
                    let py = stride as f32 * (y as f32 + 0.5);
                    let mut best: Option<(&BoxAnnotation, f32)> = None;
                    for o in objs {
                        let [x1, y1, x2, y2] = o.bbox;
                        if px < x1 || px > x2 || py < y1 || py > y2 {
                            continue;
                        }
                        let ltrb = [px - x1, py - y1, x2 - px, y2 - py];
                        let m = ltrb.iter().fold(0.0f32, |a, &b| a.max(b));
                        if m <= lo || m > hi {
                            continue;
                        }
                        let area = o.area();
                        if best.map(|(_, a)| area < a).unwrap_or(true) {
                            best = Some((o, area));
                        }
                    }
                    if let Some((o, _)) = best {
                        num_pos += 1;
                        cls.set(img, o.class, y, x, 1.0);
                        let [x1, y1, x2, y2] = o.bbox;
                        let ltrb = [px - x1, py - y1, x2 - px, y2 - py];
                        for (k, &d) in ltrb.iter().enumerate() {
                            reg.set(img, k, y, x, (d.max(1e-3) / stride as f32).ln());
                            w.set(img, k, y, x, 1.0);
                        }
                    }
                }
            }
        }
        out.push(LevelTargets { cls, reg, reg_weight: w, num_pos });
    }
    out
}

/// Detection losses: `(total, cls_loss, reg_loss, per-level gradients)`.
pub fn detection_loss(outputs: &[LevelOutput], targets: &[LevelTargets]) -> (f64, f64, f64, Vec<LevelOutput>) {
    let total_pos: usize = targets.iter().map(|t| t.num_pos).sum();
    let norm = total_pos.max(1) as f64;
    let mut cls_loss = 0.0;
    let mut reg_loss = 0.0;
    let mut grads = Vec::with_capacity(outputs.len());
    for (o, t) in outputs.iter().zip(targets) {
        let (lc, dc) = focal_loss_with_logits(&o.cls, &t.cls, 0.25, 2.0, norm);
        let (lr, dr) = smooth_l1(&o.reg, &t.reg, &t.reg_weight, norm);
        cls_loss += lc;
        reg_loss += lr;
        grads.push(LevelOutput { cls: dc, reg: dr });
    }
    (cls_loss + reg_loss, cls_loss, reg_loss, grads)
}

/// Decodes head outputs into per-image detections (with NMS).
pub fn decode_detections(outputs: &[LevelOutput], strides: &[usize], cfg: &DetHeadConfig) -> Vec<Vec<Detection>> {
    let n = outputs[0].cls.shape().n;
    let mut per_image: Vec<Vec<Detection>> = vec![Vec::new(); n];
    for (o, &stride) in outputs.iter().zip(strides) {
        let s = o.cls.shape();
        #[allow(clippy::needless_range_loop)] // `img` also indexes the level tensors below
        for img in 0..n {
            for y in 0..s.h {
                for x in 0..s.w {
                    for k in 0..cfg.num_classes {
                        let logit = o.cls.at(img, k, y, x);
                        let score = 1.0 / (1.0 + (-logit).exp());
                        if score < cfg.score_thresh {
                            continue;
                        }
                        let px = stride as f32 * (x as f32 + 0.5);
                        let py = stride as f32 * (y as f32 + 0.5);
                        let d = |c: usize| o.reg.at(img, c, y, x).clamp(-6.0, 6.0).exp() * stride as f32;
                        per_image[img].push(Detection {
                            bbox: [px - d(0), py - d(1), px + d(2), py + d(3)],
                            class: k,
                            score,
                        });
                    }
                }
            }
        }
    }
    per_image.into_iter().map(|dets| nms(dets, cfg.nms_iou, cfg.max_dets)).collect()
}

/// A complete detector: backbone + dense head.
#[derive(Debug)]
pub struct Detector {
    backbone: Box<dyn Backbone>,
    head: DetHead,
}

impl Detector {
    /// Builds a detector over `backbone`.
    pub fn new(backbone: Box<dyn Backbone>, cfg: DetHeadConfig, seed: u64) -> Self {
        let head = DetHead::new(cfg, &backbone.channels(), &backbone.strides(), seed);
        Self { backbone, head }
    }

    /// The backbone.
    pub fn backbone(&self) -> &dyn Backbone {
        self.backbone.as_ref()
    }

    /// The head.
    pub fn head(&self) -> &DetHead {
        &self.head
    }

    /// One training step: forward, loss, backward. Returns
    /// `(total, cls, reg)` losses. Gradients accumulate into parameters.
    pub fn train_step(&mut self, images: &Tensor, objects: &[Vec<BoxAnnotation>]) -> (f64, f64, f64) {
        let pyramid = self.backbone.forward_train(images);
        let outputs = self.head.forward(&pyramid, CacheMode::Full);
        let shapes: Vec<Shape> = outputs.iter().map(|o| o.cls.shape()).collect();
        let targets = assign_targets(objects, &shapes, self.head.strides(), self.head.cfg().num_classes);
        let (total, lc, lr, grads) = detection_loss(&outputs, &targets);
        let dpyr = self.head.backward(grads);
        self.backbone.backward(dpyr);
        (total, lc, lr)
    }

    /// Compiles the detector into its frozen inference form (backbone and
    /// head fused, weight panels packed). The original detector is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`revbifpn_nn::FreezeError`] if the backbone has no fused
    /// kernels or any head layer cannot be fused.
    pub fn freeze(&self) -> Result<crate::freeze::FrozenDetector, revbifpn_nn::FreezeError> {
        let mut frozen = crate::freeze::FrozenDetector {
            backbone: self.backbone.freeze()?,
            head: self.head.freeze()?,
        };
        frozen.compile();
        Ok(frozen)
    }

    /// Like [`Detector::freeze`], but lowers every fused conv to
    /// per-output-channel int8 weights before compiling, so inference runs
    /// the int8 GEMM/depthwise kernels. Decoding and NMS are unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`revbifpn_nn::FreezeError`] if the backbone has no fused
    /// kernels or any head layer cannot be fused.
    pub fn freeze_int8(&self) -> Result<crate::freeze::FrozenDetector, revbifpn_nn::FreezeError> {
        let mut frozen = crate::freeze::FrozenDetector {
            backbone: self.backbone.freeze()?,
            head: self.head.freeze()?,
        };
        frozen.quantize();
        frozen.compile();
        Ok(frozen)
    }

    /// Eval forward to the raw per-level head outputs, before decoding and
    /// NMS — the unfused counterpart of
    /// [`crate::freeze::FrozenDetector::forward_raw`], for parity checks.
    pub fn forward_raw_eval(&mut self, images: &Tensor) -> Vec<LevelOutput> {
        let pyramid = self.backbone.forward_eval(images);
        self.head.forward(&pyramid, CacheMode::None)
    }

    /// Inference: per-image detections.
    pub fn detect(&mut self, images: &Tensor) -> Vec<Vec<Detection>> {
        let outputs = self.forward_raw_eval(images);
        decode_detections(&outputs, self.head.strides(), self.head.cfg())
    }

    /// Visits all parameters (backbone + head).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.backbone.visit_params(f);
        self.head.visit_params(f);
    }

    /// Zeroes gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Clears caches.
    pub fn clear_cache(&mut self) {
        self.backbone.clear_cache();
        self.head.clear_cache();
    }

    /// Parameter count.
    pub fn param_count(&mut self) -> u64 {
        let mut t = 0;
        self.visit_params(&mut |p| t += p.numel() as u64);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::RevBackbone;
    use revbifpn::{RevBiFPN, RevBiFPNConfig};

    fn shapes_for(n: usize) -> Vec<Shape> {
        vec![Shape::new(n, 3, 16, 16), Shape::new(n, 3, 8, 8), Shape::new(n, 3, 4, 4)]
    }

    #[test]
    fn assignment_prefers_level_by_size() {
        // A small (6px) and a large (28px) object at 32px input with
        // strides [2, 4, 8]: extents 6 -> level 0 (range (0, 8]); 28 ->
        // level 2 (range (16, inf)).
        let objs = vec![vec![
            BoxAnnotation { bbox: [2.0, 2.0, 8.0, 8.0], class: 0 },
            BoxAnnotation { bbox: [2.0, 2.0, 30.0, 30.0], class: 1 },
        ]];
        let t = assign_targets(&objs, &shapes_for(1), &[2, 4, 8], 2);
        // Class 0 mass only on level 0; class 1 only on level 2.
        let mass = |lvl: usize, class: usize| -> f64 {
            let s = t[lvl].cls.shape();
            let mut m = 0.0;
            for y in 0..s.h {
                for x in 0..s.w {
                    m += t[lvl].cls.at(0, class, y, x) as f64;
                }
            }
            m
        };
        assert!(mass(0, 0) > 0.0 && mass(1, 0) == 0.0 && mass(2, 0) == 0.0);
        // The large object's edge regions (extent > 16) land on level 2;
        // its centre (extent ~14) may land on level 1 — but never level 0.
        assert!(mass(2, 1) > 0.0 && mass(0, 1) == 0.0);
    }

    #[test]
    fn reg_targets_roundtrip_through_decode() {
        // If the head outputs exactly the regression targets, decoding must
        // reproduce the ground-truth box.
        let objs = vec![vec![BoxAnnotation { bbox: [4.0, 6.0, 28.0, 26.0], class: 0 }]];
        let shapes = shapes_for(1);
        let strides = [2usize, 4, 8];
        let targets = assign_targets(&objs, &shapes, &strides, 1);
        let outputs: Vec<LevelOutput> = targets
            .iter()
            .map(|t| LevelOutput { cls: t.cls.map(|v| if v > 0.0 { 10.0 } else { -10.0 }), reg: t.reg.clone() })
            .collect();
        let cfg = DetHeadConfig::new(1);
        let dets = decode_detections(&outputs, &strides, &cfg);
        assert!(!dets[0].is_empty());
        let best = &dets[0][0];
        for (a, b) in best.bbox.iter().zip(&objs[0][0].bbox) {
            assert!((a - b).abs() < 0.5, "{:?} vs {:?}", best.bbox, objs[0][0].bbox);
        }
    }

    #[test]
    fn loss_decreases_for_better_predictions() {
        let objs = vec![vec![BoxAnnotation { bbox: [4.0, 4.0, 20.0, 20.0], class: 0 }]];
        let shapes = shapes_for(1);
        let strides = [2usize, 4, 8];
        let targets = assign_targets(&objs, &shapes, &strides, 1);
        let zero_out: Vec<LevelOutput> = targets
            .iter()
            .map(|t| LevelOutput { cls: Tensor::zeros(t.cls.shape()), reg: Tensor::zeros(t.reg.shape()) })
            .collect();
        let good_out: Vec<LevelOutput> = targets
            .iter()
            .map(|t| LevelOutput { cls: t.cls.map(|v| if v > 0.0 { 8.0 } else { -8.0 }), reg: t.reg.clone() })
            .collect();
        let (l0, ..) = detection_loss(&zero_out, &targets);
        let (l1, ..) = detection_loss(&good_out, &targets);
        assert!(l1 < l0 * 0.05, "good {l1} vs zero {l0}");
    }

    #[test]
    fn detector_train_step_produces_grads() {
        let backbone = RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(4)), true);
        let mut det = Detector::new(Box::new(backbone), DetHeadConfig::new(3), 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let images = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let objs = vec![
            vec![BoxAnnotation { bbox: [4.0, 4.0, 20.0, 20.0], class: 0 }],
            vec![BoxAnnotation { bbox: [10.0, 8.0, 28.0, 30.0], class: 2 }],
        ];
        det.zero_grads();
        let (total, lc, lr) = det.train_step(&images, &objs);
        assert!(total.is_finite() && lc > 0.0 && lr >= 0.0);
        let mut nonzero = 0;
        det.visit_params(&mut |p| {
            if p.grad.abs_max() > 0.0 {
                nonzero += 1;
            }
        });
        assert!(nonzero > 20, "only {nonzero} grads");
        det.clear_cache();
    }

    #[test]
    fn detect_runs_in_eval() {
        let backbone = RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(4)), true);
        let mut det = Detector::new(Box::new(backbone), DetHeadConfig::new(3), 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let images = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let dets = det.detect(&images);
        assert_eq!(dets.len(), 1);
    }

    #[test]
    fn frozen_detector_matches_eval_forward() {
        let backbone = RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(4)), true);
        let mut det = Detector::new(Box::new(backbone), DetHeadConfig::new(3), 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        det.visit_params(&mut |p| {
            if p.name == "bn.gamma" {
                p.value = Tensor::uniform(p.value.shape(), 0.5, 1.5, &mut rng);
            }
        });
        // Move BN running stats off their init so the affine fold is
        // non-trivial, then clear training caches.
        let objs = vec![vec![BoxAnnotation { bbox: [4.0, 4.0, 20.0, 20.0], class: 0 }]];
        for _ in 0..3 {
            let images = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
            let _ = det.train_step(&images, &objs);
            det.clear_cache();
        }
        det.zero_grads();

        let frozen = det.freeze().unwrap();
        assert!(frozen.packed_bytes() > 0);

        let images = Tensor::randn(Shape::new(2, 3, 32, 32), 1.0, &mut rng);
        let pyramid = det.backbone.forward_eval(&images);
        let want = det.head.forward(&pyramid, CacheMode::None);
        let got = frozen.forward_raw(&images);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            for (gt, wt) in [(&g.cls, &w.cls), (&g.reg, &w.reg)] {
                let tol = 1e-4 * (1.0 + wt.abs_max());
                assert!(gt.max_abs_diff(wt) < tol, "head output diff {}", gt.max_abs_diff(wt));
            }
        }
        // The full pipeline (decode + NMS) runs on the fused outputs too.
        let dets = frozen.detect(&images);
        assert_eq!(dets.len(), 2);
    }
}
