//! Per-pixel mask head: the repository's substitution for Mask R-CNN's
//! instance-mask branch (see DESIGN.md). A small conv tower on the finest
//! pyramid level predicts per-pixel class logits; instance masks are read
//! out inside each detected box. Mask AP is computed with the same COCO
//! machinery as box AP, with mask IoU as the overlap.

use crate::ap::{evaluate_ap_with, ApResult, AreaRanges};
use crate::backbone::Backbone;
use crate::head::{assign_targets, detection_loss, decode_detections, DetHead, DetHeadConfig};
use crate::nms::Detection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revbifpn_data::BoxAnnotation;
use revbifpn_nn::layers::{Conv2d, Relu, Upsample};
use revbifpn_nn::{CacheMode, Layer, Param, Sequential};
use revbifpn_tensor::{ConvSpec, ResizeMode, Shape, Tensor};

/// IoU of two binary masks (`[1, 1, h, w]`, nonzero = foreground).
pub fn mask_iou(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "mask shapes must match");
    let mut inter = 0.0f64;
    let mut uni = 0.0f64;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        let fa = x > 0.0;
        let fb = y > 0.0;
        if fa && fb {
            inter += 1.0;
        }
        if fa || fb {
            uni += 1.0;
        }
    }
    if uni == 0.0 {
        0.0
    } else {
        (inter / uni) as f32
    }
}

/// COCO-style AP with mask IoU as the overlap function.
pub fn evaluate_mask_ap(
    dets: &[Vec<Detection>],
    det_masks: &[Vec<Tensor>],
    gts: &[Vec<BoxAnnotation>],
    gt_masks: &[Vec<Tensor>],
    num_classes: usize,
    ranges: AreaRanges,
) -> ApResult {
    let iou_fn =
        move |img: usize, di: usize, gi: usize| mask_iou(&det_masks[img][di], &gt_masks[img][gi]);
    evaluate_ap_with(dets, gts, num_classes, ranges, &iou_fn)
}

/// Per-pixel semantic head on the finest pyramid level.
#[derive(Debug)]
pub struct SegHead {
    tower: Sequential,
    stride: usize,
}

impl SegHead {
    /// Builds the head: lateral + tower + per-pixel logits for
    /// `num_classes + 1` channels (class 0 = background), upsampled to the
    /// input resolution.
    pub fn new(c_in: usize, stride: usize, num_classes: usize, width: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tower = Sequential::new();
        tower.add(Box::new(Conv2d::pointwise(c_in, width, true, &mut rng)));
        tower.add(Box::new(Relu::new()));
        tower.add(Box::new(Conv2d::new(width, width, ConvSpec::kxk(3, 1), true, &mut rng)));
        tower.add(Box::new(Relu::new()));
        tower.add(Box::new(Conv2d::new(width, num_classes + 1, ConvSpec::kxk(3, 1), true, &mut rng)));
        if stride > 1 {
            tower.add(Box::new(Upsample::new(stride, ResizeMode::Bilinear)));
        }
        let _ = num_classes;
        Self { tower, stride }
    }

    /// Forward: finest pyramid level to `[n, classes+1, r, r]` logits.
    pub fn forward(&mut self, p0: &Tensor, mode: CacheMode) -> Tensor {
        self.tower.forward(p0, mode)
    }

    /// Backward to the pyramid level.
    pub fn backward(&mut self, dlogits: &Tensor) -> Tensor {
        self.tower.backward(dlogits)
    }

    /// The upsampling stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Visits parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tower.visit_params(f);
    }

    /// Clears caches.
    pub fn clear_cache(&mut self) {
        self.tower.clear_cache();
    }
}

/// Rasterizes ground truth into a per-pixel class map `[n, r, r]`
/// (0 = background, `class + 1` otherwise; later objects overwrite earlier).
pub fn rasterize_targets(masks: &[Vec<Tensor>], objects: &[Vec<BoxAnnotation>], res: usize) -> Vec<Vec<u8>> {
    masks
        .iter()
        .zip(objects)
        .map(|(ms, objs)| {
            let mut plane = vec![0u8; res * res];
            for (m, o) in ms.iter().zip(objs) {
                for y in 0..res {
                    for x in 0..res {
                        if m.at(0, 0, y, x) > 0.0 {
                            plane[y * res + x] = o.class as u8 + 1;
                        }
                    }
                }
            }
            plane
        })
        .collect()
}

/// Per-pixel softmax cross-entropy. Returns `(mean_loss, dlogits)`.
pub fn pixel_cross_entropy(logits: &Tensor, targets: &[Vec<u8>]) -> (f64, Tensor) {
    let s = logits.shape();
    assert_eq!(targets.len(), s.n, "batch mismatch");
    let k = s.c;
    let hw = s.hw();
    let mut loss = 0.0f64;
    let mut d = Tensor::zeros(s);
    let inv = 1.0 / (s.n * hw) as f32;
    for (n, target) in targets.iter().enumerate() {
        assert_eq!(target.len(), hw, "target raster size mismatch");
        for (i, &t_raw) in target.iter().enumerate() {
            // Softmax over channels at pixel i.
            let mut maxv = f32::NEG_INFINITY;
            for c in 0..k {
                maxv = maxv.max(logits.data()[(n * k + c) * hw + i]);
            }
            let mut z = 0.0f32;
            for c in 0..k {
                z += (logits.data()[(n * k + c) * hw + i] - maxv).exp();
            }
            let t = t_raw as usize;
            let logit_t = logits.data()[(n * k + t) * hw + i];
            loss += -((logit_t - maxv) as f64 - (z as f64).ln());
            for c in 0..k {
                let p = (logits.data()[(n * k + c) * hw + i] - maxv).exp() / z;
                let delta = if c == t { 1.0 } else { 0.0 };
                d.data_mut()[(n * k + c) * hw + i] = (p - delta) * inv;
            }
        }
    }
    (loss / (s.n * hw) as f64, d)
}

/// Extracts a binary instance mask for a detection from the per-pixel class
/// prediction: pixels inside the box whose argmax channel equals
/// `class + 1`.
pub fn instance_mask(seg_logits: &Tensor, img: usize, det: &Detection) -> Tensor {
    let s = seg_logits.shape();
    let mut mask = Tensor::zeros(Shape::new(1, 1, s.h, s.w));
    let x1 = det.bbox[0].max(0.0) as usize;
    let y1 = det.bbox[1].max(0.0) as usize;
    let x2 = (det.bbox[2].min(s.w as f32 - 1.0)) as usize;
    let y2 = (det.bbox[3].min(s.h as f32 - 1.0)) as usize;
    for y in y1..=y2.min(s.h - 1) {
        for x in x1..=x2.min(s.w - 1) {
            let mut best_c = 0;
            let mut best_v = f32::NEG_INFINITY;
            for c in 0..s.c {
                let v = seg_logits.at(img, c, y, x);
                if v > best_v {
                    best_v = v;
                    best_c = c;
                }
            }
            if best_c == det.class + 1 {
                mask.set(0, 0, y, x, 1.0);
            }
        }
    }
    mask
}

/// Detector with an additional mask branch (the Mask R-CNN substitute).
#[derive(Debug)]
pub struct MaskDetector {
    backbone: Box<dyn Backbone>,
    det_head: DetHead,
    seg_head: SegHead,
    resolution: usize,
}

impl MaskDetector {
    /// Builds the joint model.
    pub fn new(backbone: Box<dyn Backbone>, cfg: DetHeadConfig, resolution: usize, seed: u64) -> Self {
        let det_head = DetHead::new(cfg, &backbone.channels(), &backbone.strides(), seed);
        let seg_head = SegHead::new(backbone.channels()[0], backbone.strides()[0], cfg.num_classes, 32, seed ^ 0x5E6);
        Self { backbone, det_head, seg_head, resolution }
    }

    /// One joint training step. Returns `(det_loss, seg_loss)`.
    pub fn train_step(
        &mut self,
        images: &Tensor,
        objects: &[Vec<BoxAnnotation>],
        masks: &[Vec<Tensor>],
    ) -> (f64, f64) {
        let pyramid = self.backbone.forward_train(images);
        let outputs = self.det_head.forward(&pyramid, CacheMode::Full);
        let shapes: Vec<Shape> = outputs.iter().map(|o| o.cls.shape()).collect();
        let targets = assign_targets(objects, &shapes, self.det_head.strides(), self.det_head.cfg().num_classes);
        let (det_loss, _, _, det_grads) = detection_loss(&outputs, &targets);
        let mut dpyr = self.det_head.backward(det_grads);

        let seg_logits = self.seg_head.forward(&pyramid[0], CacheMode::Full);
        let raster = rasterize_targets(masks, objects, self.resolution);
        let (seg_loss, dseg) = pixel_cross_entropy(&seg_logits, &raster);
        let dp0 = self.seg_head.backward(&dseg);
        dpyr[0].add_assign(&dp0);

        self.backbone.backward(dpyr);
        (det_loss, seg_loss)
    }

    /// Inference: per-image detections and their instance masks.
    pub fn detect_with_masks(&mut self, images: &Tensor) -> (Vec<Vec<Detection>>, Vec<Vec<Tensor>>) {
        let pyramid = self.backbone.forward_eval(images);
        let outputs = self.det_head.forward(&pyramid, CacheMode::None);
        let dets = decode_detections(&outputs, self.det_head.strides(), self.det_head.cfg());
        let seg_logits = self.seg_head.forward(&pyramid[0], CacheMode::None);
        let masks = dets
            .iter()
            .enumerate()
            .map(|(img, ds)| ds.iter().map(|d| instance_mask(&seg_logits, img, d)).collect())
            .collect();
        (dets, masks)
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.backbone.visit_params(f);
        self.det_head.visit_params(f);
        self.seg_head.visit_params(f);
    }

    /// Zeroes gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Clears caches.
    pub fn clear_cache(&mut self) {
        self.backbone.clear_cache();
        self.det_head.clear_cache();
        self.seg_head.clear_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::RevBackbone;
    use revbifpn::{RevBiFPN, RevBiFPNConfig};
    use revbifpn_data::{SynthDet, SynthDetConfig};

    #[test]
    fn mask_iou_basics() {
        let mut a = Tensor::zeros(Shape::new(1, 1, 4, 4));
        let mut b = Tensor::zeros(Shape::new(1, 1, 4, 4));
        for i in 0..8 {
            a.data_mut()[i] = 1.0;
        }
        for i in 4..12 {
            b.data_mut()[i] = 1.0;
        }
        assert!((mask_iou(&a, &b) - 4.0 / 12.0).abs() < 1e-6);
        assert_eq!(mask_iou(&a, &a), 1.0);
    }

    #[test]
    fn pixel_ce_gradient_matches_finite_diff() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut logits = Tensor::randn(Shape::new(1, 3, 2, 2), 1.0, &mut rng);
        let targets = vec![vec![0u8, 1, 2, 1]];
        let (_, d) = pixel_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..logits.shape().numel() {
            let orig = logits.data()[i];
            logits.data_mut()[i] = orig + eps;
            let (lp, _) = pixel_cross_entropy(&logits, &targets);
            logits.data_mut()[i] = orig - eps;
            let (lm, _) = pixel_cross_entropy(&logits, &targets);
            logits.data_mut()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((num - d.data()[i]).abs() < 1e-3, "coord {i}");
        }
    }

    #[test]
    fn rasterize_marks_classes() {
        let ds = SynthDet::new(SynthDetConfig::new(16), 0);
        let s = ds.sample(0);
        let raster = rasterize_targets(&[s.masks.clone()], &[s.objects.clone()], 16);
        let fg = raster[0].iter().filter(|&&v| v > 0).count();
        assert!(fg > 0);
    }

    #[test]
    fn instance_mask_respects_box() {
        let mut logits = Tensor::zeros(Shape::new(1, 3, 8, 8));
        // Class 1 (channel 2) dominant everywhere.
        for i in 0..64 {
            logits.data_mut()[2 * 64 + i] = 5.0;
        }
        let det = Detection { bbox: [2.0, 2.0, 5.0, 5.0], class: 1, score: 0.9 };
        let m = instance_mask(&logits, 0, &det);
        assert!(m.at(0, 0, 3, 3) > 0.0);
        assert_eq!(m.at(0, 0, 0, 0), 0.0);
        assert_eq!(m.at(0, 0, 7, 7), 0.0);
    }

    #[test]
    fn mask_detector_trains_and_infers() {
        let backbone = RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(4)), true);
        let mut md = MaskDetector::new(Box::new(backbone), DetHeadConfig::new(3), 32, 0);
        let ds = SynthDet::new(SynthDetConfig::new(32), 1);
        let s0 = ds.sample(0);
        let s1 = ds.sample(1);
        let images = Tensor::concat_channels(&[&s0.image]); // single image batch
        md.zero_grads();
        let (dl, sl) = md.train_step(&images, &[s0.objects.clone()], &[s0.masks.clone()]);
        assert!(dl.is_finite() && sl.is_finite() && sl > 0.0);
        md.clear_cache();
        let (dets, masks) = md.detect_with_masks(&s1.image);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].len(), masks[0].len());
    }
}
