//! # revbifpn-detect
//!
//! Detection and instance segmentation on feature pyramids — the Table 9/10
//! experiment stack:
//!
//! * [`Backbone`] — common interface over RevBiFPN (reversible or
//!   conventional), HRNet, and ResNet-FPN;
//! * [`Detector`] / [`DetHead`] — an FCOS-style dense detection head (the
//!   Faster R-CNN substitution, see DESIGN.md), with target assignment,
//!   losses, decoding and [`nms`];
//! * [`MaskDetector`] / [`SegHead`] — per-pixel mask branch (the Mask R-CNN
//!   substitution);
//! * [`evaluate_box_ap`] / [`evaluate_mask_ap`] — full COCO-style AP
//!   (AP@[.5:.95], AP50, AP75, APs/m/l).

#![warn(missing_docs)]

mod ap;
pub mod artifact;
mod backbone;
pub mod freeze;
mod head;
mod nms;
mod seghead;

pub use ap::{evaluate_ap_with, evaluate_box_ap, ApResult, AreaRanges};
pub use freeze::{FrozenDetHead, FrozenDetector};
pub use backbone::{Backbone, FpnBackbone, HrBackbone, RevBackbone};
pub use head::{
    assign_targets, decode_detections, detection_loss, DetHead, DetHeadConfig, Detector, LevelOutput,
    LevelTargets,
};
pub use nms::{nms, Detection};
pub use seghead::{
    evaluate_mask_ap, instance_mask, mask_iou, pixel_cross_entropy, rasterize_targets, MaskDetector, SegHead,
};
