//! `RBFNFRZ1` serialization for frozen detectors.
//!
//! Mirrors `revbifpn::artifact` for the detection stack: the shared
//! backbone codec comes from the core crate, and this module adds the
//! [`DetHeadConfig`] + per-level head layer codec plus whole-file
//! [`save_detector_artifact`] / [`load_detector_artifact`] entry points.
//! Detector artifacts carry [`FLAG_DETECTOR`] instead of the classifier
//! flag, so the two model kinds can never be confused at load time.

use crate::freeze::{FrozenDetHead, FrozenDetector};
use crate::head::DetHeadConfig;
use revbifpn::artifact::{decode_backbone, encode_backbone, FLAG_INT8};
use revbifpn_nn::artifact::{
    decode_layer, encode_layer, ArtifactReader, ArtifactWriter, TreeReader,
};
use revbifpn_nn::freeze::FrozenLayer;
use std::io;
use std::path::Path;

/// Artifact flag bit: the payload is a detector (backbone + FCOS-style head).
pub const FLAG_DETECTOR: u32 = 4;

fn inv(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_layers(w: &mut ArtifactWriter, layers: &[FrozenLayer]) -> io::Result<()> {
    w.put_u32(layers.len() as u32);
    for l in layers {
        encode_layer(w, l)?;
    }
    Ok(())
}

fn get_layers(r: &mut TreeReader<'_>) -> io::Result<Vec<FrozenLayer>> {
    let n = r.get_u32()? as usize;
    if n > 1 << 16 {
        return Err(inv("unreasonable layer count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_layer(r)?);
    }
    Ok(out)
}

fn encode_head_config(w: &mut ArtifactWriter, cfg: &DetHeadConfig) {
    w.put_u64(cfg.num_classes as u64);
    w.put_u64(cfg.head_channels as u64);
    w.put_u64(cfg.tower_depth as u64);
    w.put_f32(cfg.score_thresh);
    w.put_f32(cfg.nms_iou);
    w.put_u64(cfg.max_dets as u64);
}

fn decode_head_config(r: &mut TreeReader<'_>) -> io::Result<DetHeadConfig> {
    let get_usize = |r: &mut TreeReader<'_>| -> io::Result<usize> {
        usize::try_from(r.get_u64()?).map_err(|_| inv("usize overflow in head config"))
    };
    let num_classes = get_usize(r)?;
    let head_channels = get_usize(r)?;
    let tower_depth = get_usize(r)?;
    let score_thresh = r.get_f32()?;
    let nms_iou = r.get_f32()?;
    let max_dets = get_usize(r)?;
    if num_classes == 0 || head_channels == 0 {
        return Err(inv("degenerate detection head config"));
    }
    Ok(DetHeadConfig { num_classes, head_channels, tower_depth, score_thresh, nms_iou, max_dets })
}

/// Serializes a compiled [`FrozenDetector`] into `w`.
///
/// # Errors
///
/// Fails on a model containing an uncompiled conv.
pub fn encode_detector(w: &mut ArtifactWriter, model: &FrozenDetector) -> io::Result<()> {
    encode_backbone(w, &model.backbone)?;
    encode_head_config(w, &model.head.cfg);
    w.put_u32(model.head.strides.len() as u32);
    for &s in &model.head.strides {
        w.put_u64(s as u64);
    }
    put_layers(w, &model.head.laterals)?;
    put_layers(w, &model.head.towers)?;
    put_layers(w, &model.head.cls)?;
    put_layers(w, &model.head.reg)
}

/// Deserializes a [`FrozenDetector`] written by [`encode_detector`].
pub fn decode_detector(r: &mut TreeReader<'_>) -> io::Result<FrozenDetector> {
    let backbone = decode_backbone(r)?;
    let cfg = decode_head_config(r)?;
    let n_levels = r.get_u32()? as usize;
    if n_levels > 1 << 8 {
        return Err(inv("unreasonable pyramid level count"));
    }
    let mut strides = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        strides
            .push(usize::try_from(r.get_u64()?).map_err(|_| inv("stride overflow"))?);
    }
    let laterals = get_layers(r)?;
    let towers = get_layers(r)?;
    let cls = get_layers(r)?;
    let reg = get_layers(r)?;
    for (name, v) in
        [("laterals", &laterals), ("towers", &towers), ("cls", &cls), ("reg", &reg)]
    {
        if v.len() != n_levels {
            return Err(inv(match name {
                "laterals" => "lateral count disagrees with pyramid levels",
                "towers" => "tower count disagrees with pyramid levels",
                "cls" => "cls-branch count disagrees with pyramid levels",
                _ => "reg-branch count disagrees with pyramid levels",
            }));
        }
    }
    Ok(FrozenDetector {
        backbone,
        head: FrozenDetHead { cfg, strides, laterals, towers, cls, reg },
    })
}

/// Computes the artifact flags for `model` (precision tier + kind).
pub fn detector_flags(model: &FrozenDetector) -> u32 {
    FLAG_DETECTOR | if model.quant_packed_bytes() > 0 { FLAG_INT8 } else { 0 }
}

/// Serializes `model` and writes it to `path` atomically and durably.
///
/// # Errors
///
/// Propagates serialization and I/O errors; unless the failure happened
/// after the rename, an existing artifact at `path` is left untouched.
pub fn save_detector_artifact(path: &Path, model: &FrozenDetector) -> io::Result<()> {
    let mut w = ArtifactWriter::new(detector_flags(model));
    encode_detector(&mut w, model)?;
    w.save(path)
}

/// Opens, validates, and decodes a detector artifact (mmap-preferring with
/// copy fallback, like `revbifpn::artifact::load_classifier_artifact`).
/// Section payload CRCs are *not* verified here — run
/// [`ArtifactReader::verify_sections`] before trusting unknown provenance.
///
/// # Errors
///
/// `InvalidData` for structural, CRC, layout, or model-kind mismatches;
/// I/O errors from the filesystem.
pub fn load_detector_artifact(
    path: &Path,
    prefer_map: bool,
) -> io::Result<(FrozenDetector, ArtifactReader)> {
    let reader = ArtifactReader::open(path, prefer_map)?;
    if reader.flags() & FLAG_DETECTOR == 0 {
        return Err(inv("artifact does not contain a detector"));
    }
    let mut cur = reader.cursor();
    let model = decode_detector(&mut cur)?;
    if cur.remaining() != 0 {
        return Err(inv("trailing bytes after detector payload"));
    }
    Ok((model, reader))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Detector, RevBackbone};
    use revbifpn_data::BoxAnnotation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn::{RevBiFPN, RevBiFPNConfig};
    use revbifpn_tensor::{Shape, Tensor};
    use std::fs;

    #[test]
    fn detector_roundtrips_bitwise() {
        let dir =
            std::env::temp_dir().join(format!("revbifpn_det_art_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let backbone = RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(4)), true);
        let mut det = Detector::new(Box::new(backbone), DetHeadConfig::new(3), 7);
        let mut rng = StdRng::seed_from_u64(9);
        // Move BN running stats off their init so the frozen form is
        // non-trivial, then clear training caches.
        let objs = vec![vec![BoxAnnotation { bbox: [4.0, 4.0, 20.0, 20.0], class: 0 }]];
        let images = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let _ = det.train_step(&images, &objs);
        det.clear_cache();

        let detector = det.freeze().unwrap();
        let want = detector.forward_raw(&images);

        let path = dir.join("det.frz");
        save_detector_artifact(&path, &detector).unwrap();
        let (loaded, reader) = load_detector_artifact(&path, true).unwrap();
        reader.verify_sections().unwrap();
        assert_eq!(reader.flags() & FLAG_DETECTOR, FLAG_DETECTOR);
        let got = loaded.forward_raw(&images);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.cls, w.cls, "cls logits must be bitwise equal");
            assert_eq!(g.reg, w.reg, "reg outputs must be bitwise equal");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
