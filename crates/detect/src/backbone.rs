//! A common interface over the pyramid-producing backbones so the detection
//! head can be trained on RevBiFPN (reversibly or conventionally), HRNet,
//! and ResNet-FPN interchangeably — the Table 9/10 comparison setup.

use revbifpn::RevBiFPN;
use revbifpn_baselines::{HrNet, ResNetFpn};
use revbifpn_nn::{CacheMode, Param};
use revbifpn_tensor::Tensor;

/// A backbone producing a multi-level feature pyramid.
pub trait Backbone: std::fmt::Debug {
    /// Training forward (caches per its training regime).
    fn forward_train(&mut self, x: &Tensor) -> Vec<Tensor>;

    /// Inference forward.
    fn forward_eval(&mut self, x: &Tensor) -> Vec<Tensor>;

    /// Backward from pyramid gradients (after `forward_train`).
    fn backward(&mut self, dpyramid: Vec<Tensor>);

    /// Per-level channel counts.
    fn channels(&self) -> Vec<usize>;

    /// Per-level strides w.r.t. the input image.
    fn strides(&self) -> Vec<usize>;

    /// Visits all parameters.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Clears caches.
    fn clear_cache(&mut self);

    /// Human-readable name.
    fn name(&self) -> String;

    /// Inference-only frozen form of the wrapped pyramid network (see
    /// [`revbifpn::FrozenBackbone`]). The result is *uncompiled*. Backbones
    /// without fused kernels return [`FreezeError::Unsupported`].
    fn freeze(&self) -> Result<revbifpn::FrozenBackbone, revbifpn_nn::FreezeError> {
        Err(revbifpn_nn::FreezeError::unsupported("detection backbone", self.name()))
    }
}

/// RevBiFPN backbone wrapper; `reversible` selects the training regime.
#[derive(Debug)]
pub struct RevBackbone {
    net: RevBiFPN,
    reversible: bool,
    saved: Option<Vec<Tensor>>,
}

impl RevBackbone {
    /// Wraps a RevBiFPN backbone.
    pub fn new(net: RevBiFPN, reversible: bool) -> Self {
        Self { net, reversible, saved: None }
    }

    /// Immutable access to the wrapped network.
    pub fn net(&self) -> &RevBiFPN {
        &self.net
    }
}

impl Backbone for RevBackbone {
    fn forward_train(&mut self, x: &Tensor) -> Vec<Tensor> {
        let mode = if self.reversible { CacheMode::Stats } else { CacheMode::Full };
        let pyr = self.net.forward(x, mode);
        if self.reversible {
            self.saved = Some(pyr.clone());
        }
        pyr
    }

    fn forward_eval(&mut self, x: &Tensor) -> Vec<Tensor> {
        self.net.forward(x, CacheMode::None)
    }

    fn backward(&mut self, dpyramid: Vec<Tensor>) {
        if self.reversible {
            let pyr = self.saved.take().expect("reversible backward needs saved pyramid");
            let _ = self.net.backward_rev(&pyr, dpyramid);
        } else {
            let _ = self.net.backward_cached(dpyramid);
        }
    }

    fn channels(&self) -> Vec<usize> {
        self.net.cfg().channels.clone()
    }

    fn strides(&self) -> Vec<usize> {
        let b = self.net.cfg().stem_block;
        (0..self.net.cfg().num_streams()).map(|i| b << i).collect()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f);
    }

    fn clear_cache(&mut self) {
        self.net.clear_cache();
        self.saved = None;
    }

    fn name(&self) -> String {
        format!("{}{}", self.net.cfg().name, if self.reversible { " (rev)" } else { " (conv)" })
    }

    fn freeze(&self) -> Result<revbifpn::FrozenBackbone, revbifpn_nn::FreezeError> {
        self.net.freeze()
    }
}

/// HRNet backbone wrapper (always conventional).
#[derive(Debug)]
pub struct HrBackbone {
    net: HrNet,
}

impl HrBackbone {
    /// Wraps an HRNet.
    pub fn new(net: HrNet) -> Self {
        Self { net }
    }
}

impl Backbone for HrBackbone {
    fn forward_train(&mut self, x: &Tensor) -> Vec<Tensor> {
        self.net.forward(x, CacheMode::Full)
    }

    fn forward_eval(&mut self, x: &Tensor) -> Vec<Tensor> {
        self.net.forward(x, CacheMode::None)
    }

    fn backward(&mut self, dpyramid: Vec<Tensor>) {
        let _ = self.net.backward(dpyramid);
    }

    fn channels(&self) -> Vec<usize> {
        (0..self.net.cfg().num_streams).map(|i| self.net.cfg().stream_channels(i)).collect()
    }

    fn strides(&self) -> Vec<usize> {
        (0..self.net.cfg().num_streams).map(|i| 4 << i).collect()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f);
    }

    fn clear_cache(&mut self) {
        self.net.clear_cache();
    }

    fn name(&self) -> String {
        self.net.cfg().name.clone()
    }
}

/// ResNet-FPN backbone wrapper (always conventional). Backward through the
/// FPN top-down path is not wired for the miniature experiments, so this
/// wrapper is evaluation-only on the gradient side: `backward` panics.
#[derive(Debug)]
pub struct FpnBackbone {
    net: ResNetFpn,
}

impl FpnBackbone {
    /// Wraps a ResNet-FPN.
    pub fn new(net: ResNetFpn) -> Self {
        Self { net }
    }
}

impl Backbone for FpnBackbone {
    fn forward_train(&mut self, x: &Tensor) -> Vec<Tensor> {
        self.net.forward(x, CacheMode::Full)
    }

    fn forward_eval(&mut self, x: &Tensor) -> Vec<Tensor> {
        self.net.forward(x, CacheMode::None)
    }

    fn backward(&mut self, _dpyramid: Vec<Tensor>) {
        unimplemented!("FpnBackbone is used for analytic comparisons and head-only fine-tuning")
    }

    fn channels(&self) -> Vec<usize> {
        vec![self.net.cfg().fpn_channels; 4]
    }

    fn strides(&self) -> Vec<usize> {
        (0..4).map(|i| 4 << i).collect()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f);
    }

    fn clear_cache(&mut self) {
        self.net.clear_cache();
    }

    fn name(&self) -> String {
        self.net.cfg().name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use revbifpn::RevBiFPNConfig;
    use revbifpn_baselines::{HrNetConfig, ResNetFpnConfig};
    use revbifpn_tensor::Shape;

    #[test]
    fn rev_backbone_strides_and_channels() {
        let b = RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(4)), true);
        assert_eq!(b.strides(), vec![2, 4, 8]);
        assert_eq!(b.channels(), vec![16, 24, 32]);
    }

    #[test]
    fn all_backbones_produce_pyramids() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let mut backs: Vec<Box<dyn Backbone>> = vec![
            Box::new(RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(4)), true)),
            Box::new(HrBackbone::new(HrNet::new(HrNetConfig::micro()))),
            Box::new(FpnBackbone::new(ResNetFpn::new(ResNetFpnConfig::micro()))),
        ];
        for b in &mut backs {
            let pyr = b.forward_eval(&x);
            assert_eq!(pyr.len(), b.channels().len(), "{}", b.name());
            for (p, (c, s)) in pyr.iter().zip(b.channels().iter().zip(b.strides())) {
                assert_eq!(p.shape().c, *c);
                assert_eq!(p.shape().h, 32 / s);
            }
        }
    }

    #[test]
    fn rev_backbone_train_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(Shape::new(1, 3, 32, 32), 1.0, &mut rng);
        let mut b = RevBackbone::new(RevBiFPN::new(RevBiFPNConfig::tiny(4)), true);
        let pyr = b.forward_train(&x);
        let d: Vec<Tensor> = pyr.iter().map(|p| Tensor::ones(p.shape())).collect();
        b.backward(d);
        let mut nonzero = 0;
        b.visit_params(&mut |p| {
            if p.grad.abs_max() > 0.0 {
                nonzero += 1;
            }
        });
        assert!(nonzero > 10);
        b.clear_cache();
    }
}
