//! COCO-style average precision: AP@[.5:.95], AP50, AP75, and the
//! size-stratified APs/APm/APl, following the COCO evaluation protocol
//! (greedy score-ordered matching, ignored ground truths outside the area
//! bucket, 101-point interpolated precision).

use crate::nms::Detection;
use revbifpn_data::{iou, BoxAnnotation};

/// Size-bucket thresholds, in pixels^2 at the working resolution.
///
/// COCO uses 32^2 / 96^2 at ~800px inputs; scale proportionally for small
/// synthetic images via [`AreaRanges::scaled_to`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaRanges {
    /// Upper bound of "small".
    pub small_max: f32,
    /// Upper bound of "medium".
    pub medium_max: f32,
}

impl AreaRanges {
    /// The COCO defaults (for ~800px inputs).
    pub fn coco() -> Self {
        Self { small_max: 32.0 * 32.0, medium_max: 96.0 * 96.0 }
    }

    /// COCO buckets rescaled to a `res`-pixel working resolution.
    pub fn scaled_to(res: usize) -> Self {
        let k = res as f32 / 800.0;
        Self { small_max: (32.0 * k).powi(2), medium_max: (96.0 * k).powi(2) }
    }

    fn bucket(&self, area: f32) -> usize {
        if area < self.small_max {
            0
        } else if area < self.medium_max {
            1
        } else {
            2
        }
    }
}

/// Full AP summary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ApResult {
    /// AP averaged over IoU 0.5:0.05:0.95 (the COCO "AP").
    pub ap: f64,
    /// AP at IoU 0.5.
    pub ap50: f64,
    /// AP at IoU 0.75.
    pub ap75: f64,
    /// AP over small objects.
    pub ap_small: f64,
    /// AP over medium objects.
    pub ap_medium: f64,
    /// AP over large objects.
    pub ap_large: f64,
}

struct FlatDet {
    img: usize,
    idx: usize,
    score: f32,
    class: usize,
    area: f32,
}

/// AP for one class at one IoU threshold under one area filter.
///
/// `bucket = None` evaluates all sizes. `iou_fn(img, det_idx, gt_idx)`
/// supplies the overlap (box IoU or mask IoU).
#[allow(clippy::too_many_arguments)]
fn ap_single(
    dets: &[FlatDet],
    gts: &[Vec<BoxAnnotation>],
    class: usize,
    thresh: f32,
    bucket: Option<usize>,
    ranges: &AreaRanges,
    iou_fn: &dyn Fn(usize, usize, usize) -> f32,
) -> Option<f64> {
    // Active / ignored GT per image for this class+bucket.
    let mut gt_active: Vec<Vec<usize>> = Vec::with_capacity(gts.len());
    let mut n_active = 0usize;
    for img_gts in gts {
        let mut act = Vec::new();
        for (gi, g) in img_gts.iter().enumerate() {
            if g.class != class {
                continue;
            }
            let in_bucket = bucket.map(|b| ranges.bucket(g.area()) == b).unwrap_or(true);
            if in_bucket {
                act.push(gi);
                n_active += 1;
            }
        }
        gt_active.push(act);
    }
    if n_active == 0 {
        return None;
    }
    let mut matched: Vec<Vec<bool>> = gts.iter().map(|g| vec![false; g.len()]).collect();
    let mut tps = Vec::new();
    let mut fps = Vec::new();
    for d in dets.iter().filter(|d| d.class == class) {
        // Best unmatched GT of this class in the image.
        let mut best_iou = thresh;
        let mut best: Option<usize> = None;
        for (gi, g) in gts[d.img].iter().enumerate() {
            if g.class != class || matched[d.img][gi] {
                continue;
            }
            let ov = iou_fn(d.img, d.idx, gi);
            if ov >= best_iou {
                best_iou = ov;
                best = Some(gi);
            }
        }
        match best {
            Some(gi) => {
                matched[d.img][gi] = true;
                if gt_active[d.img].contains(&gi) {
                    tps.push(true);
                    fps.push(false);
                } else {
                    // Matched an out-of-bucket GT: ignore the detection.
                }
            }
            None => {
                // Unmatched: FP unless the detection itself is outside the
                // bucket (COCO ignores those).
                let det_in_bucket = bucket.map(|b| ranges.bucket(d.area) == b).unwrap_or(true);
                if det_in_bucket {
                    tps.push(false);
                    fps.push(true);
                }
            }
        }
    }
    // Precision/recall curve and 101-point interpolation.
    let mut tp_cum = 0.0f64;
    let mut fp_cum = 0.0f64;
    let mut recalls = Vec::with_capacity(tps.len());
    let mut precisions = Vec::with_capacity(tps.len());
    for i in 0..tps.len() {
        if tps[i] {
            tp_cum += 1.0;
        }
        if fps[i] {
            fp_cum += 1.0;
        }
        recalls.push(tp_cum / n_active as f64);
        precisions.push(tp_cum / (tp_cum + fp_cum));
    }
    // Make precision monotone non-increasing from the right.
    for i in (0..precisions.len().saturating_sub(1)).rev() {
        precisions[i] = precisions[i].max(precisions[i + 1]);
    }
    let mut ap = 0.0f64;
    for k in 0..=100 {
        let r = k as f64 / 100.0;
        let p = recalls
            .iter()
            .position(|&rc| rc >= r)
            .map(|i| precisions[i])
            .unwrap_or(0.0);
        ap += p / 101.0;
    }
    Some(ap)
}

fn mean(vals: impl Iterator<Item = Option<f64>>) -> f64 {
    let v: Vec<f64> = vals.flatten().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Generic COCO-style evaluation with a caller-supplied IoU function.
pub fn evaluate_ap_with(
    dets: &[Vec<Detection>],
    gts: &[Vec<BoxAnnotation>],
    num_classes: usize,
    ranges: AreaRanges,
    iou_fn: &dyn Fn(usize, usize, usize) -> f32,
) -> ApResult {
    assert_eq!(dets.len(), gts.len(), "detection/ground-truth image counts differ");
    // Flatten and sort detections by score (COCO matches in global score order
    // per class; we sort globally and filter by class inside ap_single).
    let mut flat: Vec<FlatDet> = Vec::new();
    for (img, ds) in dets.iter().enumerate() {
        for (idx, d) in ds.iter().enumerate() {
            flat.push(FlatDet { img, idx, score: d.score, class: d.class, area: d.area() });
        }
    }
    flat.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));

    let thresholds: Vec<f32> = (0..10).map(|i| 0.5 + 0.05 * i as f32).collect();
    let ap = mean(thresholds.iter().flat_map(|&t| {
        (0..num_classes).map(move |c| (t, c)).collect::<Vec<_>>()
    }).map(|(t, c)| ap_single(&flat, gts, c, t, None, &ranges, iou_fn)));
    let ap50 = mean((0..num_classes).map(|c| ap_single(&flat, gts, c, 0.5, None, &ranges, iou_fn)));
    let ap75 = mean((0..num_classes).map(|c| ap_single(&flat, gts, c, 0.75, None, &ranges, iou_fn)));
    let bucket_ap = |b: usize| {
        mean(thresholds.iter().flat_map(|&t| {
            (0..num_classes).map(move |c| (t, c)).collect::<Vec<_>>()
        }).map(|(t, c)| ap_single(&flat, gts, c, t, Some(b), &ranges, iou_fn)))
    };
    ApResult {
        ap,
        ap50,
        ap75,
        ap_small: bucket_ap(0),
        ap_medium: bucket_ap(1),
        ap_large: bucket_ap(2),
    }
}

/// Standard box-IoU evaluation.
pub fn evaluate_box_ap(
    dets: &[Vec<Detection>],
    gts: &[Vec<BoxAnnotation>],
    num_classes: usize,
    ranges: AreaRanges,
) -> ApResult {
    let iou_fn = move |img: usize, di: usize, gi: usize| iou(&dets[img][di].bbox, &gts[img][gi].bbox);
    evaluate_ap_with(dets, gts, num_classes, ranges, &iou_fn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(b: [f32; 4], c: usize) -> BoxAnnotation {
        BoxAnnotation { bbox: b, class: c }
    }

    fn det(b: [f32; 4], c: usize, s: f32) -> Detection {
        Detection { bbox: b, class: c, score: s }
    }

    #[test]
    fn perfect_detections_score_ap_one() {
        let gts = vec![vec![gt([0.0, 0.0, 20.0, 20.0], 0), gt([40.0, 40.0, 60.0, 60.0], 1)]];
        let dets = vec![vec![det([0.0, 0.0, 20.0, 20.0], 0, 0.9), det([40.0, 40.0, 60.0, 60.0], 1, 0.8)]];
        let r = evaluate_box_ap(&dets, &gts, 2, AreaRanges::coco());
        assert!((r.ap - 1.0).abs() < 1e-6, "{r:?}");
        assert!((r.ap50 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn missed_gt_halves_recall() {
        let gts = vec![vec![gt([0.0, 0.0, 20.0, 20.0], 0), gt([40.0, 40.0, 60.0, 60.0], 0)]];
        let dets = vec![vec![det([0.0, 0.0, 20.0, 20.0], 0, 0.9)]];
        let r = evaluate_box_ap(&dets, &gts, 1, AreaRanges::coco());
        assert!(r.ap50 > 0.4 && r.ap50 < 0.6, "{r:?}");
    }

    #[test]
    fn false_positives_reduce_precision() {
        let gts = vec![vec![gt([0.0, 0.0, 20.0, 20.0], 0)]];
        let clean = vec![vec![det([0.0, 0.0, 20.0, 20.0], 0, 0.9)]];
        let noisy = vec![vec![
            det([100.0, 100.0, 120.0, 120.0], 0, 0.95),
            det([0.0, 0.0, 20.0, 20.0], 0, 0.9),
        ]];
        let r_clean = evaluate_box_ap(&clean, &gts, 1, AreaRanges::coco());
        let r_noisy = evaluate_box_ap(&noisy, &gts, 1, AreaRanges::coco());
        assert!(r_noisy.ap50 < r_clean.ap50);
    }

    #[test]
    fn loose_boxes_pass_ap50_but_fail_ap75() {
        // IoU ~0.58 box: TP at 0.5, FP at 0.75.
        let gts = vec![vec![gt([0.0, 0.0, 20.0, 20.0], 0)]];
        let dets = vec![vec![det([0.0, 0.0, 17.0, 14.0], 0, 0.9)]];
        let r = evaluate_box_ap(&dets, &gts, 1, AreaRanges::coco());
        assert!(r.ap50 > 0.9, "{r:?}");
        assert!(r.ap75 < 0.1, "{r:?}");
    }

    #[test]
    fn size_buckets_separate() {
        let ranges = AreaRanges::coco();
        // One small (20x20=400 < 1024) and one large (200x200) object.
        let gts = vec![vec![gt([0.0, 0.0, 20.0, 20.0], 0), gt([100.0, 100.0, 300.0, 300.0], 0)]];
        // Only the large one is detected.
        let dets = vec![vec![det([100.0, 100.0, 300.0, 300.0], 0, 0.9)]];
        let r = evaluate_box_ap(&dets, &gts, 1, ranges);
        assert!(r.ap_large > 0.9, "{r:?}");
        assert!(r.ap_small < 0.1, "{r:?}");
    }

    #[test]
    fn duplicate_detections_count_as_fp() {
        let gts = vec![vec![gt([0.0, 0.0, 20.0, 20.0], 0)]];
        let dets = vec![vec![
            det([0.0, 0.0, 20.0, 20.0], 0, 0.9),
            det([1.0, 1.0, 21.0, 21.0], 0, 0.8),
        ]];
        let r = evaluate_box_ap(&dets, &gts, 1, AreaRanges::coco());
        // AP50 still 1.0 at recall 1 reached before the duplicate FP.
        assert!(r.ap50 > 0.9, "{r:?}");
    }

    #[test]
    fn empty_everything_is_zero() {
        let r = evaluate_box_ap(&[vec![]], &[vec![]], 3, AreaRanges::coco());
        assert_eq!(r.ap, 0.0);
    }
}
