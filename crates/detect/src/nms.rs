//! Detections and greedy non-maximum suppression.

use revbifpn_data::iou;

/// One scored detection.
#[derive(Clone, Debug, PartialEq)]
pub struct Detection {
    /// `[x1, y1, x2, y2]` in pixels.
    pub bbox: [f32; 4],
    /// Class index.
    pub class: usize,
    /// Confidence score in `[0, 1]`.
    pub score: f32,
}

impl Detection {
    /// Box area.
    pub fn area(&self) -> f32 {
        (self.bbox[2] - self.bbox[0]).max(0.0) * (self.bbox[3] - self.bbox[1]).max(0.0)
    }
}

/// Greedy per-class NMS: keeps the highest-scoring boxes, suppressing
/// same-class boxes with IoU above `iou_thresh`; returns at most `max_dets`.
pub fn nms(mut dets: Vec<Detection>, iou_thresh: f32, max_dets: usize) -> Vec<Detection> {
    dets.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    let mut keep: Vec<Detection> = Vec::new();
    for d in dets {
        if keep.len() >= max_dets {
            break;
        }
        let suppressed = keep
            .iter()
            .any(|k| k.class == d.class && iou(&k.bbox, &d.bbox) > iou_thresh);
        if !suppressed {
            keep.push(d);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(b: [f32; 4], c: usize, s: f32) -> Detection {
        Detection { bbox: b, class: c, score: s }
    }

    #[test]
    fn suppresses_overlapping_same_class() {
        let dets = vec![
            d([0.0, 0.0, 10.0, 10.0], 0, 0.9),
            d([1.0, 1.0, 11.0, 11.0], 0, 0.8),
            d([20.0, 20.0, 30.0, 30.0], 0, 0.7),
        ];
        let kept = nms(dets, 0.5, 100);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 0.9);
        assert_eq!(kept[1].score, 0.7);
    }

    #[test]
    fn different_classes_do_not_suppress() {
        let dets = vec![d([0.0, 0.0, 10.0, 10.0], 0, 0.9), d([0.0, 0.0, 10.0, 10.0], 1, 0.8)];
        assert_eq!(nms(dets, 0.5, 100).len(), 2);
    }

    #[test]
    fn max_dets_cap() {
        let dets = (0..10).map(|i| d([i as f32 * 20.0, 0.0, i as f32 * 20.0 + 10.0, 10.0], 0, 0.5)).collect();
        assert_eq!(nms(dets, 0.5, 3).len(), 3);
    }

    #[test]
    fn sorted_by_score() {
        let dets = vec![d([0.0, 0.0, 5.0, 5.0], 0, 0.2), d([40.0, 40.0, 45.0, 45.0], 0, 0.9)];
        let kept = nms(dets, 0.5, 10);
        assert!(kept[0].score > kept[1].score);
    }
}
