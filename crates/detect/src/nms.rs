//! Detections and greedy non-maximum suppression.
//!
//! NMS sits directly downstream of model outputs, so it is hardened against
//! numerically poisoned detections: non-finite scores or coordinates are
//! dropped up front (counted under the `detect.nonfinite_dropped` meter
//! event) and the sort uses total ordering, so a NaN can neither crash the
//! comparator nor scramble the ranking.

use revbifpn_data::iou;
use revbifpn_nn::meter;

/// One scored detection.
#[derive(Clone, Debug, PartialEq)]
pub struct Detection {
    /// `[x1, y1, x2, y2]` in pixels.
    pub bbox: [f32; 4],
    /// Class index.
    pub class: usize,
    /// Confidence score in `[0, 1]`.
    pub score: f32,
}

impl Detection {
    /// Box area.
    pub fn area(&self) -> f32 {
        (self.bbox[2] - self.bbox[0]).max(0.0) * (self.bbox[3] - self.bbox[1]).max(0.0)
    }
}

impl Detection {
    /// `true` when score and all four coordinates are finite.
    fn is_finite(&self) -> bool {
        self.score.is_finite() && self.bbox.iter().all(|v| v.is_finite())
    }
}

/// Greedy per-class NMS: keeps the highest-scoring boxes, suppressing
/// same-class boxes with IoU above `iou_thresh`; returns at most `max_dets`.
///
/// Detections with a non-finite score or coordinate are dropped before the
/// sort (each drop increments the `detect.nonfinite_dropped` meter event);
/// remaining ties are broken by total ordering, so the result is
/// deterministic for any input.
pub fn nms(mut dets: Vec<Detection>, iou_thresh: f32, max_dets: usize) -> Vec<Detection> {
    let before = dets.len();
    dets.retain(Detection::is_finite);
    let dropped = before - dets.len();
    if dropped > 0 {
        meter::count_n("detect.nonfinite_dropped", dropped as u64);
    }
    dets.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut keep: Vec<Detection> = Vec::new();
    for d in dets {
        if keep.len() >= max_dets {
            break;
        }
        let suppressed = keep
            .iter()
            .any(|k| k.class == d.class && iou(&k.bbox, &d.bbox) > iou_thresh);
        if !suppressed {
            keep.push(d);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(b: [f32; 4], c: usize, s: f32) -> Detection {
        Detection { bbox: b, class: c, score: s }
    }

    #[test]
    fn suppresses_overlapping_same_class() {
        let dets = vec![
            d([0.0, 0.0, 10.0, 10.0], 0, 0.9),
            d([1.0, 1.0, 11.0, 11.0], 0, 0.8),
            d([20.0, 20.0, 30.0, 30.0], 0, 0.7),
        ];
        let kept = nms(dets, 0.5, 100);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 0.9);
        assert_eq!(kept[1].score, 0.7);
    }

    #[test]
    fn different_classes_do_not_suppress() {
        let dets = vec![d([0.0, 0.0, 10.0, 10.0], 0, 0.9), d([0.0, 0.0, 10.0, 10.0], 1, 0.8)];
        assert_eq!(nms(dets, 0.5, 100).len(), 2);
    }

    #[test]
    fn max_dets_cap() {
        let dets = (0..10).map(|i| d([i as f32 * 20.0, 0.0, i as f32 * 20.0 + 10.0, 10.0], 0, 0.5)).collect();
        assert_eq!(nms(dets, 0.5, 3).len(), 3);
    }

    #[test]
    fn sorted_by_score() {
        let dets = vec![d([0.0, 0.0, 5.0, 5.0], 0, 0.2), d([40.0, 40.0, 45.0, 45.0], 0, 0.9)];
        let kept = nms(dets, 0.5, 10);
        assert!(kept[0].score > kept[1].score);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(nms(Vec::new(), 0.5, 100).is_empty());
    }

    #[test]
    fn all_nan_scores_are_dropped() {
        meter::reset_events();
        let dets = vec![
            d([0.0, 0.0, 10.0, 10.0], 0, f32::NAN),
            d([5.0, 5.0, 15.0, 15.0], 1, f32::NAN),
        ];
        assert!(nms(dets, 0.5, 100).is_empty());
        assert_eq!(meter::event_count("detect.nonfinite_dropped"), 2);
    }

    #[test]
    fn nan_does_not_poison_the_sort() {
        meter::reset_events();
        // A NaN score and a NaN coordinate interleaved with good boxes: the
        // finite, well-separated boxes must all survive in score order.
        let dets = vec![
            d([0.0, 0.0, 10.0, 10.0], 0, 0.3),
            d([20.0, 20.0, 30.0, 30.0], 0, f32::NAN),
            d([40.0, 40.0, 50.0, 50.0], 0, 0.9),
            d([60.0, 60.0, f32::INFINITY, 70.0], 0, 0.8),
            d([80.0, 80.0, 90.0, 90.0], 0, 0.5),
        ];
        let kept = nms(dets, 0.5, 100);
        let scores: Vec<f32> = kept.iter().map(|k| k.score).collect();
        assert_eq!(scores, vec![0.9, 0.5, 0.3]);
        assert_eq!(meter::event_count("detect.nonfinite_dropped"), 2);
    }

    #[test]
    fn duplicate_boxes_collapse_to_one() {
        let dets = vec![
            d([0.0, 0.0, 10.0, 10.0], 0, 0.9),
            d([0.0, 0.0, 10.0, 10.0], 0, 0.9),
            d([0.0, 0.0, 10.0, 10.0], 0, 0.9),
        ];
        let kept = nms(dets, 0.5, 100);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.9);
    }
}
