//! Frozen (inference-only) detector: fused backbone + fused dense head.
//!
//! [`crate::Detector::freeze`] compiles the whole detector into fused
//! kernels — the backbone through `revbifpn::FrozenBackbone`, the head's
//! lateral/tower/branch convs into [`FrozenLayer`]s with biases and ReLUs in
//! the GEMM epilogues. Decoding and NMS are unchanged, so frozen detections
//! match eval-mode detections up to conv-fusion rounding.

use crate::head::{decode_detections, DetHeadConfig, LevelOutput};
use crate::nms::Detection;
use revbifpn::FrozenBackbone;
use revbifpn_nn::{FreezeError, FrozenLayer};
use revbifpn_tensor::Tensor;

/// Frozen form of the dense [`crate::DetHead`].
#[derive(Debug)]
pub struct FrozenDetHead {
    pub(crate) cfg: DetHeadConfig,
    pub(crate) strides: Vec<usize>,
    pub(crate) laterals: Vec<FrozenLayer>,
    pub(crate) towers: Vec<FrozenLayer>,
    pub(crate) cls: Vec<FrozenLayer>,
    pub(crate) reg: Vec<FrozenLayer>,
}

impl FrozenDetHead {
    /// The head configuration.
    pub fn cfg(&self) -> &DetHeadConfig {
        &self.cfg
    }

    /// Per-level strides.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Fused forward over a pyramid: per-level `(cls, reg)` outputs.
    pub fn forward(&self, pyramid: &[Tensor]) -> Vec<LevelOutput> {
        assert_eq!(pyramid.len(), self.laterals.len(), "pyramid level mismatch");
        pyramid
            .iter()
            .enumerate()
            .map(|(l, p)| {
                let lat = self.laterals[l].forward(p);
                let t = self.towers[l].forward(&lat);
                LevelOutput { cls: self.cls[l].forward(&t), reg: self.reg[l].forward(&t) }
            })
            .collect()
    }

    fn compile(&mut self) {
        for group in [&mut self.laterals, &mut self.towers, &mut self.cls, &mut self.reg] {
            for layer in group {
                layer.compile();
            }
        }
    }

    fn quantize(&mut self) {
        for group in [&mut self.laterals, &mut self.towers, &mut self.cls, &mut self.reg] {
            for layer in group {
                layer.quantize();
            }
        }
    }

    fn packed_bytes(&self) -> usize {
        [&self.laterals, &self.towers, &self.cls, &self.reg]
            .iter()
            .flat_map(|g| g.iter())
            .map(|l| l.packed_bytes())
            .sum()
    }

    fn quant_packed_bytes(&self) -> usize {
        [&self.laterals, &self.towers, &self.cls, &self.reg]
            .iter()
            .flat_map(|g| g.iter())
            .map(|l| l.quant_packed_bytes())
            .sum()
    }
}

/// A frozen detector (fused backbone + fused head), produced by
/// [`crate::Detector::freeze`]. Forward-only and `&self`.
#[derive(Debug)]
pub struct FrozenDetector {
    pub(crate) backbone: FrozenBackbone,
    pub(crate) head: FrozenDetHead,
}

impl FrozenDetector {
    /// The frozen backbone.
    pub fn backbone(&self) -> &FrozenBackbone {
        &self.backbone
    }

    /// The frozen head.
    pub fn head(&self) -> &FrozenDetHead {
        &self.head
    }

    /// Raw per-level head outputs (pre-decode); used for fused-vs-unfused
    /// parity checks that must not depend on NMS threshold effects.
    pub fn forward_raw(&self, images: &Tensor) -> Vec<LevelOutput> {
        let pyramid = self.backbone.forward(images);
        self.head.forward(&pyramid)
    }

    /// Inference: per-image detections (decode + NMS, identical to the
    /// unfused [`crate::Detector::detect`] pipeline).
    pub fn detect(&self, images: &Tensor) -> Vec<Vec<Detection>> {
        let outputs = self.forward_raw(images);
        decode_detections(&outputs, self.head.strides(), self.head.cfg())
    }

    /// Packs all conv weight panels (idempotent; called by
    /// [`crate::Detector::freeze`]).
    pub fn compile(&mut self) {
        self.backbone.compile();
        self.head.compile();
    }

    /// Lowers every fused conv (backbone and head) to per-channel int8
    /// weights (idempotent; called by [`crate::Detector::freeze_int8`]).
    pub fn quantize(&mut self) {
        self.backbone.quantize();
        self.head.quantize();
    }

    /// Total bytes of packed weight panels resident for this detector.
    pub fn packed_bytes(&self) -> usize {
        self.backbone.packed_bytes() + self.head.packed_bytes()
    }

    /// Total bytes of quantized (int8) weight panels resident for this
    /// detector.
    pub fn quant_packed_bytes(&self) -> usize {
        self.backbone.quant_packed_bytes() + self.head.quant_packed_bytes()
    }
}

/// Convenience result alias for detector freezing.
pub type FreezeResult<T> = Result<T, FreezeError>;
