//! Crash-safe training-state checkpointing and auto-resume.
//!
//! A `TrainState` checkpoint captures everything a deterministic run needs
//! to continue bit-exactly: model parameters, persistent buffers (BatchNorm
//! running statistics), SGD momentum, the EMA shadow, and scalar state
//! (completed steps, LR backoff scale, tripwire skip count). RNG state needs
//! no blob: the trainer derives its augmentation stream from
//! `(seed, step)`, so replaying from `step` reproduces the same draws.
//!
//! Files use the crash-safe v2 container from `revbifpn_nn::checkpoint`
//! (per-blob CRC32, atomic tmp+fsync+rename), named
//! `ckpt_step_{:08}.ckpt` by *completed* steps. [`auto_resume`] scans the
//! directory newest-first, quarantines any file that fails validation by
//! renaming it to `<name>.corrupt` (so it is never scanned again), removes
//! stale `*.tmp` files from interrupted writes, and resumes from the newest
//! checkpoint that loads cleanly.

use crate::ema::Ema;
use crate::sgd::Sgd;
use revbifpn::RevBiFPNClassifier;
use revbifpn_nn::checkpoint::{load_blobs, save_blobs};
use revbifpn_nn::meter;
use revbifpn_tensor::{Shape, Tensor};
use std::io;
use std::path::{Path, PathBuf};

/// Version tag stored in the `meta` blob.
const STATE_VERSION: f32 = 2.0;

/// Steps are carried in an f32 meta slot; beyond 2^24 an f32 can no longer
/// represent every integer exactly, so saving refuses earlier. Far above any
/// run this workspace performs (the paper's 500-epoch ImageNet recipe is
/// ~3.1e5 steps).
const MAX_EXACT_STEP: usize = 1 << 24;

/// Checkpoint cadence, location, and retention for a training run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointCfg {
    /// Directory the run writes checkpoints into (created on first save).
    pub dir: PathBuf,
    /// Save after every `every_steps` completed steps.
    pub every_steps: usize,
    /// Keep only the newest `keep` checkpoints; older ones are pruned.
    pub keep: usize,
}

impl CheckpointCfg {
    /// A sensible default cadence for the small CPU runs in this workspace.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), every_steps: 8, keep: 3 }
    }
}

/// Scalar training state carried alongside the tensors in a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResumeMeta {
    /// Completed optimizer steps — the next global step index to execute.
    pub step: usize,
    /// Current LR backoff scale from the non-finite tripwires.
    pub lr_scale: f32,
    /// Steps skipped by the tripwires so far.
    pub skips: u64,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Checkpoints `(step, path)` present in `dir`, sorted newest-first.
/// Quarantined (`.corrupt`) and temporary files never match the
/// `ckpt_step_{:08}.ckpt` pattern and are skipped.
fn list_checkpoints(dir: &Path) -> io::Result<Vec<(usize, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix("ckpt_step_") else { continue };
        let Some(digits) = stem.strip_suffix(".ckpt") else { continue };
        if let Ok(step) = digits.parse::<usize>() {
            found.push((step, entry.path()));
        }
    }
    found.sort_by_key(|c| std::cmp::Reverse(c.0));
    Ok(found)
}

/// Saves the full training state as `ckpt_step_{:08}.ckpt` in `cfg.dir`
/// (atomically, CRC-protected), then prunes checkpoints beyond `cfg.keep`.
/// Returns the path written.
///
/// # Panics
///
/// Panics if `meta.step >= 2^24` (no longer exactly representable in the
/// f32 meta slot).
pub fn save_train_state(
    cfg: &CheckpointCfg,
    model: &mut RevBiFPNClassifier,
    opt: &Sgd,
    ema: Option<&Ema>,
    meta: ResumeMeta,
) -> io::Result<PathBuf> {
    assert!(meta.step < MAX_EXACT_STEP, "step {} exceeds the exact-f32 range", meta.step);
    std::fs::create_dir_all(&cfg.dir)?;
    let mut blobs: Vec<(String, Vec<f32>)> = vec![(
        "meta".to_string(),
        vec![STATE_VERSION, meta.step as f32, meta.lr_scale, meta.skips as f32],
    )];
    let mut i = 0usize;
    model.visit_params(&mut |p| {
        blobs.push((format!("param/{i:05}/{}", p.name), p.value.data().to_vec()));
        i += 1;
    });
    let mut j = 0usize;
    model.visit_buffers(&mut |t| {
        blobs.push((format!("buf/{j:05}"), t.data().to_vec()));
        j += 1;
    });
    for (k, b) in opt.buffers().iter().enumerate() {
        blobs.push((format!("sgd/{k:05}"), b.data().to_vec()));
    }
    if let Some(e) = ema {
        for (k, s) in e.shadow().iter().enumerate() {
            blobs.push((format!("ema/{k:05}"), s.data().to_vec()));
        }
    }
    let path = cfg.dir.join(format!("ckpt_step_{:08}.ckpt", meta.step));
    save_blobs(&path, &blobs)?;
    for (_, old) in list_checkpoints(&cfg.dir)?.into_iter().skip(cfg.keep.max(1)) {
        std::fs::remove_file(old)?;
    }
    Ok(path)
}

/// Loads a training-state checkpoint into `model`, `opt`, and `ema`,
/// returning the scalar meta.
///
/// The whole file is CRC-validated by the container and then checked
/// against the live model (blob names, counts, and element counts) *before*
/// anything is mutated — a checkpoint that does not match leaves the model
/// and optimizer untouched.
pub fn load_train_state(
    path: &Path,
    model: &mut RevBiFPNClassifier,
    opt: &mut Sgd,
    ema: Option<&mut Ema>,
) -> io::Result<ResumeMeta> {
    let blobs = load_blobs(path)?;
    let (mname, m) = blobs.first().ok_or_else(|| bad("checkpoint has no blobs".into()))?;
    if mname != "meta" || m.len() != 4 {
        return Err(bad(format!("first blob must be meta[4], got {mname:?}[{}]", m.len())));
    }
    if m[0] != STATE_VERSION {
        return Err(bad(format!("state version {} != {STATE_VERSION}", m[0])));
    }
    if m[1] < 0.0 || m[1].fract() != 0.0 || m[1] >= MAX_EXACT_STEP as f32 {
        return Err(bad(format!("meta step {} is not an exact step count", m[1])));
    }
    if !m[2].is_finite() || m[3] < 0.0 || m[3].fract() != 0.0 {
        return Err(bad(format!("meta scalars out of range: lr_scale {} skips {}", m[2], m[3])));
    }
    let meta = ResumeMeta { step: m[1] as usize, lr_scale: m[2], skips: m[3] as u64 };

    // Partition the remaining blobs by section prefix.
    let mut params: Vec<(&str, &Vec<f32>)> = Vec::new();
    let mut bufs: Vec<&Vec<f32>> = Vec::new();
    let mut sgd: Vec<&Vec<f32>> = Vec::new();
    let mut shadow: Vec<&Vec<f32>> = Vec::new();
    for (name, data) in &blobs[1..] {
        if let Some(rest) = name.strip_prefix("param/") {
            params.push((rest, data));
        } else if name.strip_prefix("buf/").is_some() {
            bufs.push(data);
        } else if name.strip_prefix("sgd/").is_some() {
            sgd.push(data);
        } else if name.strip_prefix("ema/").is_some() {
            shadow.push(data);
        } else {
            return Err(bad(format!("unknown blob section {name:?}")));
        }
    }

    // Validate everything against the live model before mutating anything.
    let mut pmeta: Vec<(&'static str, Shape)> = Vec::new();
    model.visit_params(&mut |p| pmeta.push((p.name, p.value.shape())));
    let mut bshapes: Vec<Shape> = Vec::new();
    model.visit_buffers(&mut |t| bshapes.push(t.shape()));
    if params.len() != pmeta.len() {
        return Err(bad(format!("{} param blobs for {} model params", params.len(), pmeta.len())));
    }
    for (idx, ((rest, data), (pname, shape))) in params.iter().zip(&pmeta).enumerate() {
        let expect = format!("{idx:05}/{pname}");
        if *rest != expect {
            return Err(bad(format!("param blob {idx} named {rest:?}, expected {expect:?}")));
        }
        if data.len() != shape.numel() {
            return Err(bad(format!("param {rest:?}: {} elements for shape {shape}", data.len())));
        }
    }
    if bufs.len() != bshapes.len() {
        return Err(bad(format!("{} buffer blobs for {} model buffers", bufs.len(), bshapes.len())));
    }
    for (idx, (data, shape)) in bufs.iter().zip(&bshapes).enumerate() {
        if data.len() != shape.numel() {
            return Err(bad(format!("buffer {idx}: {} elements for shape {shape}", data.len())));
        }
    }
    for (section, tensors) in [("sgd", &sgd), ("ema", &shadow)] {
        if !tensors.is_empty() {
            if tensors.len() != pmeta.len() {
                return Err(bad(format!(
                    "{section}: {} blobs for {} model params",
                    tensors.len(),
                    pmeta.len()
                )));
            }
            for (idx, (data, (pname, shape))) in tensors.iter().zip(&pmeta).enumerate() {
                if data.len() != shape.numel() {
                    return Err(bad(format!(
                        "{section} blob {idx} ({pname}): {} elements for shape {shape}",
                        data.len()
                    )));
                }
            }
        }
    }

    // Apply. Validation passed, so every copy below is shape-exact.
    let mut i = 0usize;
    model.visit_params(&mut |p| {
        p.value.data_mut().copy_from_slice(params[i].1);
        i += 1;
    });
    let mut j = 0usize;
    model.visit_buffers(&mut |t| {
        t.data_mut().copy_from_slice(bufs[j]);
        j += 1;
    });
    let to_tensors = |blobs: &[&Vec<f32>]| -> Vec<Tensor> {
        blobs
            .iter()
            .zip(&pmeta)
            .map(|(d, (_, s))| Tensor::from_vec(*s, (*d).clone()).expect("validated above"))
            .collect()
    };
    opt.set_buffers(to_tensors(&sgd));
    if let Some(e) = ema {
        e.set_shadow(to_tensors(&shadow));
    }
    Ok(meta)
}

/// Scans `cfg.dir` for the newest loadable checkpoint and resumes from it.
///
/// Stale `*.tmp` files (interrupted atomic writes) are deleted. A
/// checkpoint that fails validation — torn write, bit rot, wrong
/// architecture — is quarantined by renaming it to `<name>.corrupt`
/// (counted under the `train.ckpt_quarantined` meter event) and the scan
/// moves on to the next-newest. Returns `Ok(None)` when nothing loadable
/// exists (including when `cfg.dir` does not exist yet).
pub fn auto_resume(
    cfg: &CheckpointCfg,
    model: &mut RevBiFPNClassifier,
    opt: &mut Sgd,
    mut ema: Option<&mut Ema>,
) -> io::Result<Option<ResumeMeta>> {
    if !cfg.dir.is_dir() {
        return Ok(None);
    }
    for entry in std::fs::read_dir(&cfg.dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            std::fs::remove_file(&path)?;
        }
    }
    for (_, path) in list_checkpoints(&cfg.dir)? {
        match load_train_state(&path, model, opt, ema.as_deref_mut()) {
            Ok(meta) => return Ok(Some(meta)),
            Err(_) => {
                let mut quarantined = path.clone().into_os_string();
                quarantined.push(".corrupt");
                std::fs::rename(&path, &quarantined)?;
                meter::count("train.ckpt_quarantined");
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::tear_file;
    use revbifpn::{RevBiFPNClassifier, RevBiFPNConfig};

    fn tiny_model() -> RevBiFPNClassifier {
        RevBiFPNClassifier::new(RevBiFPNConfig::tiny(5))
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("revbifpn_resume_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Drives a deterministic fake training step so the optimizer and EMA
    /// hold non-trivial state.
    fn fake_step(model: &mut RevBiFPNClassifier, opt: &mut Sgd, ema: &mut Ema) {
        model.visit_params(&mut |p| {
            let g = p.value.clone();
            p.accumulate(&g);
        });
        opt.step(0.01, |f| model.visit_params(f));
        ema.update(|f| model.visit_params(f));
    }

    #[test]
    fn save_load_roundtrip_restores_everything() {
        let cfg = CheckpointCfg::new(tmp_dir("roundtrip"));
        let mut a = tiny_model();
        let mut opt_a = Sgd::new(0.9, 0.0);
        let mut ema_a = Ema::new(0.5);
        fake_step(&mut a, &mut opt_a, &mut ema_a);
        let meta = ResumeMeta { step: 5, lr_scale: 0.25, skips: 2 };
        let path = save_train_state(&cfg, &mut a, &opt_a, Some(&ema_a), meta).unwrap();
        assert!(path.ends_with("ckpt_step_00000005.ckpt"));

        // A freshly built model differs once perturbed; load must restore it
        // bit-exactly, along with optimizer and EMA state.
        let mut b = tiny_model();
        b.visit_params(&mut |p| p.value.map_inplace(|v| v + 1.0));
        let mut opt_b = Sgd::new(0.9, 0.0);
        let mut ema_b = Ema::new(0.5);
        let got = load_train_state(&path, &mut b, &mut opt_b, Some(&mut ema_b)).unwrap();
        assert_eq!(got, meta);
        let mut vals_a = Vec::new();
        a.visit_params(&mut |p| vals_a.push(p.value.clone()));
        let mut k = 0;
        b.visit_params(&mut |p| {
            assert_eq!(p.value, vals_a[k], "param {k} not restored");
            k += 1;
        });
        assert_eq!(opt_b.buffers(), opt_a.buffers());
        assert_eq!(ema_b.shadow(), ema_a.shadow());
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn mismatched_checkpoint_leaves_model_untouched() {
        let dir = tmp_dir("mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_step_00000001.ckpt");
        // Valid container, but only a meta blob: no params for the model.
        save_blobs(&path, &[("meta".to_string(), vec![STATE_VERSION, 1.0, 1.0, 0.0])]).unwrap();
        let mut m = tiny_model();
        let mut before = Vec::new();
        m.visit_params(&mut |p| before.push(p.value.clone()));
        let mut opt = Sgd::new(0.9, 0.0);
        assert!(load_train_state(&path, &mut m, &mut opt, None).is_err());
        let mut k = 0;
        m.visit_params(&mut |p| {
            assert_eq!(p.value, before[k]);
            k += 1;
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_resume_quarantines_torn_newest_and_uses_older() {
        let mut cfg = CheckpointCfg::new(tmp_dir("quarantine"));
        cfg.keep = 5;
        let mut m = tiny_model();
        let mut opt = Sgd::new(0.9, 0.0);
        let m4 = ResumeMeta { step: 4, lr_scale: 1.0, skips: 0 };
        save_train_state(&cfg, &mut m, &opt, None, m4).unwrap();
        let newest =
            save_train_state(&cfg, &mut m, &opt, None, ResumeMeta { step: 8, lr_scale: 1.0, skips: 1 })
                .unwrap();
        tear_file(&newest, 64).unwrap();
        // Plus a stale tmp from an interrupted write.
        let stale = cfg.dir.join("ckpt_step_00000012.ckpt.tmp");
        std::fs::write(&stale, b"partial").unwrap();

        let got = auto_resume(&cfg, &mut m, &mut opt, None).unwrap().unwrap();
        assert_eq!(got, m4);
        assert!(!newest.exists(), "torn checkpoint should have been renamed");
        let mut quarantined = newest.into_os_string();
        quarantined.push(".corrupt");
        assert!(PathBuf::from(quarantined).exists());
        assert!(!stale.exists(), "stale tmp should have been removed");
        // A second scan ignores the quarantined file entirely.
        let again = auto_resume(&cfg, &mut m, &mut opt, None).unwrap().unwrap();
        assert_eq!(again, m4);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn injected_write_faults_fail_the_save_without_breaking_resume() {
        use revbifpn_nn::artifact::{clear_io_faults, inject_io_faults, IoFaults};

        let cfg = CheckpointCfg::new(tmp_dir("write_faults"));
        let mut m = tiny_model();
        let opt = Sgd::new(0.9, 0.0);
        let m2 = ResumeMeta { step: 2, lr_scale: 1.0, skips: 0 };
        save_train_state(&cfg, &mut m, &opt, None, m2).unwrap();

        // Torn write (simulated crash mid-write): the save fails, no rename
        // happened, and resume still lands on the step-2 checkpoint.
        inject_io_faults(IoFaults { torn_write: Some(32), ..IoFaults::default() });
        let torn =
            save_train_state(&cfg, &mut m, &opt, None, ResumeMeta { step: 4, lr_scale: 1.0, skips: 0 });
        clear_io_faults();
        assert!(torn.is_err(), "a torn write must be reported");
        let mut opt2 = Sgd::new(0.9, 0.0);
        let got = auto_resume(&cfg, &mut m, &mut opt2, None).unwrap().unwrap();
        assert_eq!(got, m2, "resume must use the last durable checkpoint");

        // Directory-fsync loss: the rename completed but may not survive
        // power loss, so the save must report failure — the caller cannot
        // record step 6 as checkpointed.
        inject_io_faults(IoFaults { fail_dir_fsync: true, ..IoFaults::default() });
        let unsynced =
            save_train_state(&cfg, &mut m, &opt, None, ResumeMeta { step: 6, lr_scale: 1.0, skips: 0 });
        clear_io_faults();
        assert!(unsynced.is_err(), "a lost directory fsync must be reported");

        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn prune_keeps_only_newest() {
        let mut cfg = CheckpointCfg::new(tmp_dir("prune"));
        cfg.keep = 2;
        let mut m = tiny_model();
        let opt = Sgd::new(0.9, 0.0);
        for step in [2usize, 4, 6] {
            save_train_state(&cfg, &mut m, &opt, None, ResumeMeta {
                step,
                lr_scale: 1.0,
                skips: 0,
            })
            .unwrap();
        }
        let steps: Vec<usize> =
            list_checkpoints(&cfg.dir).unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(steps, vec![6, 4]);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn empty_dir_resumes_fresh() {
        let cfg = CheckpointCfg::new(tmp_dir("fresh"));
        let mut m = tiny_model();
        let mut opt = Sgd::new(0.9, 0.0);
        assert!(auto_resume(&cfg, &mut m, &mut opt, None).unwrap().is_none());
    }
}
