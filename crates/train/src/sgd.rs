//! SGD with momentum and decoupled-style weight decay, matching the paper's
//! recipe (Appendix D.1: SGD, momentum 0.9, per-parameter weight decay on
//! weights but not on biases / normalization parameters).

use revbifpn_nn::{meter, Param};
use revbifpn_tensor::Tensor;

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm (over the *cleaned* gradients). Standard
/// stabilizer for detection fine-tuning (and for reversible couplings, whose
/// activation gain compounds when weights grow fast).
///
/// Non-finite gradient elements are zeroed **element-wise** first (counted
/// under the `train.nonfinite_grad_zeroed` meter event), so a handful of
/// poisoned elements neither veto the clip nor discard every healthy
/// gradient in the model.
pub fn clip_grad_norm(mut visit: impl FnMut(&mut dyn FnMut(&mut Param)), max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut zeroed = 0u64;
    let mut sq = 0.0f64;
    visit(&mut |p: &mut Param| {
        if !p.grad.is_finite() {
            zeroed += p.grad.count_nonfinite() as u64;
            p.grad.map_inplace(|g| if g.is_finite() { g } else { 0.0 });
        }
        sq += p.grad.sq_sum();
    });
    if zeroed > 0 {
        meter::count_n("train.nonfinite_grad_zeroed", zeroed);
    }
    let norm = sq.sqrt();
    if norm > max_norm {
        let scale = (max_norm / norm) as f32;
        visit(&mut |p: &mut Param| p.grad.scale(scale));
    }
    norm
}

/// SGD + momentum optimizer with per-parameter momentum buffers.
#[derive(Debug)]
pub struct Sgd {
    momentum: f32,
    weight_decay: f32,
    buffers: Vec<Tensor>,
}

impl Sgd {
    /// Creates the optimizer (buffers are allocated lazily on first step).
    pub fn new(momentum: f32, weight_decay: f32) -> Self {
        Self { momentum, weight_decay, buffers: Vec::new() }
    }

    /// Momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Applies one update with learning rate `lr` to every parameter visited
    /// by `visit`. The visit order must be stable across steps (it is, for
    /// all models in this workspace: `visit_params` walks a fixed module
    /// tree).
    pub fn step(&mut self, lr: f32, visit: impl FnOnce(&mut dyn FnMut(&mut Param))) {
        let mut idx = 0;
        let buffers = &mut self.buffers;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        visit(&mut |p: &mut Param| {
            if buffers.len() == idx {
                buffers.push(Tensor::zeros(p.value.shape()));
            }
            let buf = &mut buffers[idx];
            assert_eq!(buf.shape(), p.value.shape(), "parameter order changed between steps");
            let decay = if p.weight_decay { wd } else { 0.0 };
            for i in 0..p.value.shape().numel() {
                let g = p.grad.data()[i] + decay * p.value.data()[i];
                let v = momentum * buf.data()[i] + g;
                buf.data_mut()[i] = v;
                p.value.data_mut()[i] -= lr * v;
            }
            idx += 1;
        });
    }

    /// Bytes of optimizer state currently held.
    pub fn state_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.bytes()).sum()
    }

    /// The momentum buffers in parameter-visit order (empty before the first
    /// step). Exposed for checkpointing.
    pub fn buffers(&self) -> &[Tensor] {
        &self.buffers
    }

    /// Replaces the momentum buffers (checkpoint resume). Shapes are
    /// validated lazily by [`Sgd::step`]'s parameter-order assertion.
    pub fn set_buffers(&mut self, buffers: Vec<Tensor>) {
        self.buffers = buffers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revbifpn_tensor::Shape;

    #[test]
    fn plain_sgd_descends_quadratic() {
        // Minimize f(w) = 0.5 * w^2; grad = w.
        let mut p = Param::new(Tensor::full(Shape::vector(1), 10.0), false, "w");
        let mut opt = Sgd::new(0.0, 0.0);
        for _ in 0..100 {
            p.zero_grad();
            let g = p.value.clone();
            p.accumulate(&g);
            opt.step(0.1, |f| f(&mut p));
        }
        assert!(p.value.data()[0].abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mom: f32| {
            let mut p = Param::new(Tensor::full(Shape::vector(1), 10.0), false, "w");
            let mut opt = Sgd::new(mom, 0.0);
            for _ in 0..20 {
                p.zero_grad();
                let g = p.value.clone();
                p.accumulate(&g);
                opt.step(0.02, |f| f(&mut p));
            }
            p.value.data()[0]
        };
        assert!(run(0.9).abs() < run(0.0).abs());
    }

    #[test]
    fn weight_decay_respects_flag() {
        let mut decayed = Param::new(Tensor::full(Shape::vector(1), 1.0), true, "w");
        let mut plain = Param::new(Tensor::full(Shape::vector(1), 1.0), false, "b");
        let mut opt = Sgd::new(0.0, 0.1);
        // Zero gradients: only decay moves parameters.
        opt.step(1.0, |f| {
            f(&mut decayed);
            f(&mut plain);
        });
        assert!((decayed.value.data()[0] - 0.9).abs() < 1e-6);
        assert_eq!(plain.value.data()[0], 1.0);
    }

    #[test]
    fn clip_rescales_to_max_norm() {
        let mut p = Param::new(Tensor::zeros(Shape::vector(2)), false, "w");
        p.grad = Tensor::from_vec(Shape::vector(2), vec![3.0, 4.0]).unwrap();
        let norm = clip_grad_norm(|f| f(&mut p), 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((p.grad.l2_norm() - 1.0).abs() < 1e-5);
        // Below the cap: untouched.
        let norm2 = clip_grad_norm(|f| f(&mut p), 10.0);
        assert!((norm2 - 1.0).abs() < 1e-4);
        assert!((p.grad.l2_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_zeroes_non_finite() {
        let mut p = Param::new(Tensor::zeros(Shape::vector(1)), false, "w");
        p.grad = Tensor::from_vec(Shape::vector(1), vec![f32::NAN]).unwrap();
        let _ = clip_grad_norm(|f| f(&mut p), 1.0);
        assert_eq!(p.grad.data()[0], 0.0);
    }

    #[test]
    fn clip_zeroes_only_the_non_finite_elements() {
        let mut p = Param::new(Tensor::zeros(Shape::vector(4)), false, "w");
        p.grad = Tensor::from_vec(
            Shape::vector(4),
            vec![3.0, f32::NAN, 4.0, f32::INFINITY],
        )
        .unwrap();
        let before = revbifpn_nn::meter::event_count("train.nonfinite_grad_zeroed");
        let norm = clip_grad_norm(|f| f(&mut p), 10.0);
        // Norm is over the cleaned gradient: sqrt(3^2 + 4^2) = 5, under the
        // cap, so the finite elements survive untouched.
        assert!((norm - 5.0).abs() < 1e-6);
        assert_eq!(p.grad.data(), &[3.0, 0.0, 4.0, 0.0]);
        let after = revbifpn_nn::meter::event_count("train.nonfinite_grad_zeroed");
        assert_eq!(after - before, 2);
    }

    #[test]
    fn buffers_roundtrip_through_accessors() {
        let mut p = Param::new(Tensor::zeros(Shape::vector(3)), false, "w");
        p.grad = Tensor::from_vec(Shape::vector(3), vec![1.0, 2.0, 3.0]).unwrap();
        let mut opt = Sgd::new(0.9, 0.0);
        opt.step(0.1, |f| f(&mut p));
        let saved: Vec<Tensor> = opt.buffers().to_vec();
        assert_eq!(saved.len(), 1);
        let mut opt2 = Sgd::new(0.9, 0.0);
        opt2.set_buffers(saved);
        assert_eq!(opt2.buffers(), opt.buffers());
    }

    #[test]
    fn state_bytes_counted() {
        let mut p = Param::new(Tensor::zeros(Shape::vector(8)), false, "w");
        let mut opt = Sgd::new(0.9, 0.0);
        assert_eq!(opt.state_bytes(), 0);
        opt.step(0.1, |f| f(&mut p));
        assert_eq!(opt.state_bytes(), 32);
    }
}
