//! Deterministic fault injection for exercising the resilience layer.
//!
//! Every fault is pinned to a global step index, so an injected run is fully
//! reproducible: the same plan on the same seed produces the same trip, the
//! same recovery, and the same final weights. The integration tests in
//! `tests/fault_injection.rs` use this to prove each recovery path end to
//! end (faulted run completes and stays within tolerance of a clean run).

use revbifpn_rev::ReconFault;
use std::io;
use std::path::Path;

/// One fault injected into a training run at a fixed global step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Poisons the loss gradient with a NaN before the backward pass of the
    /// given step, exercising the non-finite tripwire + step-skip path.
    NanGrad {
        /// 0-based global step index.
        step: usize,
    },
    /// Flips one bit in a reconstructed activation stream during the
    /// reversible backward pass of the given step, exercising the drift
    /// sentinel (see [`ReconFault`] for the location fields). Ignored by
    /// conventional training, which never reconstructs.
    ActivationBitFlip {
        /// 0-based global step index.
        step: usize,
        /// Where in the reversible body to flip.
        fault: ReconFault,
    },
    /// Simulates a crash: the run returns early (with
    /// `TrainHistory::killed` set) at the end of the given step, after any
    /// due checkpoint write. A follow-up run with auto-resume picks the run
    /// back up from the newest valid checkpoint.
    Kill {
        /// 0-based global step index.
        step: usize,
    },
}

/// A deterministic schedule of faults, queried by the trainer each step.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (a clean run).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Should the loss gradient be poisoned at `step`?
    pub fn nan_grad_at(&self, step: usize) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::NanGrad { step: s } if *s == step))
    }

    /// The activation bit-flip scheduled for `step`, if any.
    pub fn bit_flip_at(&self, step: usize) -> Option<ReconFault> {
        self.faults.iter().find_map(|f| match f {
            Fault::ActivationBitFlip { step: s, fault } if *s == step => Some(*fault),
            _ => None,
        })
    }

    /// Should the run be killed after `step`?
    pub fn kill_at(&self, step: usize) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::Kill { step: s } if *s == step))
    }
}

/// One fault injected into an inference-serving run, pinned to a 0-based
/// request index. The serving analogue of [`Fault`]: the soak test in
/// `tests/serve_soak.rs` corrupts the scheduled requests before submission
/// (or trips the engine's crash hook) and asserts the engine classifies
/// every one with a typed error while staying alive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeFault {
    /// Replaces one payload element with a NaN, exercising the non-finite
    /// admission scan.
    NanPayload {
        /// 0-based request index.
        request: usize,
    },
    /// Submits the request at double the expected spatial resolution,
    /// exercising the shape check.
    OversizedShape {
        /// 0-based request index.
        request: usize,
    },
    /// Tags the request as a poison pill that panics inside the model
    /// forward, exercising batch `catch_unwind` + bisection quarantine.
    PoisonPill {
        /// 0-based request index.
        request: usize,
    },
    /// Crashes a worker thread (outside batch execution) when this request
    /// is submitted, exercising the watchdog restart path.
    WorkerCrash {
        /// 0-based request index.
        request: usize,
        /// Which worker slot to crash.
        worker: usize,
    },
}

/// A deterministic schedule of serving faults, queried by request index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    faults: Vec<ServeFault>,
}

impl ServeFaultPlan {
    /// The empty plan (a clean run).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, fault: ServeFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Should request `request`'s payload be NaN-poisoned?
    pub fn nan_payload_at(&self, request: usize) -> bool {
        self.faults.iter().any(|f| matches!(f, ServeFault::NanPayload { request: r } if *r == request))
    }

    /// Should request `request` be submitted oversized?
    pub fn oversized_at(&self, request: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, ServeFault::OversizedShape { request: r } if *r == request))
    }

    /// Should request `request` carry the in-model panic tag?
    pub fn poison_at(&self, request: usize) -> bool {
        self.faults.iter().any(|f| matches!(f, ServeFault::PoisonPill { request: r } if *r == request))
    }

    /// The worker slot to crash when submitting request `request`, if any.
    pub fn worker_crash_at(&self, request: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            ServeFault::WorkerCrash { request: r, worker } if *r == request => Some(*worker),
            _ => None,
        })
    }

    /// Total number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }
}

/// Truncates the file at `path` to its first `keep_bytes` bytes, simulating
/// a torn write (e.g. power loss mid-`write`). Used by tests to prove the
/// checkpoint loader rejects and quarantines partial files.
pub fn tear_file(path: &Path, keep_bytes: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep_bytes)?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_queries_are_step_exact() {
        let plan = FaultPlan::none()
            .with(Fault::NanGrad { step: 3 })
            .with(Fault::Kill { step: 7 })
            .with(Fault::ActivationBitFlip {
                step: 5,
                fault: ReconFault { stage: 0, stream: 1, index: 2, bit: 30 },
            });
        assert!(!plan.is_empty());
        assert!(plan.nan_grad_at(3));
        assert!(!plan.nan_grad_at(4));
        assert!(plan.kill_at(7));
        assert!(!plan.kill_at(3));
        let f = plan.bit_flip_at(5).unwrap();
        assert_eq!((f.stage, f.stream, f.index, f.bit), (0, 1, 2, 30));
        assert!(plan.bit_flip_at(6).is_none());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn serve_plan_queries_are_request_exact() {
        let plan = ServeFaultPlan::none()
            .with(ServeFault::NanPayload { request: 2 })
            .with(ServeFault::OversizedShape { request: 5 })
            .with(ServeFault::PoisonPill { request: 9 })
            .with(ServeFault::WorkerCrash { request: 11, worker: 1 });
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert!(plan.nan_payload_at(2) && !plan.nan_payload_at(3));
        assert!(plan.oversized_at(5) && !plan.oversized_at(2));
        assert!(plan.poison_at(9) && !plan.poison_at(10));
        assert_eq!(plan.worker_crash_at(11), Some(1));
        assert_eq!(plan.worker_crash_at(12), None);
        assert!(ServeFaultPlan::none().is_empty());
    }

    #[test]
    fn tear_file_truncates() {
        let dir = std::env::temp_dir().join("revbifpn_faults_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bin");
        std::fs::write(&path, [0u8; 100]).unwrap();
        tear_file(&path, 37).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 37);
        std::fs::remove_file(&path).unwrap();
    }
}
