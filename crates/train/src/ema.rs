//! Exponential moving average of model parameters (Appendix D.1 uses EMA
//! decay 0.9999; scaled-down runs use smaller decays).

use revbifpn_nn::Param;
use revbifpn_tensor::Tensor;

/// Parameter EMA with swap-in/swap-out for evaluation.
#[derive(Debug)]
pub struct Ema {
    decay: f32,
    shadow: Vec<Tensor>,
    stashed: Vec<Tensor>,
}

impl Ema {
    /// Creates an EMA tracker (shadow initialized on the first update).
    pub fn new(decay: f32) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        Self { decay, shadow: Vec::new(), stashed: Vec::new() }
    }

    /// Updates the shadow parameters: `shadow = decay*shadow + (1-decay)*p`.
    pub fn update(&mut self, visit: impl FnOnce(&mut dyn FnMut(&mut Param))) {
        let shadow = &mut self.shadow;
        let decay = self.decay;
        let mut idx = 0;
        visit(&mut |p: &mut Param| {
            if shadow.len() == idx {
                shadow.push(p.value.clone());
            } else {
                let s = &mut shadow[idx];
                for (sv, &pv) in s.data_mut().iter_mut().zip(p.value.data()) {
                    *sv = decay * *sv + (1.0 - decay) * pv;
                }
            }
            idx += 1;
        });
    }

    /// Swaps EMA weights into the model (stashing the live weights).
    ///
    /// # Panics
    ///
    /// Panics if called before any update or twice without [`Ema::restore`].
    pub fn apply(&mut self, visit: impl FnOnce(&mut dyn FnMut(&mut Param))) {
        assert!(!self.shadow.is_empty(), "EMA has no shadow weights yet");
        assert!(self.stashed.is_empty(), "EMA already applied");
        let shadow = &self.shadow;
        let stashed = &mut self.stashed;
        let mut idx = 0;
        visit(&mut |p: &mut Param| {
            stashed.push(std::mem::replace(&mut p.value, shadow[idx].clone()));
            idx += 1;
        });
    }

    /// The shadow tensors in parameter-visit order (empty before the first
    /// update). Exposed for checkpointing.
    pub fn shadow(&self) -> &[Tensor] {
        &self.shadow
    }

    /// Replaces the shadow tensors (checkpoint resume).
    ///
    /// # Panics
    ///
    /// Panics if EMA weights are currently swapped into the model (between
    /// [`Ema::apply`] and [`Ema::restore`]).
    pub fn set_shadow(&mut self, shadow: Vec<Tensor>) {
        assert!(self.stashed.is_empty(), "cannot set shadow while EMA weights are applied");
        self.shadow = shadow;
    }

    /// Restores the live weights stashed by [`Ema::apply`].
    ///
    /// # Panics
    ///
    /// Panics if no weights are stashed.
    pub fn restore(&mut self, visit: impl FnOnce(&mut dyn FnMut(&mut Param))) {
        assert!(!self.stashed.is_empty(), "EMA not applied");
        let stashed = &mut self.stashed;
        let mut idx = 0;
        visit(&mut |p: &mut Param| {
            p.value = stashed[idx].clone();
            idx += 1;
        });
        self.stashed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revbifpn_tensor::Shape;

    #[test]
    fn ema_tracks_mean() {
        let mut p = Param::new(Tensor::full(Shape::vector(1), 0.0), false, "w");
        let mut ema = Ema::new(0.5);
        ema.update(|f| f(&mut p)); // shadow = 0
        p.value = Tensor::full(Shape::vector(1), 4.0);
        ema.update(|f| f(&mut p)); // shadow = 2
        assert!((ema.shadow[0].data()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn apply_and_restore_roundtrip() {
        let mut p = Param::new(Tensor::full(Shape::vector(2), 1.0), false, "w");
        let mut ema = Ema::new(0.0); // shadow copies current value
        ema.update(|f| f(&mut p));
        p.value = Tensor::full(Shape::vector(2), 9.0);
        ema.apply(|f| f(&mut p));
        assert_eq!(p.value.data(), &[1.0, 1.0]);
        ema.restore(|f| f(&mut p));
        assert_eq!(p.value.data(), &[9.0, 9.0]);
    }
}
